"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and

* prints the reproduced rows/series,
* writes them to ``benchmarks/out/<name>.txt`` for EXPERIMENTS.md,
* asserts the qualitative *shape* claims (who wins, trends, crossovers).

The timing/printing machinery lives in :mod:`repro.runtime.telemetry`
(shared with the campaign executor and the CLI); this module only binds
it to the benchmark output directory and re-exports the pieces the
``bench_*.py`` scripts use.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.analog.engine import TransientOptions
from repro.runtime.telemetry import (  # noqa: F401  (re-exported for benches)
    Stopwatch,
    Telemetry,
    emit_block,
    format_duration,
)

#: Engine options used by the benches: ~10 mV accurate, ~2x faster than
#: the defaults.
BENCH_OPTIONS = TransientOptions(dt_max=200e-12, reltol=5e-3)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it under ``benchmarks/out/``."""
    return emit_block(name, lines, OUT_DIR)
