"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and

* prints the reproduced rows/series,
* writes them to ``benchmarks/out/<name>.txt`` for EXPERIMENTS.md,
* asserts the qualitative *shape* claims (who wins, trends, crossovers).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.analog.engine import TransientOptions

#: Engine options used by the benches: ~10 mV accurate, ~2x faster than
#: the defaults.
BENCH_OPTIONS = TransientOptions(dt_max=200e-12, reltol=5e-3)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it under ``benchmarks/out/``."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
