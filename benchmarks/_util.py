"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and

* prints the reproduced rows/series,
* writes them to ``benchmarks/out/<name>.txt`` for EXPERIMENTS.md,
* asserts the qualitative *shape* claims (who wins, trends, crossovers).

The timing/printing machinery lives in :mod:`repro.runtime.telemetry`
(shared with the campaign executor and the CLI); this module only binds
it to the benchmark output directory and re-exports the pieces the
``bench_*.py`` scripts use.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Iterable

from repro.analog.engine import TransientOptions
from repro.runtime.telemetry import (  # noqa: F401  (re-exported for benches)
    Stopwatch,
    Telemetry,
    emit_block,
    format_duration,
)

#: Engine options used by most benches: ~10 mV accurate, ~2x faster than
#: the defaults.
BENCH_OPTIONS = TransientOptions(dt_max=200e-12, reltol=5e-3)

#: Grid-converged options for cross-engine comparisons.  The scalar
#: engine carries a tolerance-blind trajectory error after clock edges
#: (the post-edge discharge satisfies the LTE estimator at dt_max-sized
#: steps while accruing ~10 mV; only dt_max shrinks it), so any check of
#: "batch equals scalar to 1 mV" must run where the scalar itself is
#: converged: at dt_max = 5 ps both engines sit within ~0.2 mV of the
#: dt_max = 2 ps reference.
ACCURATE_OPTIONS = TransientOptions(dt_max=5e-12, reltol=1e-3)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it under ``benchmarks/out/``."""
    return emit_block(name, lines, OUT_DIR)


def throughput_metrics(
    telemetry: Telemetry, wall_s: float, n_samples: int
) -> Dict[str, Any]:
    """Per-leg throughput numbers with one-time setup work excluded.

    ``samples_per_s`` divides by the wall time minus the prefix-build
    wall: building a checkpoint is a one-time cost amortised across the
    campaign (and across reruns through the checkpoint cache tier), so
    folding it into the per-sample rate would understate steady-state
    throughput and make the rate depend on how warm the cache happened
    to be.  The build time is still reported (``prefix_build_s``) so
    nothing is hidden, alongside the warm-start effectiveness counters
    (``prefix_hit_rate``, ``integrated_time_saved_s``).
    """
    build_s = min(telemetry.prefix_build_s, wall_s)
    timed_s = max(wall_s - build_s, 1e-9)
    return {
        "wall_s": wall_s,
        "prefix_build_s": telemetry.prefix_build_s,
        "samples_per_s": n_samples / timed_s,
        "prefix_hit_rate": telemetry.prefix_hit_rate,
        "integrated_time_saved_s": telemetry.prefix_saved_time_s,
    }


def write_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Persist machine-readable bench metrics as ``out/BENCH_<name>.json``.

    ``payload`` carries the bench-specific numbers (wall times, samples/s,
    backend, cache hit rate, deviations...); a small envelope (bench name,
    unix timestamp, platform) is added so CI artifacts from different runs
    remain distinguishable.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    document = {
        "bench": name,
        "timestamp": time.time(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        **payload,
    }
    path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return path
