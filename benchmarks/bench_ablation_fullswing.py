"""Ablation - the full-swing keeper option of Sec. 2.

Paper: "If this [the threshold clamp] cannot be accepted, a suitable
feedback inverter driving a weak pull-down n-channel transistor can be
added to each block to provide full-swing performance."

The bench compares the plain and keeper-equipped sensors: the keeper pulls
the no-skew outputs to ground (full swing) while preserving the skew
detection behaviour and keeping the sensitivity in the same band.
"""

from repro.core.response import ERROR_PHI2_LATE, simulate_sensor
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min, vmin_for_skew
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

LOAD = fF(160)


def tau_min_full_swing():
    """Bisection on the keeper variant (extract_tau_min builds plain
    sensors, so run the bisection manually here)."""
    lo, hi = 0.0, ns(1.0)
    while hi - lo > ns(0.01):
        mid = 0.5 * (lo + hi)
        sensor = SkewSensor(load1=LOAD, load2=LOAD, full_swing=True)
        response = simulate_sensor(sensor, skew=mid, options=BENCH_OPTIONS)
        if response.vmin_late > VTH_INTERPRET:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def run():
    plain = SkewSensor(load1=LOAD, load2=LOAD, full_swing=False)
    keeper = SkewSensor(load1=LOAD, load2=LOAD, full_swing=True)

    plain_idle = simulate_sensor(plain, skew=0.0, options=BENCH_OPTIONS)
    keeper_idle = simulate_sensor(keeper, skew=0.0, options=BENCH_OPTIONS)
    plain_skew = simulate_sensor(plain, skew=ns(1.0), options=BENCH_OPTIONS)
    keeper_skew = simulate_sensor(keeper, skew=ns(1.0), options=BENCH_OPTIONS)

    tau_plain = extract_tau_min(LOAD, tolerance=ns(0.01), options=BENCH_OPTIONS)
    tau_keeper = tau_min_full_swing()
    return (plain_idle, keeper_idle, plain_skew, keeper_skew,
            tau_plain, tau_keeper)


def test_ablation_full_swing(benchmark):
    (plain_idle, keeper_idle, plain_skew, keeper_skew,
     tau_plain, tau_keeper) = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_fullswing",
        [
            "Ablation: plain sensor vs full-swing keeper variant "
            f"(C = {LOAD * 1e15:.0f} fF)",
            "",
            "                      plain      keeper",
            f"  no-skew Vmin     {plain_idle.vmin_y1:7.2f} V {keeper_idle.vmin_y1:8.2f} V",
            f"  1 ns skew code   {str(plain_skew.code):>9} {str(keeper_skew.code):>9}",
            f"  tau_min          {to_ns(tau_plain):7.3f} ns {to_ns(tau_keeper):7.3f} ns",
            "",
            "  paper: the keeper buys full swing without changing the scheme",
        ],
    )

    # The keeper completes the swing...
    assert keeper_idle.vmin_y1 < 0.3
    assert plain_idle.vmin_y1 > 0.6
    # ...and the detection behaviour is unchanged.
    assert plain_skew.code == keeper_skew.code == ERROR_PHI2_LATE
    # Sensitivity stays in the same band (within 2x).
    assert 0.5 < tau_keeper / tau_plain < 2.0
