"""Ablation - transistor sizing vs sensitivity (the "delay" knob).

Paper: the sensitivity also "increases with the decrease of ... the delay"
of the sensing blocks.  Wider devices make the blocks faster (smaller
internal delay d), so the skew needed for y1 to finish before y2 starts
shrinks: tau_min falls as W grows.  The cost is area and clock loading -
the classic DFT trade-off this bench quantifies.
"""

from repro.core.sensing import SensorSizing
from repro.core.sensitivity import extract_tau_min
from repro.units import fF, ns, to_ns, um

from _util import BENCH_OPTIONS, emit

WIDTHS_UM = (1.2, 1.8, 3.0, 5.0, 8.0)
LOAD = fF(160)


def run():
    results = {}
    for w in WIDTHS_UM:
        sizing = SensorSizing(w_n=um(w), w_p=um(2 * w))
        results[w] = extract_tau_min(
            LOAD, sizing=sizing, tolerance=ns(0.005), options=BENCH_OPTIONS
        )
    return results


def test_ablation_sizing(benchmark):
    taus = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Ablation: device width vs sensitivity (C = {LOAD * 1e15:.0f} fF, "
        "W_p = 2 W_n)",
        "",
        "  W_n [um]   tau_min [ns]",
    ]
    for w in WIDTHS_UM:
        lines.append(f"  {w:8.1f}   {to_ns(taus[w]):10.3f}")
    lines.append("")
    lines.append("  paper: sensitivity increases as the block delay decreases")
    emit("ablation_sizing", lines)

    ordered = [taus[w] for w in WIDTHS_UM]
    assert ordered == sorted(ordered, reverse=True), \
        "tau_min must fall as devices widen"
    assert ordered[-1] < 0.5 * ordered[0]
