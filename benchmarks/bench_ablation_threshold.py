"""Ablation - the Vth/sensitivity trade-off of Sec. 2.

Paper: "By acting on such a threshold voltage (Vth) and/or on the delay of
the sensing circuit blocks, it is possible to set a suitable tolerance
interval.  In particular, the sensitivity of the proposed circuit increases
with the decrease of Vth".

The bench sweeps the interpretation threshold and shows tau_min growing
monotonically with Vth - lowering Vth makes the sensor catch smaller skews.
"""

from repro.core.sensitivity import extract_tau_min
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

THRESHOLDS = (2.0, 2.4, 2.75, 3.1, 3.5)
LOAD = fF(160)


def run():
    return {
        vth: extract_tau_min(
            LOAD, threshold=vth, tolerance=ns(0.005), options=BENCH_OPTIONS
        )
        for vth in THRESHOLDS
    }


def test_ablation_threshold_tradeoff(benchmark):
    taus = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: interpretation threshold Vth vs sensitivity tau_min "
        f"(C = {LOAD * 1e15:.0f} fF)",
        "",
        "  Vth [V]   tau_min [ns]",
    ]
    for vth in THRESHOLDS:
        lines.append(f"  {vth:7.2f}   {to_ns(taus[vth]):10.3f}")
    lines.append("")
    lines.append("  paper: sensitivity increases as Vth decreases")
    emit("ablation_threshold", lines)

    ordered = [taus[v] for v in THRESHOLDS]
    assert ordered == sorted(ordered), "tau_min must grow with Vth"
    assert ordered[0] < ordered[-1] * 0.9, "the knob must have real range"
