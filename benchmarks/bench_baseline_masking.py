"""Sec. 1 baseline - conventional delay-fault testing vs the sensing scheme.

The paper's motivation, quantified: "a clock distribution fault resulting
in one or more flip-flops' delayed sampling cannot be immediately
assimilated to delay faults ... because a delayed flip-flop's response may
be masked by its delayed sampling".

The bench sweeps the clock-path delay delta of one capture flop and
records who detects it:

* the conventional at-speed (launch/capture) logic test - blind until
  delta eats the downstream slack;
* the sensing scheme - flags any delta beyond its ~0.1 ns sensitivity.

The reproduced "who wins" claim is the wide masking window in between.
"""

from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min
from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

PERIOD = ns(10.0)
STAGE_DELAY = ns(3.0)
DELTAS_NS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 7.0)


def run():
    tau_min = extract_tau_min(fF(160), tolerance=ns(0.01), options=BENCH_OPTIONS)
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    rows = []
    for delta_ns in DELTAS_NS:
        delta = ns(delta_ns)
        circuit, flops = build_pipeline(
            [STAGE_DELAY, STAGE_DELAY], clock_offsets=[0.0, delta, 0.0]
        )
        logic = at_speed_test(circuit, flops, period=PERIOD)
        logic_detects = not logic["passed"]
        if delta < ns(1.5):
            response = simulate_sensor(sensor, skew=delta, options=BENCH_OPTIONS)
            sensor_detects = response.error_detected
        else:
            sensor_detects = True  # far beyond tau_min; avoid long sims
        rows.append((delta_ns, logic_detects, sensor_detects))
    return tau_min, rows


def test_baseline_masking_window(benchmark):
    tau_min, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # The at-speed test notices the fault only once delta exceeds the
    # stage's combinational delay (the delayed flop starts racing through
    # same-cycle data) or the downstream slack - whichever comes first.
    visible_at = min(STAGE_DELAY, PERIOD - STAGE_DELAY)
    lines = [
        "Sec.-1 baseline: clock-path delay fault, who detects it?",
        f"  pipeline: {to_ns(PERIOD):.0f} ns clock, {to_ns(STAGE_DELAY):.0f} ns "
        f"stages; sensor tau_min = {to_ns(tau_min):.3f} ns",
        "",
        "  delta[ns]   at-speed logic test   sensing scheme",
    ]
    for delta_ns, logic_detects, sensor_detects in rows:
        lines.append(
            f"  {delta_ns:8.2f}   {'DETECTS' if logic_detects else 'masked ':>18}"
            f"   {'DETECTS' if sensor_detects else 'tolerates'}"
        )
    masked_window = [
        d for d, logic_detects, sensor_detects in rows
        if not logic_detects and sensor_detects
    ]
    lines.append("")
    lines.append(
        f"  masking window (sensor-only detection): "
        f"{min(masked_window):.2f} .. {max(masked_window):.2f} ns"
    )
    lines.append(
        "  (delta below tau_min is tolerated by design - within the "
        "skew budget)"
    )
    emit("baseline_masking", lines)

    # Shape: the sensor wins everywhere above tau_min; the logic test is
    # blind until the downstream slack is consumed.
    for delta_ns, logic_detects, sensor_detects in rows:
        if ns(delta_ns) > 1.5 * tau_min:
            assert sensor_detects, f"sensor must flag delta = {delta_ns} ns"
    assert not rows[1][1] and not rows[3][1], "small deltas must be masked"
    assert rows[-1][1], "delta beyond the slack must finally fail at-speed"
    assert len(masked_window) >= 4
    assert max(masked_window) >= to_ns(visible_at) / 2
