"""Ablation - clock-tree styles under process variation.

Sec. 1: conventional techniques (buffer insertion, zero-skew routing)
achieve nominal zero skew, yet "circuit parameter fluctuations ... may
degrade the reliability of clock operations" - which is why the sensing
scheme exists.  This bench quantifies that premise on both substrates:

* symmetric buffered H-tree and DME zero-skew routed tree both have zero
  *nominal* skew;
* under +/-15 % per-segment parameter fluctuation both develop real skews
  on the order of the sensor's tau_min - i.e. the monitored failure mode
  is reachable by ordinary variation, not only by hard defects.
"""

import numpy as np

from repro.clocktree import (
    Buffer,
    build_h_tree,
    build_zero_skew_tree,
    perturb_tree,
    sink_delays,
)
from repro.units import ns, to_ns

from _util import emit

N_TRIALS = 40


def build_both():
    htree = build_h_tree(levels=2, chip_size=10e-3, buffer=Buffer())
    rng = np.random.default_rng(5)
    sinks = [
        (f"s{k}",
         (float(rng.uniform(0, 10e-3)), float(rng.uniform(0, 10e-3))),
         50e-15)
        for k in range(16)
    ]
    dme = build_zero_skew_tree(sinks, root_buffer=Buffer())
    return htree, dme


def variation_skews(tree, seed):
    rng = np.random.default_rng(seed)
    spreads = []
    for _ in range(N_TRIALS):
        delays = sink_delays(perturb_tree(tree, rng, relative_variation=0.15))
        values = np.array(list(delays.values()))
        spreads.append(values.max() - values.min())
    return np.array(spreads)


def run():
    htree, dme = build_both()
    return {
        "h-tree": (htree, variation_skews(htree, 31)),
        "dme": (dme, variation_skews(dme, 32)),
    }


def test_dme_vs_htree_variation(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: nominal-zero-skew trees under +/-15 % parameter variation",
        f"  ({N_TRIALS} Monte Carlo trials each; sensor tau_min ~ 0.12 ns)",
        "",
        "  tree     nominal skew   wirelen    skew under variation "
        "(min/median/max)",
    ]
    for name, (tree, spreads) in results.items():
        nominal = sink_delays(tree)
        values = np.array(list(nominal.values()))
        nominal_skew = values.max() - values.min()
        lines.append(
            f"  {name:<8} {to_ns(nominal_skew):10.4f} ns "
            f"{tree.total_wire_length() * 1e3:7.1f} mm   "
            f"{to_ns(spreads.min()):.3f} / {to_ns(np.median(spreads)):.3f} / "
            f"{to_ns(spreads.max()):.3f} ns"
        )
    lines.append("")
    lines.append(
        "  premise reproduced: zero-skew-by-design trees develop "
        "sensor-detectable skews under ordinary variation"
    )
    emit("dme_vs_htree", lines)

    for name, (tree, spreads) in results.items():
        nominal = sink_delays(tree)
        values = np.array(list(nominal.values()))
        assert values.max() - values.min() < 1e-12, f"{name} not zero-skew"
        # Variation produces skews beyond the sensor sensitivity in a
        # non-negligible fraction of trials.
        assert np.median(spreads) > ns(0.05)
        assert (spreads > ns(0.12)).mean() > 0.25
