"""Ablation - Elmore timing model vs transistor/RC-level co-simulation.

The scheme's behavioural evaluations (Fig.-6 campaigns, critical-pair
selection) run on Elmore delays; this bench validates that substrate
against the electrical ground truth and closes the full loop once:

* per-sink insertion delays: electrical vs Elmore within model-order
  tolerance, same ordering;
* injected-defect skews: both models agree on who is late and by a
  comparable amount;
* flagship run: clock generator -> buffered RC tree with a resistive
  open -> sensing circuit grafted onto the two sink nodes -> the 01
  error indication, all in one transistor-level netlist.
"""

from repro.clocktree.electrical import (
    cosimulate_pair_with_sensor,
    electrical_sink_arrivals,
)
from repro.clocktree.faults import ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.tree import Buffer
from repro.units import ns, to_ns

from _util import BENCH_OPTIONS, emit


def run():
    tree = build_h_tree(levels=2, buffer=Buffer())
    sinks = sorted(s.name for s in tree.sinks())
    a, b = sinks[0], sinks[1]

    elmore = sink_delays(tree)
    electrical = electrical_sink_arrivals(tree, [a, b], options=BENCH_OPTIONS)

    faulty = ResistiveOpen(node=b, extra_resistance=10_000.0).apply(tree)
    elmore_f = sink_delays(faulty)
    electrical_f = electrical_sink_arrivals(faulty, [a, b], options=BENCH_OPTIONS)

    code, _, _ = cosimulate_pair_with_sensor(faulty, a, b, options=BENCH_OPTIONS)
    healthy_code, _, _ = cosimulate_pair_with_sensor(tree, a, b, options=BENCH_OPTIONS)
    return {
        "pair": (a, b),
        "elmore": elmore,
        "electrical": electrical,
        "elmore_skew": elmore_f[b] - elmore_f[a],
        "electrical_skew": electrical_f[b] - electrical_f[a],
        "code": code,
        "healthy_code": healthy_code,
    }


def test_electrical_validation(benchmark):
    data = benchmark.pedantic(run, rounds=1, iterations=1)
    a, b = data["pair"]

    lines = [
        "Ablation: Elmore model vs transistor/RC co-simulation "
        "(16-sink buffered H-tree)",
        "",
        "  insertion delay      Elmore     electrical   ratio",
    ]
    for sink in (a, b):
        e = data["elmore"][sink]
        m = data["electrical"][sink]
        lines.append(
            f"  sink {sink:<6}      {to_ns(e):7.3f} ns  {to_ns(m):7.3f} ns"
            f"   {m / e:5.2f}"
        )
    lines += [
        "",
        f"  10 kohm open on {b}'s wire:",
        f"    skew (Elmore)     : {to_ns(data['elmore_skew']):+.3f} ns",
        f"    skew (electrical) : {to_ns(data['electrical_skew']):+.3f} ns",
        f"    full-stack sensor code, healthy tree : {data['healthy_code']}",
        f"    full-stack sensor code, faulty tree  : {data['code']}",
    ]
    emit("electrical_validation", lines)

    for sink in (a, b):
        ratio = data["electrical"][sink] / data["elmore"][sink]
        assert 0.5 < ratio <= 1.2
    assert data["elmore_skew"] > ns(0.1)
    assert data["electrical_skew"] > ns(0.1)
    # Agreement within 2x on the injected skew magnitude.
    assert 0.5 < data["electrical_skew"] / data["elmore_skew"] < 2.0
    assert data["healthy_code"] == (0, 0)
    assert data["code"] == (0, 1)
