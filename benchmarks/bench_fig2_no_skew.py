"""Fig. 2 - input/output waveforms with no skew.

Paper claim: with simultaneous rising edges both outputs switch low
together but "cannot fall below the n-channel conductance threshold,
because of the feedback between the two blocks", then recover high after
the falling edges.
"""

import pytest

from repro.core.response import ERROR_NONE, simulate_sensor
from repro.core.sensing import SkewSensor
from repro.devices.process import nominal_process
from repro.units import VTH_INTERPRET, fF, ns

from _util import BENCH_OPTIONS, emit


def run():
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    return simulate_sensor(sensor, skew=0.0, options=BENCH_OPTIONS)


def test_fig2_no_skew_waveforms(benchmark):
    response = benchmark.pedantic(run, rounds=3, iterations=1)

    vtn = nominal_process().nmos.vt0
    y1 = response.wave("y1")
    y2 = response.wave("y2")
    samples = [
        (t, y1.at(ns(t)), y2.at(ns(t)))
        for t in (1.0, 2.5, 4.0, 8.0, 12.5, 14.0, 20.0)
    ]
    emit(
        "fig2_no_skew",
        [
            "Fig. 2 reproduction: no skew between phi1/phi2 (160 fF loads)",
            f"  Vmin(y1) = {response.vmin_y1:.3f} V",
            f"  Vmin(y2) = {response.vmin_y2:.3f} V",
            f"  NMOS threshold VTn = {vtn:.2f} V (clamp floor)",
            f"  interpreted code   = {response.code} (no error)",
            "",
            "  t[ns]   V(y1)   V(y2)",
        ]
        + [f"  {t:5.1f}  {v1:6.2f}  {v2:6.2f}" for t, v1, v2 in samples],
    )

    # Shape claims.
    assert response.code == ERROR_NONE
    assert vtn * 0.8 < response.vmin_y1 < VTH_INTERPRET / 2
    assert abs(response.vmin_y1 - response.vmin_y2) < 0.05
    assert y1.final_value() == pytest.approx(5.0, abs=0.1)
