"""Fig. 3 - waveforms in the presence of a skew.

Paper claims: with phi2 delayed, y1 completes its falling transition, the
pull-down of block B is disabled by the feedback transistor, y2 holds high
(error indication 01), and the indication "holds for a time long enough
(half of the clock period)".
"""

import pytest

from repro.core.response import ERROR_PHI1_LATE, ERROR_PHI2_LATE, simulate_sensor
from repro.core.sensing import SkewSensor
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

PERIOD = ns(20.0)
SETTLE = ns(2.0)


def run():
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    return simulate_sensor(
        sensor, skew=ns(1.0), period=PERIOD, settle=SETTLE,
        options=BENCH_OPTIONS,
    )


def test_fig3_skewed_waveforms(benchmark):
    response = benchmark.pedantic(run, rounds=3, iterations=1)

    y1 = response.wave("y1")
    # The 01 indication is established once y1 completed its fall and ends
    # when y1 recovers high at the falling clock edges.
    hold_start = SETTLE + ns(1.2)
    t_recover = y1.first_crossing(VTH_INTERPRET, rising=True, after=hold_start)
    hold = (t_recover or y1.t_stop) - hold_start

    mirror = simulate_sensor(
        SkewSensor(load1=fF(160), load2=fF(160)),
        skew=-ns(1.0), period=PERIOD, settle=SETTLE, options=BENCH_OPTIONS,
    )

    emit(
        "fig3_skew",
        [
            "Fig. 3 reproduction: phi2 late by tau = 1 ns (160 fF loads)",
            f"  Vmin(y1) = {response.vmin_y1:.3f} V (full transition)",
            f"  Vmin(y2) = {response.vmin_y2:.3f} V (held high)",
            f"  code     = {response.code} (error: phi2 late)",
            f"  indication persists {to_ns(hold):.1f} ns "
            f"(half period = {to_ns(PERIOD / 2):.1f} ns)",
            f"  mirror case (phi1 late): code = {mirror.code}",
        ],
    )

    assert response.code == ERROR_PHI2_LATE
    assert response.vmin_y1 < 0.5
    assert response.vmin_y2 > VTH_INTERPRET
    # The static indication lasts essentially the half period (the exact
    # end adds the skew and the pull-up recovery delay).
    assert 0.8 * PERIOD / 2 < hold < 1.3 * PERIOD / 2
    assert mirror.code == ERROR_PHI1_LATE
