"""Fig. 4 - Vmin vs skew for different loads and clock slopes.

Paper claims reproduced here:

* ``Vmin`` of the late output grows monotonically with the skew ``tau``;
* the sensitivity ``tau_min`` (crossing of the 2.75 V threshold) grows
  with load capacitance (paper: ~0.09 ns to ~0.16 ns over 80..240 fF);
* "for each load value ... the resulting curves are almost
  indistinguishable" across clock slews 0.1..0.4 ns.

The same (load, slew, skew) grid is also pushed through the lockstep
batch engine (``backend="batch"``, fresh integrations) and timed against
the serial scalar sweep; the extracted ``tau_min`` values must agree and
the throughputs land in ``out/BENCH_fig4_sensitivity.json``.

Warm-start coverage: the serial and batch legs run with prefix
warm-start on (the default), a cold serial reference leg
(``warm_start=False``) pins the ``tau_min`` deviation of the warm path
at the sub-picosecond level, and a bisection leg times
``extract_tau_min`` warm vs cold (every probe of the warm bisection
forks the same cached prefix checkpoint).
"""

import numpy as np

from repro.core.sensitivity import extract_tau_min, sensitivity_family
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import (
    BENCH_OPTIONS,
    Stopwatch,
    Telemetry,
    emit,
    throughput_metrics,
    write_bench_json,
)

LOADS_FF = (80, 160, 240)
SLEWS_NS = (0.1, 0.2, 0.3, 0.4)
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)

#: Bar on scalar-vs-batch tau_min agreement: the Vmin curve crosses the
#: threshold with a slope of tens of volts per nanosecond, so even at the
#: coarse BENCH_OPTIONS grid the crossing moves by well under 5 ps.
TAU_MIN_TOL = ns(0.005)


#: Bar on warm-vs-cold tau_min agreement: the warm path reuses a
#: bit-exact checkpoint and only truncates the post-measurement tail,
#: so the crossing must not move by even a picosecond.
TAU_WARM_TOL = 1e-12


def _family(backend, telemetry, warm_start=None):
    """One fresh (cache-bypassing) Fig.-4 family on the given backend."""
    return sensitivity_family(
        loads=[fF(c) for c in LOADS_FF],
        slews=[ns(s) for s in SLEWS_NS],
        skews=[ns(t) for t in SKEWS_NS],
        options=BENCH_OPTIONS,
        backend=backend,
        cache=None,
        telemetry=telemetry,
        warm_start=warm_start,
    )


def run():
    tel_cold, tel_scalar, tel_batch = Telemetry(), Telemetry(), Telemetry()
    watch = Stopwatch()
    cold_curves = _family("serial", tel_cold, warm_start=False)
    t_cold = watch.restart()
    curves = _family("serial", tel_scalar)
    t_scalar = watch.restart()
    batch_curves = _family("batch", tel_batch)
    t_batch = watch.restart()
    tau_cold = extract_tau_min(
        fF(160), options=BENCH_OPTIONS, cache=None, warm_start=False
    )
    t_tau_cold = watch.restart()
    tau_warm = extract_tau_min(
        fF(160), options=BENCH_OPTIONS, cache=None, warm_start=True
    )
    t_tau_warm = watch.elapsed()
    return {
        "cold_curves": cold_curves, "curves": curves,
        "batch_curves": batch_curves,
        "t_cold": t_cold, "t_scalar": t_scalar, "t_batch": t_batch,
        "tel_cold": tel_cold, "tel_scalar": tel_scalar,
        "tel_batch": tel_batch,
        "tau_cold": tau_cold, "tau_warm": tau_warm,
        "t_tau_cold": t_tau_cold, "t_tau_warm": t_tau_warm,
    }


def test_fig4_vmin_vs_skew(benchmark):
    leg = benchmark.pedantic(run, rounds=1, iterations=1)
    curves, batch_curves = leg["curves"], leg["batch_curves"]
    t_scalar, t_batch = leg["t_scalar"], leg["t_batch"]
    n_points = len(LOADS_FF) * len(SLEWS_NS) * len(SKEWS_NS)
    tau_deltas = np.array([
        abs(s.tau_min - b.tau_min)
        for s, b in zip(curves, batch_curves)
        if s.tau_min is not None and b.tau_min is not None
    ])
    warm_deltas = np.array([
        abs(w.tau_min - c.tau_min)
        for w, c in zip(curves, leg["cold_curves"])
        if w.tau_min is not None and c.tau_min is not None
    ])
    scalar_metrics = throughput_metrics(leg["tel_scalar"], t_scalar, n_points)
    batch_metrics = throughput_metrics(leg["tel_batch"], t_batch, n_points)
    write_bench_json("fig4_sensitivity", {
        "options": {"dt_max": BENCH_OPTIONS.dt_max,
                    "reltol": BENCH_OPTIONS.reltol},
        "grid": {"loads_fF": list(LOADS_FF), "slews_ns": list(SLEWS_NS),
                 "skews_ns": list(SKEWS_NS)},
        "scalar": {"backend": "serial", "cache_hit_rate": 0.0,
                   "kernel": dict(leg["tel_scalar"].kernel),
                   **scalar_metrics},
        "batch": {"backend": "batch", "cache_hit_rate": 0.0,
                  "kernel": dict(leg["tel_batch"].kernel),
                  **batch_metrics},
        "scalar_cold": {"backend": "serial", "warm_start": False,
                        "wall_s": leg["t_cold"],
                        "cold_samples_per_s": n_points / leg["t_cold"]},
        "speedup_batch_vs_serial": t_scalar / t_batch,
        "speedup_warm_vs_cold_serial": leg["t_cold"] / t_scalar,
        "tau_min_deviation_max_s": float(warm_deltas.max()),
        "tau_min_deviation_batch_s": float(tau_deltas.max()),
        "tau_extract": {
            "load_fF": 160.0,
            "cold_wall_s": leg["t_tau_cold"],
            "warm_wall_s": leg["t_tau_warm"],
            "speedup_warm_vs_cold": leg["t_tau_cold"] / leg["t_tau_warm"],
            "tau_min_deviation_s": abs(leg["tau_warm"] - leg["tau_cold"]),
        },
    })
    assert len(tau_deltas) == len(curves), "batch lost a tau_min crossing"
    assert tau_deltas.max() <= TAU_MIN_TOL, (
        f"batch tau_min deviates {tau_deltas.max() * 1e12:.2f} ps"
    )
    assert len(warm_deltas) == len(curves), "warm start lost a crossing"
    assert warm_deltas.max() <= TAU_WARM_TOL, (
        f"warm-start tau_min deviates {warm_deltas.max() * 1e12:.3f} ps"
    )
    assert abs(leg["tau_warm"] - leg["tau_cold"]) <= TAU_WARM_TOL, (
        "warm bisection changed the returned tau_min"
    )

    lines = [
        "Fig. 4 reproduction: Vmin of the late output vs skew tau",
        f"  threshold Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  load  slew | " + "  ".join(f"{t:5.2f}" for t in SKEWS_NS) + "  (tau, ns)",
    ]
    tau_by_load = {}
    for curve in curves:
        row = "  ".join(f"{v:5.2f}" for v in curve.vmins)
        tau = curve.tau_min
        lines.append(
            f"  {curve.load * 1e15:4.0f}  {curve.slew * 1e9:4.1f} | {row}"
            f"   tau_min={to_ns(tau):.3f} ns"
        )
        tau_by_load.setdefault(curve.load, []).append(tau)
    lines.append("")
    lines.append("  sensitivity per load (mean over slews):")
    for load, taus in sorted(tau_by_load.items()):
        spread = (max(taus) - min(taus)) / np.mean(taus)
        lines.append(
            f"    C = {load * 1e15:4.0f} fF : tau_min = "
            f"{to_ns(float(np.mean(taus))):.3f} ns "
            f"(slew-induced spread {spread * 100:.1f} %)"
        )
    lines.append("  paper: tau_min ~= 0.09 .. 0.16 ns, slew-insensitive")
    emit("fig4_sensitivity", lines)

    # Shape claims.
    for curve in curves:
        assert np.all(np.diff(curve.vmins) > -1e-3), "Vmin must rise with tau"
        assert curve.tau_min is not None
    means = [float(np.mean(taus)) for _, taus in sorted(tau_by_load.items())]
    assert means == sorted(means), "tau_min must grow with load"
    assert ns(0.02) < means[0] < means[-1] < ns(0.3)
    for _, taus in sorted(tau_by_load.items()):
        assert (max(taus) - min(taus)) / np.mean(taus) < 0.15, \
            "curves must be nearly slew-independent"
