"""Fig. 4 - Vmin vs skew for different loads and clock slopes.

Paper claims reproduced here:

* ``Vmin`` of the late output grows monotonically with the skew ``tau``;
* the sensitivity ``tau_min`` (crossing of the 2.75 V threshold) grows
  with load capacitance (paper: ~0.09 ns to ~0.16 ns over 80..240 fF);
* "for each load value ... the resulting curves are almost
  indistinguishable" across clock slews 0.1..0.4 ns.
"""

import numpy as np

from repro.core.sensitivity import sensitivity_family
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

LOADS_FF = (80, 160, 240)
SLEWS_NS = (0.1, 0.2, 0.3, 0.4)
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)


def run():
    return sensitivity_family(
        loads=[fF(c) for c in LOADS_FF],
        slews=[ns(s) for s in SLEWS_NS],
        skews=[ns(t) for t in SKEWS_NS],
        options=BENCH_OPTIONS,
    )


def test_fig4_vmin_vs_skew(benchmark):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Fig. 4 reproduction: Vmin of the late output vs skew tau",
        f"  threshold Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  load  slew | " + "  ".join(f"{t:5.2f}" for t in SKEWS_NS) + "  (tau, ns)",
    ]
    tau_by_load = {}
    for curve in curves:
        row = "  ".join(f"{v:5.2f}" for v in curve.vmins)
        tau = curve.tau_min
        lines.append(
            f"  {curve.load * 1e15:4.0f}  {curve.slew * 1e9:4.1f} | {row}"
            f"   tau_min={to_ns(tau):.3f} ns"
        )
        tau_by_load.setdefault(curve.load, []).append(tau)
    lines.append("")
    lines.append("  sensitivity per load (mean over slews):")
    for load, taus in sorted(tau_by_load.items()):
        spread = (max(taus) - min(taus)) / np.mean(taus)
        lines.append(
            f"    C = {load * 1e15:4.0f} fF : tau_min = "
            f"{to_ns(float(np.mean(taus))):.3f} ns "
            f"(slew-induced spread {spread * 100:.1f} %)"
        )
    lines.append("  paper: tau_min ~= 0.09 .. 0.16 ns, slew-insensitive")
    emit("fig4_sensitivity", lines)

    # Shape claims.
    for curve in curves:
        assert np.all(np.diff(curve.vmins) > -1e-3), "Vmin must rise with tau"
        assert curve.tau_min is not None
    means = [float(np.mean(taus)) for _, taus in sorted(tau_by_load.items())]
    assert means == sorted(means), "tau_min must grow with load"
    assert ns(0.02) < means[0] < means[-1] < ns(0.3)
    for _, taus in sorted(tau_by_load.items()):
        assert (max(taus) - min(taus)) / np.mean(taus) < 0.15, \
            "curves must be nearly slew-independent"
