"""Fig. 4 - Vmin vs skew for different loads and clock slopes.

Paper claims reproduced here:

* ``Vmin`` of the late output grows monotonically with the skew ``tau``;
* the sensitivity ``tau_min`` (crossing of the 2.75 V threshold) grows
  with load capacitance (paper: ~0.09 ns to ~0.16 ns over 80..240 fF);
* "for each load value ... the resulting curves are almost
  indistinguishable" across clock slews 0.1..0.4 ns.

The same (load, slew, skew) grid is also pushed through the lockstep
batch engine (``backend="batch"``, fresh integrations) and timed against
the serial scalar sweep; the extracted ``tau_min`` values must agree and
the throughputs land in ``out/BENCH_fig4_sensitivity.json``.
"""

import numpy as np

from repro.core.sensitivity import sensitivity_family
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, Stopwatch, Telemetry, emit, write_bench_json

LOADS_FF = (80, 160, 240)
SLEWS_NS = (0.1, 0.2, 0.3, 0.4)
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)

#: Bar on scalar-vs-batch tau_min agreement: the Vmin curve crosses the
#: threshold with a slope of tens of volts per nanosecond, so even at the
#: coarse BENCH_OPTIONS grid the crossing moves by well under 5 ps.
TAU_MIN_TOL = ns(0.005)


def _family(backend, telemetry):
    """One fresh (cache-bypassing) Fig.-4 family on the given backend."""
    return sensitivity_family(
        loads=[fF(c) for c in LOADS_FF],
        slews=[ns(s) for s in SLEWS_NS],
        skews=[ns(t) for t in SKEWS_NS],
        options=BENCH_OPTIONS,
        backend=backend,
        cache=None,
        telemetry=telemetry,
    )


def run():
    tel_scalar, tel_batch = Telemetry(), Telemetry()
    watch = Stopwatch()
    curves = _family("serial", tel_scalar)
    t_scalar = watch.restart()
    batch_curves = _family("batch", tel_batch)
    t_batch = watch.elapsed()
    return curves, batch_curves, t_scalar, t_batch, tel_scalar, tel_batch


def test_fig4_vmin_vs_skew(benchmark):
    curves, batch_curves, t_scalar, t_batch, tel_scalar, tel_batch = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    n_points = len(LOADS_FF) * len(SLEWS_NS) * len(SKEWS_NS)
    tau_deltas = np.array([
        abs(s.tau_min - b.tau_min)
        for s, b in zip(curves, batch_curves)
        if s.tau_min is not None and b.tau_min is not None
    ])
    write_bench_json("fig4_sensitivity", {
        "options": {"dt_max": BENCH_OPTIONS.dt_max,
                    "reltol": BENCH_OPTIONS.reltol},
        "grid": {"loads_fF": list(LOADS_FF), "slews_ns": list(SLEWS_NS),
                 "skews_ns": list(SKEWS_NS)},
        "scalar": {"backend": "serial", "wall_s": t_scalar,
                   "samples_per_s": n_points / t_scalar,
                   "cache_hit_rate": 0.0,
                   "kernel": dict(tel_scalar.kernel)},
        "batch": {"backend": "batch", "wall_s": t_batch,
                  "samples_per_s": n_points / t_batch,
                  "cache_hit_rate": 0.0,
                  "kernel": dict(tel_batch.kernel)},
        "speedup_batch_vs_serial": t_scalar / t_batch,
        "tau_min_deviation_max_s": float(tau_deltas.max()),
    })
    assert len(tau_deltas) == len(curves), "batch lost a tau_min crossing"
    assert tau_deltas.max() <= TAU_MIN_TOL, (
        f"batch tau_min deviates {tau_deltas.max() * 1e12:.2f} ps"
    )

    lines = [
        "Fig. 4 reproduction: Vmin of the late output vs skew tau",
        f"  threshold Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  load  slew | " + "  ".join(f"{t:5.2f}" for t in SKEWS_NS) + "  (tau, ns)",
    ]
    tau_by_load = {}
    for curve in curves:
        row = "  ".join(f"{v:5.2f}" for v in curve.vmins)
        tau = curve.tau_min
        lines.append(
            f"  {curve.load * 1e15:4.0f}  {curve.slew * 1e9:4.1f} | {row}"
            f"   tau_min={to_ns(tau):.3f} ns"
        )
        tau_by_load.setdefault(curve.load, []).append(tau)
    lines.append("")
    lines.append("  sensitivity per load (mean over slews):")
    for load, taus in sorted(tau_by_load.items()):
        spread = (max(taus) - min(taus)) / np.mean(taus)
        lines.append(
            f"    C = {load * 1e15:4.0f} fF : tau_min = "
            f"{to_ns(float(np.mean(taus))):.3f} ns "
            f"(slew-induced spread {spread * 100:.1f} %)"
        )
    lines.append("  paper: tau_min ~= 0.09 .. 0.16 ns, slew-insensitive")
    emit("fig4_sensitivity", lines)

    # Shape claims.
    for curve in curves:
        assert np.all(np.diff(curve.vmins) > -1e-3), "Vmin must rise with tau"
        assert curve.tau_min is not None
    means = [float(np.mean(taus)) for _, taus in sorted(tau_by_load.items())]
    assert means == sorted(means), "tau_min must grow with load"
    assert ns(0.02) < means[0] < means[-1] < ns(0.3)
    for _, taus in sorted(tau_by_load.items()):
        assert (max(taus) - min(taus)) / np.mean(taus) < 0.15, \
            "curves must be nearly slew-independent"
