"""Fig. 5 - Monte Carlo scatterplot of Vmin vs skew.

Paper setup: uniform +/-15 % relative variation on circuit parameters and
load, clock slews uniform in [0.1, 0.4] ns, inputs independent.  Claim:
"the proposed circuit is slightly sensitive to parameters variations" -
the scatter stays narrow around the nominal curve and the error/no-error
separation survives.

This bench also doubles as the batched-engine acceptance check: the same
(sample, skew) grid is evaluated once through the scalar engine behind
``backend="process"`` and once through the lockstep vectorised engine
behind ``backend="batch"``, the per-point ``Vmin`` values must agree
within 1 mV, and the measured throughputs land in
``out/BENCH_fig5_montecarlo.json``.  Both runs use
:data:`_util.ACCURATE_OPTIONS`: the equivalence bar only means something
where the scalar engine is itself grid-converged.
"""

import numpy as np

from repro.core.sensitivity import extract_tau_min
from repro.montecarlo.parallel import default_workers, scatter_analysis_parallel
from repro.montecarlo.sampling import sample_population
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import ACCURATE_OPTIONS, Stopwatch, Telemetry, emit, write_bench_json

N_SAMPLES = 30
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.25, 0.4)
LOAD = fF(160)
SEED = 2024

#: Acceptance bar on per-point batch-vs-scalar Vmin agreement, volts.
EQUIVALENCE_TOL = 1e-3
#: Acceptance bar on batch-vs-process throughput.
SPEEDUP_MIN = 5.0


def _run_backend(backend, samples, n_workers=None):
    """One fresh (cache-bypassing) scatter campaign; returns metrics too.

    ``n_workers=None`` defers to the runtime's resolution chain
    (``REPRO_MAX_WORKERS``, else half the CPUs); the metrics record the
    *effective* pool width either way.
    """
    effective_workers = n_workers if n_workers is not None else default_workers()
    telemetry = Telemetry()
    watch = Stopwatch()
    points = scatter_analysis_parallel(
        samples,
        skews=[ns(t) for t in SKEWS_NS],
        options=ACCURATE_OPTIONS,
        backend=backend,
        n_workers=n_workers,
        cache=None,
        telemetry=telemetry,
    )
    wall = watch.elapsed()
    lookups = telemetry.cache_hits + telemetry.cache_misses
    return points, {
        "backend": backend,
        "workers": effective_workers,
        "wall_s": wall,
        "samples_per_s": len(points) / wall,
        "jobs": len(points),
        "cache_hit_rate": telemetry.cache_hits / lookups if lookups else 0.0,
        "batched_samples": telemetry.batched_samples,
        "batch_fallbacks": telemetry.batch_fallbacks,
        "kernel": dict(telemetry.kernel),
    }


def run():
    samples = sample_population(N_SAMPLES, LOAD, seed=SEED)
    # The scalar reference goes through a genuine process pool (>= 2
    # workers even on one CPU, so IPC costs are not dodged); the batch
    # leg fans whole stacks over the same resolved pool width
    # (REPRO_MAX_WORKERS, else half the CPUs) so its number reflects
    # vectorisation *and* the worker fan-out a real campaign would get.
    scalar_points, scalar_metrics = _run_backend(
        "process", samples, max(2, default_workers())
    )
    batch_points, batch_metrics = _run_backend("batch", samples)
    return scalar_points, scalar_metrics, batch_points, batch_metrics


def test_fig5_scatterplot(benchmark):
    scalar_points, scalar_metrics, batch_points, batch_metrics = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    tau_nominal = extract_tau_min(
        LOAD, tolerance=ns(0.005), options=ACCURATE_OPTIONS
    )

    # Batched-engine acceptance: per-point equivalence and throughput.
    deviations = np.array([
        abs(s.vmin - b.vmin) for s, b in zip(scalar_points, batch_points)
    ])
    speedup = batch_metrics["samples_per_s"] / scalar_metrics["samples_per_s"]
    write_bench_json("fig5_montecarlo", {
        "options": {"dt_max": ACCURATE_OPTIONS.dt_max,
                    "reltol": ACCURATE_OPTIONS.reltol},
        "grid": {"samples": N_SAMPLES, "skews_ns": list(SKEWS_NS),
                 "seed": SEED},
        "scalar": scalar_metrics,
        "batch": batch_metrics,
        "speedup_batch_vs_process": speedup,
        "vmin_deviation_max": float(deviations.max()),
        "vmin_deviation_mean": float(deviations.mean()),
    })

    points = scalar_points
    lines = [
        "Fig. 5 reproduction: Monte Carlo scatter of Vmin vs tau "
        f"(nominal C = {LOAD * 1e15:.0f} fF, {N_SAMPLES} samples)",
        f"  parameter variation +/-15 % uniform; slews U[0.1, 0.4] ns",
        f"  nominal tau_min = {to_ns(tau_nominal):.3f} ns; "
        f"Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  tau[ns]   Vmin: min    mean    max   sigma   flagged",
    ]
    spread_at = {}
    for tau_ns in SKEWS_NS:
        vmins = np.array([p.vmin for p in points if p.skew == ns(tau_ns)])
        flagged = int((vmins > VTH_INTERPRET).sum())
        spread_at[tau_ns] = vmins
        lines.append(
            f"  {tau_ns:6.2f}   {vmins.min():9.2f} {vmins.mean():7.2f} "
            f"{vmins.max():6.2f} {vmins.std():7.3f}   {flagged}/{len(vmins)}"
        )
    lines += [
        "",
        "  batched engine vs scalar (same grid, fresh integrations):",
        f"    max |dVmin| = {deviations.max() * 1e3:.3f} mV "
        f"(bar {EQUIVALENCE_TOL * 1e3:.0f} mV), "
        f"mean {deviations.mean() * 1e3:.3f} mV",
        f"    throughput  = {batch_metrics['samples_per_s']:.2f} vs "
        f"{scalar_metrics['samples_per_s']:.2f} samples/s "
        f"-> {speedup:.2f}x (bar {SPEEDUP_MIN:.0f}x)",
    ]
    emit("fig5_montecarlo", lines)

    # Shape claims: clean separation far from tau_min.  In the transition
    # region the population is bimodal (a sample's own parameter draw
    # decides its side of the threshold) - exactly the scatter the paper
    # shows - so only the far points admit hard assertions.
    assert np.mean(spread_at[0.0] > VTH_INTERPRET) <= 0.1, "false alarms at tau=0"
    assert np.mean(spread_at[0.4] > VTH_INTERPRET) >= 0.9, "misses at tau=0.4 ns"
    means = [spread_at[t].mean() for t in SKEWS_NS]
    assert means == sorted(means), "mean Vmin must rise with tau"

    # Batched-engine acceptance claims.
    assert deviations.max() <= EQUIVALENCE_TOL, (
        f"batch deviates {deviations.max() * 1e3:.3f} mV from scalar"
    )
    assert batch_metrics["batch_fallbacks"] == 0, "unexpected scalar fallbacks"
    assert speedup >= SPEEDUP_MIN, (
        f"batch speedup {speedup:.2f}x below the {SPEEDUP_MIN:.0f}x bar"
    )
