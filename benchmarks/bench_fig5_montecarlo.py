"""Fig. 5 - Monte Carlo scatterplot of Vmin vs skew.

Paper setup: uniform +/-15 % relative variation on circuit parameters and
load, clock slews uniform in [0.1, 0.4] ns, inputs independent.  Claim:
"the proposed circuit is slightly sensitive to parameters variations" -
the scatter stays narrow around the nominal curve and the error/no-error
separation survives.

This bench also doubles as the batched-engine acceptance check: the same
(sample, skew) grid is evaluated once through the scalar engine behind
``backend="process"`` and once through the lockstep vectorised engine
behind ``backend="batch"``, the per-point ``Vmin`` values must agree
within 1 mV, and the measured throughputs land in
``out/BENCH_fig5_montecarlo.json``.  Both runs use
:data:`_util.ACCURATE_OPTIONS`: the equivalence bar only means something
where the scalar engine is itself grid-converged.

When the resolved shard worker count is above one (CI pins
``REPRO_BATCH_WORKERS=2``; locally ``REPRO_MAX_WORKERS`` decides), two
further *warm* legs run - warm-start is the campaign default, and the
cross-worker shared prefix store is precisely what sharding has to keep
working: a single-worker warm leg and a sharded warm leg at the same
pinned stack size (same stack composition).  The sharded leg's
per-point ``Vmin`` must be **bit-identical** to the warm single-worker
leg (not merely within tolerance), its ``prefix_hit_rate`` must stay
positive (shards fork the published checkpoint instead of rebuilding
it), and the throughput ratio lands in the record as ``shard_speedup``
(the multiply of the SIMD and multicore axes).
"""

import numpy as np

from repro.batch.dispatch import resolve_batch_workers
from repro.core.sensitivity import extract_tau_min
from repro.montecarlo.parallel import default_workers, scatter_analysis_parallel
from repro.montecarlo.sampling import sample_population
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import (
    ACCURATE_OPTIONS,
    Stopwatch,
    Telemetry,
    emit,
    throughput_metrics,
    write_bench_json,
)

N_SAMPLES = 30
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.25, 0.4)
LOAD = fF(160)
SEED = 2024

#: Acceptance bar on per-point batch-vs-scalar Vmin agreement, volts.
EQUIVALENCE_TOL = 1e-3
#: Acceptance bar on batch-vs-process throughput.  Only meaningful on
#: the *cold* legs: warm-start compresses the ratio on both sides (both
#: engines then integrate measurement suffixes only, in per-prefix
#: groups of ``len(SKEWS_NS)`` samples), so the engine acceptance pins
#: ``warm_start=False`` exactly as the committed baseline record did.
SPEEDUP_MIN = 5.0

#: Pinned samples per stack for the cold batch leg: big enough for the
#: full SIMD win, small enough that a sharded pool would stay balanced.
COLD_STACK_SIZE = 30

#: Pinned samples per stack for the warm legs: the warm group size (one
#: prefix, all its skews).  Pinning matters because the auto-tuned size
#: depends on the shard worker count (its fan-out bound) - identical
#: stack composition is what makes the warm legs bit-comparable.
WARM_STACK_SIZE = len(SKEWS_NS)


def _run_backend(backend, samples, n_workers=None, batch_workers=None,
                 chunksize=None, warm_start=False):
    """One fresh (cache-bypassing) scatter campaign; returns metrics too.

    ``n_workers=None`` defers to the runtime's resolution chain
    (``REPRO_MAX_WORKERS``, else half the CPUs); the metrics record the
    *effective* pool width either way.  ``samples_per_s`` excludes the
    one-time prefix-build wall (see :func:`_util.throughput_metrics`) -
    a no-op on cold legs, and on warm legs it keeps the rate honest
    whichever leg happened to build the shared checkpoints first.
    """
    effective_workers = n_workers if n_workers is not None else default_workers()
    telemetry = Telemetry()
    watch = Stopwatch()
    points = scatter_analysis_parallel(
        samples,
        skews=[ns(t) for t in SKEWS_NS],
        options=ACCURATE_OPTIONS,
        backend=backend,
        n_workers=n_workers,
        batch_workers=batch_workers,
        chunksize=chunksize,
        cache=None,
        telemetry=telemetry,
        warm_start=warm_start,
    )
    wall = watch.elapsed()
    lookups = telemetry.cache_hits + telemetry.cache_misses
    return points, {
        "backend": backend,
        "workers": effective_workers,
        "warm_start": warm_start,
        "jobs": len(points),
        "cache_hit_rate": telemetry.cache_hits / lookups if lookups else 0.0,
        "batched_samples": telemetry.batched_samples,
        "batch_fallbacks": telemetry.batch_fallbacks,
        "batch_stack_size": telemetry.batch_stack_size,
        "batch_workers": telemetry.batch_workers,
        "kernel": dict(telemetry.kernel),
        **throughput_metrics(telemetry, wall, len(points)),
    }


def run():
    samples = sample_population(N_SAMPLES, LOAD, seed=SEED)
    # Engine acceptance, cold: the scalar reference goes through a
    # genuine process pool (>= 2 workers even on one CPU, so IPC costs
    # are not dodged); the batch leg runs the lockstep engine on one
    # worker.  Both integrate full horizons - the convention the
    # committed baseline and the SPEEDUP_MIN bar were set under.
    scalar_points, scalar_metrics = _run_backend(
        "process", samples, max(2, default_workers())
    )
    batch_points, batch_metrics = _run_backend(
        "batch", samples, batch_workers=1, chunksize=COLD_STACK_SIZE
    )
    # Shard acceptance, warm (the campaign default, and the case the
    # shared prefix store exists for): a single-worker warm leg and a
    # sharded warm leg at the same pinned stack size, bit-compared.
    # Skipped when the resolution says one worker (nothing to multiply);
    # CI pins REPRO_BATCH_WORKERS=2.
    shard_workers = resolve_batch_workers()
    sharded = None
    if shard_workers > 1:
        warm_points, warm_metrics = _run_backend(
            "batch", samples, batch_workers=1, chunksize=WARM_STACK_SIZE,
            warm_start=True,
        )
        sharded_points, sharded_metrics = _run_backend(
            "batch", samples, batch_workers=shard_workers,
            chunksize=WARM_STACK_SIZE, warm_start=True,
        )
        sharded = (warm_points, warm_metrics, sharded_points, sharded_metrics)
    return scalar_points, scalar_metrics, batch_points, batch_metrics, sharded


def test_fig5_scatterplot(benchmark):
    scalar_points, scalar_metrics, batch_points, batch_metrics, sharded = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    tau_nominal = extract_tau_min(
        LOAD, tolerance=ns(0.005), options=ACCURATE_OPTIONS
    )

    # Batched-engine acceptance: per-point equivalence and throughput.
    deviations = np.array([
        abs(s.vmin - b.vmin) for s, b in zip(scalar_points, batch_points)
    ])
    speedup = batch_metrics["samples_per_s"] / scalar_metrics["samples_per_s"]
    record = {
        "options": {"dt_max": ACCURATE_OPTIONS.dt_max,
                    "reltol": ACCURATE_OPTIONS.reltol},
        "grid": {"samples": N_SAMPLES, "skews_ns": list(SKEWS_NS),
                 "seed": SEED},
        "scalar": scalar_metrics,
        "batch": batch_metrics,
        "speedup_batch_vs_process": speedup,
        "vmin_deviation_max": float(deviations.max()),
        "vmin_deviation_mean": float(deviations.mean()),
    }
    shard_mismatches = None
    if sharded is not None:
        warm_points, warm_metrics, sharded_points, sharded_metrics = sharded
        shard_mismatches = sum(
            1 for b, s in zip(warm_points, sharded_points)
            if b.vmin != s.vmin  # bit-identity, not a tolerance
        )
        record["batch_warm"] = warm_metrics
        record["batch_sharded"] = sharded_metrics
        record["shard_speedup"] = (sharded_metrics["samples_per_s"]
                                   / warm_metrics["samples_per_s"])
        record["shard_vmin_mismatches"] = shard_mismatches
    write_bench_json("fig5_montecarlo", record)

    points = scalar_points
    lines = [
        "Fig. 5 reproduction: Monte Carlo scatter of Vmin vs tau "
        f"(nominal C = {LOAD * 1e15:.0f} fF, {N_SAMPLES} samples)",
        f"  parameter variation +/-15 % uniform; slews U[0.1, 0.4] ns",
        f"  nominal tau_min = {to_ns(tau_nominal):.3f} ns; "
        f"Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  tau[ns]   Vmin: min    mean    max   sigma   flagged",
    ]
    spread_at = {}
    for tau_ns in SKEWS_NS:
        vmins = np.array([p.vmin for p in points if p.skew == ns(tau_ns)])
        flagged = int((vmins > VTH_INTERPRET).sum())
        spread_at[tau_ns] = vmins
        lines.append(
            f"  {tau_ns:6.2f}   {vmins.min():9.2f} {vmins.mean():7.2f} "
            f"{vmins.max():6.2f} {vmins.std():7.3f}   {flagged}/{len(vmins)}"
        )
    lines += [
        "",
        "  batched engine vs scalar (same grid, fresh integrations):",
        f"    max |dVmin| = {deviations.max() * 1e3:.3f} mV "
        f"(bar {EQUIVALENCE_TOL * 1e3:.0f} mV), "
        f"mean {deviations.mean() * 1e3:.3f} mV",
        f"    throughput  = {batch_metrics['samples_per_s']:.2f} vs "
        f"{scalar_metrics['samples_per_s']:.2f} samples/s "
        f"-> {speedup:.2f}x (bar {SPEEDUP_MIN:.0f}x)",
    ]
    if sharded is not None:
        _, warm_metrics, _, sharded_metrics = sharded
        lines += [
            f"    sharded warm= {sharded_metrics['samples_per_s']:.2f} "
            f"samples/s over {sharded_metrics['batch_workers']} workers "
            f"-> {record['shard_speedup']:.2f}x the warm single-worker "
            f"batch ({warm_metrics['samples_per_s']:.2f}), "
            f"{shard_mismatches} bit mismatches, prefix hit rate "
            f"{sharded_metrics['prefix_hit_rate']:.2f}",
        ]
    emit("fig5_montecarlo", lines)

    # Shape claims: clean separation far from tau_min.  In the transition
    # region the population is bimodal (a sample's own parameter draw
    # decides its side of the threshold) - exactly the scatter the paper
    # shows - so only the far points admit hard assertions.
    assert np.mean(spread_at[0.0] > VTH_INTERPRET) <= 0.1, "false alarms at tau=0"
    assert np.mean(spread_at[0.4] > VTH_INTERPRET) >= 0.9, "misses at tau=0.4 ns"
    means = [spread_at[t].mean() for t in SKEWS_NS]
    assert means == sorted(means), "mean Vmin must rise with tau"

    # Batched-engine acceptance claims.
    assert deviations.max() <= EQUIVALENCE_TOL, (
        f"batch deviates {deviations.max() * 1e3:.3f} mV from scalar"
    )
    assert batch_metrics["batch_fallbacks"] == 0, "unexpected scalar fallbacks"
    assert speedup >= SPEEDUP_MIN, (
        f"batch speedup {speedup:.2f}x below the {SPEEDUP_MIN:.0f}x bar"
    )
    # Sharded acceptance: identical bits and live prefix sharing,
    # always; the >= 1.5x throughput bar lives in
    # tools/check_bench_regression.py (shard_speedup <= 1.0 is always
    # flagged) because wall-clock gain needs real cores, which a
    # one-CPU box cannot provide.
    if sharded is not None:
        assert shard_mismatches == 0, (
            f"{shard_mismatches} per-point Vmin bits differ between the "
            "sharded and single-worker warm batch paths"
        )
        assert sharded[3]["prefix_hit_rate"] > 0, (
            "sharded warm leg never forked the published prefix"
        )
