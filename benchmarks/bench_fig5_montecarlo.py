"""Fig. 5 - Monte Carlo scatterplot of Vmin vs skew.

Paper setup: uniform +/-15 % relative variation on circuit parameters and
load, clock slews uniform in [0.1, 0.4] ns, inputs independent.  Claim:
"the proposed circuit is slightly sensitive to parameters variations" -
the scatter stays narrow around the nominal curve and the error/no-error
separation survives.
"""

import numpy as np

from repro.core.sensitivity import extract_tau_min
from repro.montecarlo.analysis import scatter_analysis
from repro.montecarlo.sampling import sample_population
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

N_SAMPLES = 30
SKEWS_NS = (0.0, 0.05, 0.1, 0.15, 0.25, 0.4)
LOAD = fF(160)


def run():
    samples = sample_population(
        N_SAMPLES, LOAD, rng=np.random.default_rng(2024)
    )
    return scatter_analysis(
        samples, skews=[ns(t) for t in SKEWS_NS], options=BENCH_OPTIONS
    )


def test_fig5_scatterplot(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    tau_nominal = extract_tau_min(LOAD, tolerance=ns(0.005), options=BENCH_OPTIONS)

    lines = [
        "Fig. 5 reproduction: Monte Carlo scatter of Vmin vs tau "
        f"(nominal C = {LOAD * 1e15:.0f} fF, {N_SAMPLES} samples)",
        f"  parameter variation +/-15 % uniform; slews U[0.1, 0.4] ns",
        f"  nominal tau_min = {to_ns(tau_nominal):.3f} ns; "
        f"Vth = {VTH_INTERPRET:.2f} V",
        "",
        "  tau[ns]   Vmin: min    mean    max   sigma   flagged",
    ]
    spread_at = {}
    for tau_ns in SKEWS_NS:
        vmins = np.array([p.vmin for p in points if p.skew == ns(tau_ns)])
        flagged = int((vmins > VTH_INTERPRET).sum())
        spread_at[tau_ns] = vmins
        lines.append(
            f"  {tau_ns:6.2f}   {vmins.min():9.2f} {vmins.mean():7.2f} "
            f"{vmins.max():6.2f} {vmins.std():7.3f}   {flagged}/{len(vmins)}"
        )
    emit("fig5_montecarlo", lines)

    # Shape claims: clean separation far from tau_min.  In the transition
    # region the population is bimodal (a sample's own parameter draw
    # decides its side of the threshold) - exactly the scatter the paper
    # shows - so only the far points admit hard assertions.
    assert np.mean(spread_at[0.0] > VTH_INTERPRET) <= 0.1, "false alarms at tau=0"
    assert np.mean(spread_at[0.4] > VTH_INTERPRET) >= 0.9, "misses at tau=0.4 ns"
    means = [spread_at[t].mean() for t in SKEWS_NS]
    assert means == sorted(means), "mean Vmin must rise with tau"
