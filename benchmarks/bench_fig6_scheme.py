"""Fig. 6 - the sensing circuits deployed inside a clock distribution.

The figure is a schematic; the reproduced content is the *system*: critical
couples of clock wires in a buffered tree are monitored by sensors, error
indicators latch, and the testing/checking circuitry collects the answers
(scan path off-line, two-rail checker on-line).  The bench runs a fault
campaign over both tree styles (symmetric H-tree and DME zero-skew routed)
and validates one behavioural verdict with the transistor-level sensor.

With ``REPRO_BENCH_WHOLE_TREE=1`` the bench additionally runs the
full-chip electrical path (`repro.clocktree.whole_tree`, sparse MNA
engine): the same fault is simulated on the fully expanded tree with
sensors grafted, and the Elmore-predicted skews are compared against the
electrically measured ones.  The discrepancy lands in the BENCH record
(``elmore_discrepancy_max_s``) - it quantifies how much the behavioural
campaign's delay model diverges from the transistor-level truth.
"""

import os

import numpy as np

from repro.clocktree import (
    Buffer,
    BufferSlowdown,
    CrosstalkCoupling,
    ResistiveOpen,
    build_h_tree,
    build_zero_skew_tree,
    sink_delays,
)
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit, write_bench_json


def build_trees():
    htree = build_h_tree(levels=2, chip_size=10e-3, buffer=Buffer())
    rng = np.random.default_rng(77)
    sinks = [
        (f"s{k}",
         (float(rng.uniform(0, 10e-3)), float(rng.uniform(0, 10e-3))),
         50e-15)
        for k in range(16)
    ]
    dme = build_zero_skew_tree(sinks, root_buffer=Buffer())
    return htree, dme


def campaign(tree, tau_min):
    scheme = ClockTestingScheme.plan(
        tree, tau_min=tau_min, max_distance=8e-3, top_k=6
    )
    victim = scheme.placements[0].pair.sink_a
    faults = [
        ("healthy", None),
        ("open 8k", ResistiveOpen(node=victim, extra_resistance=8000.0)),
        ("xtalk 800fF", CrosstalkCoupling(node=victim,
                                          coupling_capacitance=800e-15)),
    ]
    buffered = [
        n.name for n in tree.walk()
        if n.buffer is not None and n.parent is not None
    ]
    if buffered:
        faults.append(("buffer x1.4", BufferSlowdown(node=buffered[0], factor=1.4)))

    rows = []
    for label, fault in faults:
        scheme.reset()
        state = fault.apply(tree) if fault is not None else None
        observations = scheme.observe(state)
        worst = max((abs(o.skew) for o in observations), default=0.0)
        rows.append(
            (label, worst, sum(o.flagged for o in observations),
             scheme.online_alarm())
        )
    return scheme, rows


def run():
    htree, dme = build_trees()
    tau_min = extract_tau_min(fF(160), tolerance=ns(0.01), options=BENCH_OPTIONS)
    return tau_min, campaign(htree, tau_min), campaign(dme, tau_min)


def test_fig6_scheme_campaign(benchmark):
    tau_min, (h_scheme, h_rows), (d_scheme, d_rows) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        "Fig. 6 reproduction: sensors + indicators + readout over a clock tree",
        f"  sensor sensitivity tau_min = {to_ns(tau_min):.3f} ns",
        "",
    ]
    for name, scheme, rows in (
        ("buffered H-tree (16 sinks)", h_scheme, h_rows),
        ("DME zero-skew tree (16 sinks)", d_scheme, d_rows),
    ):
        lines.append(f"  {name}: {len(scheme.placements)} monitored pairs")
        lines.append("    fault         worst skew    flags  online alarm")
        for label, worst, flags, alarm in rows:
            lines.append(
                f"    {label:<12} {to_ns(worst):8.3f} ns   {flags:>4}   {alarm}"
            )
        lines.append("")

    # Transistor-level validation of one flagged case.
    htree, _ = build_trees()
    nominal = sink_delays(htree)
    scheme = ClockTestingScheme.plan(
        htree, tau_min=tau_min, max_distance=8e-3, top_k=1
    )
    victim = scheme.placements[0].pair.sink_a
    other = scheme.placements[0].pair.sink_b
    faulty = sink_delays(
        ResistiveOpen(node=victim, extra_resistance=8000.0).apply(htree)
    )
    skew = (faulty[other] - faulty[victim]) - (nominal[other] - nominal[victim])
    response = simulate_sensor(
        SkewSensor(), skew=skew, options=BENCH_OPTIONS
    )
    lines.append(
        f"  electrical validation: pair skew {to_ns(skew):+.3f} ns -> "
        f"sensor code {response.code}"
    )

    # Flag-gated whole-tree electrical path: the full-chip netlist on the
    # sparse engine, Elmore predictions checked against measured skews.
    electrical = None
    if os.environ.get("REPRO_BENCH_WHOLE_TREE"):
        from repro.clocktree import ResistiveOpen as _Open
        from repro.clocktree.whole_tree import (
            select_sensor_pairs,
            simulate_whole_tree,
        )

        pairs = select_sensor_pairs(htree, 2)
        wt_fault = _Open(node=pairs[0].sink_a, extra_resistance=8000.0)
        run_wt = simulate_whole_tree(levels=2, n_sensors=2, fault=wt_fault)
        elmore = sink_delays(wt_fault.apply(htree))
        per_pair = []
        worst_gap = 0.0
        for placement in run_wt.placements:
            predicted = (elmore[placement.sink_b]
                         - elmore[placement.sink_a])
            measured = run_wt.skews[placement.label]
            gap = abs(measured - predicted)
            worst_gap = max(worst_gap, gap)
            per_pair.append({
                "pair": placement.label,
                "elmore_skew_s": predicted,
                "electrical_skew_s": measured,
                "code": list(run_wt.codes[placement.label]),
            })
            lines.append(
                f"  whole-tree {placement.label}: Elmore "
                f"{to_ns(predicted):+.3f} ns vs electrical "
                f"{to_ns(measured):+.3f} ns  code "
                f"{run_wt.codes[placement.label]}"
            )
        electrical = {
            "n_nodes": run_wt.n_nodes,
            "pairs": per_pair,
            "elmore_discrepancy_max_s": worst_gap,
            "flagged": run_wt.flagged,
        }
        # Elmore is a pessimistic bound, not the 50%-crossing truth; the
        # recorded discrepancy (~0.3 ns on the faulted pair here) is the
        # point of the record.  The shape claims: prediction and
        # measurement agree in sign on the faulted pair, stay within
        # half a nanosecond, and the sensors still catch the fault.
        faulted = per_pair[0]
        assert np.sign(faulted["elmore_skew_s"]) == np.sign(
            faulted["electrical_skew_s"]
        )
        assert worst_gap < ns(0.5)
        assert run_wt.flagged

    emit("fig6_scheme", lines)
    write_bench_json("fig6_scheme", {
        "tau_min_s": tau_min,
        "validation_skew_s": skew,
        "validation_code": list(response.code),
        "whole_tree": electrical,
    })

    # Shape claims: healthy trees raise nothing; every injected fault with
    # skew beyond tau_min is flagged on both tree styles.
    for rows in (h_rows, d_rows):
        label, worst, flags, alarm = rows[0]
        assert flags == 0 and not alarm
        for label, worst, flags, alarm in rows[1:]:
            if worst > tau_min:
                assert flags > 0 and alarm, label
    assert response.error_detected
