"""Ablation - detection across the clock-frequency range.

Sec. 2 ties the indication's usefulness to the clock period (it "holds for
... half of the clock period").  The bench sweeps the clock frequency and
verifies the full detection chain keeps working: the error code must be
established and persist long enough within the shrinking high phase, and
the sensitivity itself must stay frequency-independent (it is set by the
block delay, not by the period).
"""

from repro.core.response import ERROR_PHI2_LATE, simulate_sensor
from repro.core.sensing import SkewSensor
from repro.units import VTH_INTERPRET, fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

PERIODS_NS = (40.0, 20.0, 10.0, 5.0, 2.5)
SKEW = ns(0.5)


def run():
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    rows = []
    for period_ns in PERIODS_NS:
        period = ns(period_ns)
        response = simulate_sensor(
            sensor, skew=SKEW, period=period, settle=ns(1.0),
            options=BENCH_OPTIONS,
        )
        y1 = response.wave("y1")
        established = y1.first_crossing(
            VTH_INTERPRET, rising=False, after=ns(1.0)
        )
        recovered = (
            y1.first_crossing(VTH_INTERPRET, rising=True, after=established)
            if established is not None else None
        )
        hold = (recovered - established) if (
            established is not None and recovered is not None
        ) else 0.0
        rows.append((period_ns, response.code, hold))
    return rows


def test_frequency_range(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: detection vs clock frequency (tau = 0.5 ns, 160 fF)",
        "",
        "  period   frequency   code    indication window",
    ]
    for period_ns, code, hold in rows:
        lines.append(
            f"  {period_ns:5.1f} ns  {1e3 / period_ns:6.0f} MHz   {code}"
            f"   {to_ns(hold):6.2f} ns"
        )
    lines.append("")
    lines.append(
        "  the indication window tracks the half period; detection holds "
        "to 400 MHz"
    )
    emit("frequency_range", lines)

    for period_ns, code, hold in rows:
        assert code == ERROR_PHI2_LATE, f"missed at {period_ns} ns period"
        # Indication persists for roughly the half period (plus recovery).
        assert hold > 0.35 * ns(period_ns)
    # Window shrinks monotonically with the period.
    holds = [hold for _, _, hold in rows]
    assert holds == sorted(holds, reverse=True)
