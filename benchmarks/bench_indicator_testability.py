"""Ablation - testability of the latching indicator itself.

Ref. [9] of the paper (the authors' own "Compact and Highly Testable
Error Indicator") exists because the checking hardware must not become
the reliability bottleneck.  The bench applies the Sec.-3 methodology to
our 12-transistor indicator realisation, co-simulated with a fault-free
sensor through two clock cycles (precharge, evaluate, re-precharge,
evaluate), plus a skewed cycle for every logic escape:

* a fault is *logic-detected* when the flag output's sampled value
  deviates from the fault-free sequence (flag stuck high in healthy
  operation is as detectable as stuck low);
* escapes are re-examined with IDDQ;
* remaining escapes are checked for the dangerous property: does the
  fault *mask* a genuine error indication?
"""

from repro.analog.engine import transient
from repro.core.sensing import SkewSensor
from repro.devices.sources import PWLSource, clock_pair
from repro.faults.iddq import DEFAULT_IDDQ_THRESHOLD, quiescent_current
from repro.faults.universe import enumerate_faults
from repro.testing.indicator_circuit import IndicatorCircuit
from repro.units import fF, ns

from _util import BENCH_OPTIONS, emit

PERIOD = ns(20.0)


def build(skew):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    phi1, phi2 = clock_pair(
        PERIOD, ns(0.2), ns(0.2), skew=skew, delay=ns(2)
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)
    indicator = IndicatorCircuit()
    flag = indicator.build_into(netlist)
    # Precharge before each cycle's rising edges; evaluate afterwards.
    netlist.drive(
        "prech",
        PWLSource(
            [0.0, ns(1.4), ns(1.5), ns(20.0), ns(20.1), ns(21.4), ns(21.5)],
            [0, 0, 5, 5, 0, 0, 5],
        ),
    )
    initial = dict(sensor.dc_guess())
    initial.update(indicator.dc_guess())
    return netlist, indicator, flag, initial


def flag_samples(result, flag):
    wave = result.wave(flag)
    return tuple(
        1 if wave.at(t) > 2.5 else 0
        for t in (ns(8), ns(18), ns(30), ns(40))
    )


def simulate(netlist, flag, initial, with_currents=True):
    return transient(
        netlist,
        t_stop=ns(42),
        record=[flag],
        record_currents=["vdd"] if with_currents else None,
        initial=initial,
        options=BENCH_OPTIONS,
    )


def indicator_universe(netlist, indicator):
    """Faults restricted to the indicator's own devices and nodes."""
    prefix = indicator.prefix + "_"
    full = enumerate_faults(
        netlist,
        stuck_at_nodes=[
            n for n in netlist.free_nodes() if n.startswith(prefix)
        ],
        bridge_nodes=[
            n for n in netlist.free_nodes() if n.startswith(prefix)
        ],
    )
    full.stuck_open = [
        f for f in full.stuck_open if f.transistor.startswith(prefix)
    ]
    full.stuck_on = [
        f for f in full.stuck_on if f.transistor.startswith(prefix)
    ]
    return full


def run():
    netlist, indicator, flag, initial = build(skew=0.0)
    golden = flag_samples(simulate(netlist, flag, initial, False), flag)
    windows = [(ns(16), ns(19.5)), (ns(36), ns(39.5))]

    universe = indicator_universe(netlist, indicator)
    summary = {}
    masking = []
    for kind in ("stuck-at", "stuck-open", "stuck-on", "bridging"):
        total = logic = iddq = 0
        for fault in universe.by_kind(kind):
            total += 1
            faulty = fault.inject(netlist)
            result = simulate(faulty, flag, initial)
            detected_logic = flag_samples(result, flag) != golden
            current = quiescent_current(result, windows)
            detected_iddq = current > DEFAULT_IDDQ_THRESHOLD
            if detected_logic:
                logic += 1
            if detected_logic or detected_iddq:
                iddq += 1
            else:
                # Escape: does it mask a real error indication?
                sk_net, sk_ind, sk_flag, sk_init = build(skew=ns(1.0))
                sk_result = simulate(
                    fault.inject(sk_net), sk_flag, sk_init, False
                )
                missed = sk_result.wave(sk_flag).at(ns(18)) < 2.5
                masking.append((fault.describe(), missed))
        summary[kind] = (total, logic, iddq)
    return golden, summary, masking


def test_indicator_testability(benchmark):
    golden, summary, masking = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: testability of the 12-transistor latching indicator",
        f"  (fault-free flag sequence over two cycles: {golden})",
        "",
        "  fault class   universe   logic    with IDDQ",
    ]
    for kind, (total, logic, iddq) in summary.items():
        lines.append(
            f"  {kind:<12} {total:>8}   {100 * logic / total:5.0f} %"
            f"   {100 * iddq / total:6.0f} %"
        )
    lines.append("")
    if masking:
        lines.append("  escapes vs error-masking:")
        for name, missed in masking:
            lines.append(
                f"    {name:<40} "
                f"{'MASKS errors (dangerous)' if missed else 'does not mask errors'}"
            )
    emit("indicator_testability", lines)

    assert golden == (0, 0, 0, 0)
    for kind, (total, logic, iddq) in summary.items():
        assert total > 0
        assert iddq >= logic
    # The indicator is usable: the large majority of its faults are
    # caught by normal operation + IDDQ...
    total_all = sum(t for t, _, _ in summary.values())
    covered = sum(i for _, _, i in summary.values())
    assert covered / total_all > 0.7
    # ...and no escape may silently mask a genuine error indication.
    assert all(not missed for _, missed in masking), masking
