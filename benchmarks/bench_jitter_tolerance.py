"""Ablation - differential clock jitter vs false alarms.

Another constraint on the Sec.-2 "suitable tolerance interval": the two
monitored branches accumulate independent per-edge jitter downstream of
the shared generator, and a sensor whose ``tau_min`` sits inside the
jitter distribution latches false alarms on healthy silicon.  The bench
sweeps the per-branch RMS jitter and measures the alarm rate of a
3-cycle latching observation.

Expected shape: negligible alarms while ``sqrt(2) * sigma`` stays well
below ``tau_min`` (~0.12 ns for the 160 fF sensor), rising to certainty
once edge-pair displacements routinely cross it.
"""

from repro.core.sensitivity import extract_tau_min
from repro.montecarlo.jitter import false_alarm_rate
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

SIGMAS_PS = (5, 20, 40, 80, 150)
TRIALS = 10


def run():
    tau_min = extract_tau_min(fF(160), tolerance=ns(0.005), options=BENCH_OPTIONS)
    rates = {
        sigma: false_alarm_rate(
            sigma * 1e-12, trials=TRIALS, options=BENCH_OPTIONS
        )
        for sigma in SIGMAS_PS
    }
    return tau_min, rates


def test_jitter_false_alarm_curve(benchmark):
    tau_min, rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: differential branch jitter vs false-alarm rate",
        f"  (3-cycle latching observation, {TRIALS} trials per point; "
        f"tau_min = {to_ns(tau_min) * 1000:.0f} ps)",
        "",
        "  per-branch RMS jitter   false-alarm rate",
    ]
    for sigma in SIGMAS_PS:
        lines.append(f"  {sigma:17d} ps   {rates[sigma]:14.2f}")
    lines.append("")
    lines.append(
        "  shape: quiet while sqrt(2)*sigma << tau_min, certain alarms "
        "beyond it -"
    )
    lines.append(
        "  the tolerance interval must be set above the jitter floor."
    )
    emit("jitter_tolerance", lines)

    values = [rates[s] for s in SIGMAS_PS]
    assert values == sorted(values), "alarm rate must be monotone in jitter"
    assert rates[SIGMAS_PS[0]] == 0.0, "tiny jitter must raise no alarms"
    assert rates[SIGMAS_PS[-1]] >= 0.9, "large jitter must alarm"
