"""Sec.-1 statistics - how often conventional testing misses clock faults.

The single-pipeline baseline (`bench_baseline_masking`) shows the masking
window on one machine; this bench measures its *population* consequence:
across randomly generated pipelines (random stage delays) and randomly
sized clock-path delay faults, what fraction of faulty machines does each
approach reject?

* conventional at-speed logic testing detects the fault only when the
  delay breaks a functional path (races the stage's combinational delay
  or the downstream slack);
* the sensing scheme flags everything beyond the sensor's ``tau_min``.

The gap - faulty machines shipped by conventional testing but caught by
the scheme - is the paper's quantitative raison d'etre.
"""

import numpy as np

from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.units import ns, to_ns

from _util import emit

N_MACHINES = 60
PERIOD = ns(10.0)
TAU_MIN = ns(0.12)


def run():
    rng = np.random.default_rng(404)
    outcomes = []
    for _ in range(N_MACHINES):
        n_stages = int(rng.integers(2, 5))
        stage_delays = [
            float(rng.uniform(0.2, 0.7)) * PERIOD for _ in range(n_stages)
        ]
        # Clock-path delay fault on a random internal flop, log-uniform
        # between 20 ps and 8 ns (spanning harmless to catastrophic).
        delta = float(10 ** rng.uniform(np.log10(20e-12), np.log10(8e-9)))
        victim = int(rng.integers(1, n_stages + 1))
        offsets = [0.0] * (n_stages + 1)
        offsets[victim] = delta

        circuit, flops = build_pipeline(stage_delays, clock_offsets=offsets)
        logic_detects = not at_speed_test(circuit, flops, period=PERIOD)["passed"]
        scheme_detects = delta > TAU_MIN
        outcomes.append((delta, logic_detects, scheme_detects))
    return outcomes


def test_masking_statistics(benchmark):
    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    n = len(outcomes)
    dangerous = [o for o in outcomes if o[0] > TAU_MIN]
    logic_catch = sum(1 for _, logic, _ in dangerous if logic)
    scheme_catch = sum(1 for _, _, scheme in dangerous if scheme)
    escapes = [
        (delta, logic, scheme)
        for delta, logic, scheme in dangerous
        if not logic and scheme
    ]
    harmless = n - len(dangerous)

    lines = [
        f"Sec.-1 statistics: {n} random pipelines x random clock-path "
        "delay faults",
        f"  (10 ns clock; sensor tau_min = {to_ns(TAU_MIN) * 1000:.0f} ps; "
        "fault delta log-uniform 0.02..8 ns)",
        "",
        f"  faults beyond tolerance     : {len(dangerous)}/{n}  "
        f"(the rest are within the skew budget)",
        f"  caught by at-speed testing  : {logic_catch}/{len(dangerous)} "
        f"({100 * logic_catch / len(dangerous):.0f} %)",
        f"  caught by the sensing scheme: {scheme_catch}/{len(dangerous)} "
        f"({100 * scheme_catch / len(dangerous):.0f} %)",
        f"  scheme-only detections      : {len(escapes)} "
        f"({100 * len(escapes) / len(dangerous):.0f} % of dangerous faults "
        "would have shipped)",
    ]
    if escapes:
        deltas = sorted(d for d, _, _ in escapes)
        lines.append(
            f"  escape delta range          : "
            f"{to_ns(deltas[0]):.3f} .. {to_ns(deltas[-1]):.3f} ns"
        )
    emit("masking_statistics", lines)

    assert scheme_catch == len(dangerous), "scheme must catch every " \
        "beyond-tolerance fault by construction"
    assert logic_catch < len(dangerous), "at-speed testing must miss some"
    assert len(escapes) >= 0.2 * len(dangerous), \
        "the masking gap must be substantial"
    # Conventional testing still catches the grossest faults.
    grossest = [o for o in outcomes if o[0] > ns(5.0)]
    assert grossest, "the delta distribution must reach gross faults"
    assert any(logic for _, logic, _ in grossest)
