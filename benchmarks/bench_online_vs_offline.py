"""Sec.-1 claim - transient faults demand on-line monitoring.

"a small fraction of them can be classified as permanent, while the others
have to be considered (intrinsically or practically) as transient.  ...
Conventional approaches may be ineffective to test with respect to these
kinds of faults."

The bench sweeps the per-cycle activation probability of an intermittent
clock defect and measures, over many trials, the detection probability of

* a single off-line test session (sees the fault only if active during
  that session), vs
* the on-line scheme monitoring N consecutive cycles with latching
  indicators.

Who wins: off-line detection is pinned at ~p (the activation probability);
on-line detection approaches 1 - (1-p)^N.
"""

import numpy as np

from repro.clocktree.faults import ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.intermittent import IntermittentFault, monitoring_campaign
from repro.clocktree.tree import Buffer
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns

from _util import emit

PROBABILITIES = (0.05, 0.1, 0.25, 0.5)
CYCLES = 16
TRIALS = 40


def run():
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=4
    )
    victim = scheme.placements[0].pair.sink_a
    base_fault = ResistiveOpen(node=victim, extra_resistance=9000.0)

    rows = []
    for p in PROBABILITIES:
        fault = IntermittentFault(fault=base_fault, activation_probability=p)
        online = offline = 0
        for trial in range(TRIALS):
            rng = np.random.default_rng(1000 * trial + int(p * 1000))
            result = monitoring_campaign(
                scheme, fault, cycles=CYCLES, offline_test_cycle=0, rng=rng
            )
            online += result.online_detects
            offline += result.offline_session_detects
        rows.append((p, offline / TRIALS, online / TRIALS))
    return rows


def test_online_vs_offline_detection(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Sec.-1 claim: transient clock faults vs testing mode "
        f"({CYCLES}-cycle on-line window, {TRIALS} trials)",
        "",
        "  P(active/cycle)   off-line session   on-line monitor   "
        "1-(1-p)^N",
    ]
    for p, offline, online in rows:
        ideal = 1.0 - (1.0 - p) ** CYCLES
        lines.append(
            f"  {p:14.2f}   {offline:16.2f}   {online:15.2f}   {ideal:9.2f}"
        )
    lines.append("")
    lines.append(
        "  shape: off-line detection pinned near p; on-line detection "
        "approaches certainty"
    )
    emit("online_vs_offline", lines)

    for p, offline, online in rows:
        assert online >= offline
        # Off-line tracks the activation probability (binomial noise).
        assert abs(offline - p) < 0.2
        # On-line tracks the union bound.
        ideal = 1.0 - (1.0 - p) ** CYCLES
        assert online > ideal - 0.25
    # At the rarest activation the gap is decisive.
    p0, offline0, online0 = rows[0]
    assert online0 > offline0 + 0.3
