"""Ablations - cost of the scheme and robustness across process corners.

Two adoption-relevant questions the paper leaves implicit:

* **overhead** - the sensors load the clock wires they monitor; the
  instrumented tree must not acquire a skew beyond the sensors' own
  sensitivity (else the scheme flags itself);
* **corners** - ``tau_min`` calibrated at the nominal corner must stay in
  a usable band at the classic SS/FF/SF/FS corners (the 10 % margin in
  the paper's Vth choice exists exactly for this).
"""

from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.core.overhead import scheme_overhead, sensor_overhead
from repro.core.sensitivity import extract_tau_min
from repro.devices.process import corner_process
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

CORNERS = ("tt", "ss", "ff", "sf", "fs")


def run():
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=6
    )
    cost = scheme_overhead(scheme)
    per_sensor = sensor_overhead()

    corners = {
        corner: extract_tau_min(
            fF(160), process=corner_process(corner),
            tolerance=ns(0.005), options=BENCH_OPTIONS,
        )
        for corner in CORNERS
    }
    return per_sensor, cost, corners


def test_overhead_and_corners(benchmark):
    per_sensor, cost, corners = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: scheme overhead (16-sink H-tree, 6 sensors)",
        "",
        f"  per sensor : {per_sensor.transistor_count} transistors, "
        f"{per_sensor.active_area * 1e12:.1f} um^2 active area, "
        f"{per_sensor.input_capacitance_phi1 * 1e15:.1f} fF per clock pin",
        f"  scheme     : {cost.n_sensors} sensors, "
        f"{cost.total_transistors} transistors, "
        f"{cost.total_active_area * 1e12:.0f} um^2",
        f"  worst added sink load : {cost.worst_added_load * 1e15:.1f} fF",
        f"  instrumentation-induced skew : "
        f"{to_ns(cost.induced_skew) * 1000:.1f} ps "
        "(must stay below tau_min = 120 ps)",
        "",
        "Ablation: tau_min across process corners (C = 160 fF)",
        "",
        "  corner   tau_min [ns]",
    ]
    for corner in CORNERS:
        lines.append(f"  {corner:>6}   {to_ns(corners[corner]):10.3f}")
    spread = max(corners.values()) / min(corners.values())
    lines.append("")
    lines.append(f"  corner-to-corner spread: {spread:.2f}x")
    emit("overhead_and_corners", lines)

    assert cost.induced_skew < ns(0.12)
    assert cost.total_transistors == 60
    # Corners move tau_min but keep it in a usable sub-0.5 ns band.
    for tau in corners.values():
        assert ns(0.02) < tau < ns(0.5)
    assert spread < 3.0
    # Slow silicon is less sensitive (larger tau_min) than fast silicon.
    assert corners["ss"] > corners["ff"]
