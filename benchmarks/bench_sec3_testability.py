"""Sec. 3 - testability of the sensing circuit (full fault universe).

Paper numbers and their reproduction targets:

* node stuck-at: 100 % detected;
* transistor stuck-open: all detected except two of the parallel pull-ups
  (paper labels them "c and g"; under this library's mirror-symmetric
  naming they are c and h), and those two do not mask skew detection;
* transistor stuck-on: 60 % detected, the escapes being exactly the four
  parallel pull-up transistors b, c, g, h;
* bridging (100 ohm): partial conventional coverage that *grows* under
  IDDQ, with the y1-y2 bridge undetectable under common clock stimuli
  (paper: 75 % -> 89 % on its layout-extracted universe; our structural
  universe gives the same ordering).
"""

from repro.core.sensing import PARALLEL_PULLUPS
from repro.testing.testability import analyze_sensor_testability

from _util import BENCH_OPTIONS, emit


def run():
    return analyze_sensor_testability(options=BENCH_OPTIONS)


def test_sec3_testability(benchmark):
    report = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Sec. 3 reproduction: sensor testability under fault-free clocks",
        "",
        "  fault class   universe   logic    with IDDQ   paper",
    ]
    paper = {
        "stuck-at": "100 %",
        "stuck-open": "8/10 detected",
        "stuck-on": "60 %",
        "bridging": "75 % -> 89 %",
    }
    for kind, n, cov, cov_iddq in report.summary_rows():
        lines.append(
            f"  {kind:<12} {n:>8}   {cov * 100:5.0f} %   {cov_iddq * 100:6.0f} %"
            f"    {paper[kind]}"
        )
    lines.append("")
    for kind in ("stuck-open", "stuck-on", "bridging"):
        escapes = ", ".join(
            v.fault.describe() for v in report.undetected(kind)
        )
        lines.append(f"  {kind} escapes: {escapes or 'none'}")
    masking = [
        (v.fault.describe(), v.masks_skew)
        for v in report.verdicts["stuck-open"]
        if v.masks_skew is not None
    ]
    lines.append("")
    for name, masks in masking:
        lines.append(
            f"  {name}: {'MASKS skew detection' if masks else 'does not mask skew detection'}"
        )
    emit("sec3_testability", lines)

    # The paper's exact structural claims.
    assert report.coverage("stuck-at") == 1.0
    assert report.coverage("stuck-open") == 0.8  # 8/10
    open_escapes = {v.fault.transistor for v in report.undetected("stuck-open")}
    assert open_escapes <= set(PARALLEL_PULLUPS)
    assert len(open_escapes) == 2
    assert all(not v.masks_skew for v in report.verdicts["stuck-open"]
               if v.masks_skew is not None)

    assert report.coverage("stuck-on") == 0.6  # 60 %, as printed
    on_escapes = {v.fault.transistor for v in report.undetected("stuck-on")}
    assert on_escapes == set(PARALLEL_PULLUPS)

    assert report.coverage("bridging") < report.coverage("bridging", True), \
        "IDDQ must add bridging coverage"
    bridge_escapes = {
        frozenset((v.fault.node_a, v.fault.node_b))
        for v in report.undetected("bridging", with_iddq=True)
    }
    assert frozenset(("y1", "y2")) in bridge_escapes  # the paper's example
