#!/usr/bin/env python
"""Scheduler throughput: ``max_concurrent=1`` vs ``2`` on a 2-campaign load.

The concurrent scheduler's claim is wall-clock, not correctness: two
independent campaigns should finish in roughly half the time when two
slots drain the queue.  This bench measures exactly that on a synthetic
sleepy workload (no transients - scheduler overhead and slot
interleaving are what is being timed), prints the comparison and writes
``BENCH_service_concurrency.json`` with one ``samples_per_s`` figure
per leg plus the headline ``concurrency_speedup``, which
``tools/check_bench_regression.py`` watches: a speedup that falls back
below 1.0 means concurrent scheduling stopped helping (a serialisation
bug, not timing noise).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_service_concurrency.py``
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time

sys.path.insert(0, "src")

from _util import emit, write_bench_json  # noqa: E402

from repro.runtime import JobResult, SensorJob  # noqa: E402
from repro.service import specs  # noqa: E402
from repro.service.scheduler import CampaignScheduler  # noqa: E402
from repro.service.store import JobStore  # noqa: E402

#: The 2-campaign load: jobs per campaign and the per-job busy time.
CAMPAIGNS = 2
JOBS = 24
SLEEP_S = 0.01


def _register_sleepy_kind() -> None:
    def build(spec):
        jobs = [
            SensorJob(skew=(k + 1) * 1e-12) for k in range(int(spec["jobs"]))
        ]

        def evaluate(job):
            time.sleep(float(spec["sleep_s"]))
            return JobResult(
                skew=job.skew, vmin_y1=1.0, vmin_y2=2.0, code=(0, 0), steps=1
            )

        def fold(campaign):
            return {"n": len(campaign.results)}

        return specs.CampaignPlan(
            jobs=jobs, fold=fold,
            executor=specs._executor_kwargs(spec), evaluate=evaluate,
        )

    specs.register_kind(
        "bench-sleepy", {"jobs": JOBS, "sleep_s": SLEEP_S}, build
    )


def time_leg(max_concurrent: int) -> float:
    """Wall time to drain CAMPAIGNS campaigns at the given width."""
    root = tempfile.mkdtemp(prefix="repro-bench-conc-")
    store = JobStore(root)
    scheduler = CampaignScheduler(
        store, poll_interval=0.005, max_concurrent=max_concurrent
    )
    try:
        records = [
            scheduler.submit({"kind": "bench-sleepy"})
            for _ in range(CAMPAIGNS)
        ]
        start = time.perf_counter()
        scheduler.start()
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if all(store.get(r.campaign_id).terminal for r in records):
                break
            time.sleep(0.002)
        wall = time.perf_counter() - start
        for record in records:
            final = store.get(record.campaign_id)
            assert final.state == "done", final
        return wall
    finally:
        scheduler.stop()
        store.close()
        shutil.rmtree(root, ignore_errors=True)


def main() -> int:
    _register_sleepy_kind()
    total_jobs = CAMPAIGNS * JOBS
    serial_wall = time_leg(1)
    concurrent_wall = time_leg(2)
    speedup = serial_wall / concurrent_wall

    emit("service_concurrency", [
        f"load: {CAMPAIGNS} campaigns x {JOBS} jobs x {SLEEP_S * 1e3:.0f} ms",
        f"max_concurrent=1: {serial_wall:6.3f} s "
        f"({total_jobs / serial_wall:7.1f} jobs/s)",
        f"max_concurrent=2: {concurrent_wall:6.3f} s "
        f"({total_jobs / concurrent_wall:7.1f} jobs/s)",
        f"speedup: {speedup:.2f}x",
    ])
    write_bench_json("service_concurrency", {
        "campaigns": CAMPAIGNS,
        "jobs_per_campaign": JOBS,
        "sleep_s": SLEEP_S,
        "serial": {
            "max_concurrent": 1,
            "wall_s": serial_wall,
            "samples_per_s": total_jobs / serial_wall,
        },
        "concurrent": {
            "max_concurrent": 2,
            "wall_s": concurrent_wall,
            "samples_per_s": total_jobs / concurrent_wall,
        },
        "concurrency_speedup": speedup,
    })
    # Generous sanity bound: two slots must beat one by a real margin on
    # a sleep-bound load (ideal is 2.0; runners are noisy).
    assert speedup > 1.2, f"concurrent scheduling speedup only {speedup:.2f}x"
    return 0


if __name__ == "__main__":
    sys.exit(main())
