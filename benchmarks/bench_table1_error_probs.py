"""Tab. 1 - probability of losing an error / raising a false error.

For each nominal load the Monte Carlo population is swept over a uniform
skew grid and classified against the *nominal* sensitivity:

* ``p_loose``: ``tau > tau_min`` but ``Vmin < Vth`` (missed real skew);
* ``p_false``: ``tau < tau_min`` but ``Vmin > Vth`` (false alarm).

Two sampling modes are reported:

* **balanced** - the two loads and slews are common (the situation the
  scheme's placement criterion 2 engineers: "balanced connection to the
  sensing circuit").  Misclassification then comes only from global
  process variation shifting the true ``tau_min``, and both probabilities
  are small and confined near ``tau_min`` - the Tab.-1 shape;
* **independent** - the paper's stated Monte Carlo distribution ("both the
  input slews and the load have been considered independent").  The
  cross-coupled sensor is an arbiter, so load/slew *asymmetry* registers
  as skew; misclassification around and below ``tau_min`` rises
  accordingly.  This quantifies exactly why the paper insists on balanced
  sensor connections.

The published numbers themselves are unreadable in the source text (OCR
damage); EXPERIMENTS.md records the measured values.
"""

import numpy as np

from repro.core.sensitivity import extract_tau_min
from repro.montecarlo.analysis import error_probabilities, scatter_analysis
from repro.montecarlo.sampling import sample_population
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

LOADS_FF = (80, 160, 240)
N_SAMPLES = 20


def sweep_for_load(load_ff, seed, balanced):
    load = fF(load_ff)
    tau_min = extract_tau_min(load, tolerance=ns(0.005), options=BENCH_OPTIONS)
    # Uniform grid over the Fig.-4 sweep range (0 .. ~3 tau_min), like the
    # paper's per-sample skew sweep.
    skews = [k * tau_min * 3.0 / 8.0 for k in range(9)]
    samples = sample_population(
        N_SAMPLES, load, rng=np.random.default_rng(seed), balanced=balanced
    )
    points = scatter_analysis(samples, skews=skews, options=BENCH_OPTIONS)
    return error_probabilities(points, load, tau_min), points, tau_min


def run():
    out = {}
    for mode, balanced in (("balanced", True), ("independent", False)):
        out[mode] = [
            sweep_for_load(c, seed=100 + k, balanced=balanced)
            for k, c in enumerate(LOADS_FF)
        ]
    return out


def test_table1_error_probabilities(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Tab. 1 reproduction: p_loose / p_false per nominal load",
        f"  ({N_SAMPLES} Monte Carlo samples x 9-point uniform skew grid "
        "over [0, 3 tau_min];",
        "   published values garbled in the source text)",
        "",
    ]
    for mode in ("balanced", "independent"):
        lines.append(f"  {mode} loads/slews:")
        lines.append("    C        tau_min    p_loose   p_false")
        for probs, _, tau_min in results[mode]:
            lines.append(
                f"    {probs.nominal_load * 1e15:4.0f} fF  "
                f"{to_ns(tau_min):7.3f} ns  {probs.p_loose:7.3f}   "
                f"{probs.p_false:7.3f}"
            )
        lines.append("")
    lines.append(
        "  shape: balanced connections (placement criterion 2) keep both"
    )
    lines.append(
        "  probabilities small; deliberately unbalanced conditions register"
    )
    lines.append("  as skew and inflate them - hence the criterion.")
    emit("table1_error_probs", lines)

    # Balanced mode: the Tab.-1 shape - small probabilities, perfect
    # classification far from the sensitivity.
    for probs, points, tau_min in results["balanced"]:
        assert probs.p_loose < 0.15
        assert probs.p_false < 0.15
        assert all(not p.flags_error() for p in points if p.skew == 0.0)
        assert all(p.flags_error() for p in points if p.skew >= 2.5 * tau_min)

    # Independent mode: misclassification rises (the asymmetry penalty the
    # placement criterion avoids) but stays bounded.
    for (b_probs, _, _), (i_probs, _, _) in zip(
        results["balanced"], results["independent"]
    ):
        assert i_probs.p_loose <= 0.6
        assert i_probs.p_false <= 0.6
        assert i_probs.p_false >= b_probs.p_false
