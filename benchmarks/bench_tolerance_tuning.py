"""Ablation - setting the "suitable tolerance interval" of Sec. 2.

End-to-end engineering workflow the paper sketches in one sentence:

1. derive the machine's skew budget from its timing (setup/hold window);
2. recommend a sensor sensitivity inside that budget;
3. tune the interpretation threshold Vth to realise it (the paper's
   first knob);
4. verify at transistor level that the tuned sensor tolerates every
   harmless skew and flags every dangerous one.
"""

import pytest

from repro.clocktree.budget import (
    recommend_sensitivity,
    skew_budget,
    tune_threshold,
)
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min
from repro.units import fF, ns, to_ns

from _util import BENCH_OPTIONS, emit

PERIOD = ns(4.0)
COMB_MIN = ns(0.25)
COMB_MAX = ns(3.2)
LOAD = fF(160)


def run():
    budget = skew_budget(
        period=PERIOD, comb_min=COMB_MIN, comb_max=COMB_MAX,
        clk_to_q=ns(0.2), setup=ns(0.1), hold=ns(0.05),
    )
    target = recommend_sensitivity(budget, margin=0.8)
    vth = tune_threshold(
        target, LOAD, tolerance=ns(0.005), options=BENCH_OPTIONS
    )
    achieved = extract_tau_min(
        LOAD, threshold=vth, tolerance=ns(0.005), options=BENCH_OPTIONS
    )

    sensor = SkewSensor(load1=LOAD, load2=LOAD)
    probes = {}
    for label, tau in (
        ("harmless (0.5 x tau)", 0.5 * achieved),
        ("dangerous (1.6 x tau)", 1.6 * achieved),
        ("dangerous (3 x tau)", 3.0 * achieved),
    ):
        response = simulate_sensor(
            sensor, skew=tau, threshold=vth, options=BENCH_OPTIONS
        )
        probes[label] = (tau, response.error_detected)
    return budget, target, vth, achieved, probes


def test_tolerance_tuning_workflow(benchmark):
    budget, target, vth, achieved, probes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        "Ablation: tuning the tolerance interval to a machine's timing",
        "",
        f"  machine: {to_ns(PERIOD):.1f} ns clock, comb delay "
        f"{to_ns(COMB_MIN):.2f}..{to_ns(COMB_MAX):.2f} ns",
        f"  skew budget          : [{to_ns(budget.min_skew):+.3f}, "
        f"{to_ns(budget.max_skew):+.3f}] ns",
        f"  symmetric tolerance  : {to_ns(budget.symmetric_tolerance):.3f} ns",
        f"  recommended tau_min  : {to_ns(target):.3f} ns (80 % margin)",
        f"  tuned Vth            : {vth:.2f} V",
        f"  achieved tau_min     : {to_ns(achieved):.3f} ns",
        "",
        "  transistor-level verification:",
    ]
    for label, (tau, detected) in probes.items():
        lines.append(
            f"    skew {to_ns(tau):6.3f} ns  {label:<22} -> "
            f"{'FLAGGED' if detected else 'tolerated'}"
        )
    emit("tolerance_tuning", lines)

    assert achieved == pytest.approx(target, rel=0.2)
    harmless = probes["harmless (0.5 x tau)"]
    assert not harmless[1], "in-budget skew must be tolerated"
    for label in ("dangerous (1.6 x tau)", "dangerous (3 x tau)"):
        assert probes[label][1], f"{label} must be flagged"

