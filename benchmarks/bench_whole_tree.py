"""Whole-chip clock-tree transients: dense vs sparse MNA throughput.

The sparse subsystem (`repro.sparse`) exists for exactly one reason: a
whole-chip clock tree with sensing circuits attached is a 10^2..10^4
node MNA system, and the dense engine's O(n^2) Jacobian assembly and
O(n^3) refactorizations stop being an implementation detail there.  This
bench builds fully expanded buffered H-trees (two sensors grafted, the
real workload of `repro whole-tree`) at ~50 / ~200 / ~1000 nodes, times
one short transient per Jacobian policy, and records:

* ``sparse_speedup`` - dense wall over sparse wall at the >=500-node
  case.  ``tools/check_bench_regression.py`` flags any value at or
  below 1.0 unconditionally: the sparse path losing to dense at these
  sizes means its pattern reuse or factor caching broke.
* fill-in statistics - pattern nnz, LU fill nnz, and their ratio to the
  dense n^2, the structural reason the speedup exists.
* ``deviation_max_v`` - max |dense - sparse| waveform deviation on the
  medium case, held to the subsystem's 1 uV equivalence contract.

Runs standalone (``python benchmarks/bench_whole_tree.py [--smoke]``)
for the CI sparse job - ``--smoke`` trims the transient window and skips
the sparse-only 10^3-node showcase - or under pytest-benchmark with the
rest of the harness.
"""

import argparse
import sys
import time

import numpy as np

from repro.analog.engine import TransientOptions, transient
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.clocktree.whole_tree import (
    WholeTreeNetlistBuilder,
    select_sensor_pairs,
)
from repro.devices.sources import ClockSource
from repro.units import ns

from _util import emit, write_bench_json

#: (name, h-tree levels, RC segments per wire, time dense too?).  The
#: xlarge case is sparse-only: its dense transient costs minutes and
#: proves nothing the large case doesn't.
CASES = [
    ("small", 1, 4, True),
    ("medium", 2, 5, True),
    ("large", 3, 6, True),
    ("xlarge", 4, 2, False),
]

#: Node count from which the always-flagged ``sparse_speedup`` metric is
#: recorded (below it dense is allowed to win - and does, around n~50).
SPARSE_CONTRACT_NODES = 500

#: Dense-vs-sparse waveform equivalence bar, volts.
EQUIVALENCE_TOL = 1e-6

SETTLE = ns(1.0)


def build_case(levels: int, segments: int):
    """One fully expanded H-tree with two sensors grafted."""
    tree = build_h_tree(levels, buffer=Buffer())
    builder = WholeTreeNetlistBuilder(tree, segments_per_wire=segments)
    clock = ClockSource(period=ns(4.0), slew=ns(0.2), delay=SETTLE)
    netlist = builder.build(clock)
    placements = builder.attach_sensors(select_sensor_pairs(tree, 2))
    record = sorted({n for p in placements
                     for n in (p.node_a, p.node_b, p.y1, p.y2)})
    return netlist, builder.initial_guess, record


def time_policy(netlist, initial, record, policy: str, t_stop: float):
    """Wall time one transient under ``policy``; return (wall, result)."""
    options = TransientOptions(
        dt_max=100e-12, reltol=5e-3, jacobian_policy=policy
    )
    start = time.perf_counter()
    result = transient(netlist, t_stop=t_stop, record=record,
                       initial=initial, options=options)
    return time.perf_counter() - start, result


def max_deviation(result_a, result_b, record, t_stop: float) -> float:
    """Max |a - b| over the recorded nodes on a uniform sample grid."""
    grid = np.linspace(SETTLE, t_stop, 201)
    worst = 0.0
    for node in record:
        wave_a, wave_b = result_a.wave(node), result_b.wave(node)
        for t in grid:
            worst = max(worst, abs(wave_a.at(t) - wave_b.at(t)))
    return worst


def run(smoke: bool = False):
    """Run the size sweep; return (case rows, headline sparse_speedup)."""
    t_stop = SETTLE + (ns(1.0) if smoke else ns(2.0))
    rows = []
    headline = None
    for name, levels, segments, dense_timed in CASES:
        if smoke and name == "xlarge":
            continue
        netlist, initial, record = build_case(levels, segments)
        n_nodes = len(netlist.nodes())
        sparse_wall, sparse_result = time_policy(
            netlist, initial, record, "sparse", t_stop
        )
        kernel = sparse_result.kernel_stats or {}
        nnz = int(kernel.get("sparse_nnz", 0))
        fill = int(kernel.get("sparse_fill_nnz", 0))
        n_free = len(netlist.free_nodes())
        row = {
            "case": name,
            "n_nodes": n_nodes,
            "n_free": n_free,
            "steps": len(sparse_result),
            "sparse_s": sparse_wall,
            "sparse_nnz": nnz,
            "sparse_fill_nnz": fill,
            "density": nnz / max(n_free, 1) ** 2,
            "fill_ratio": fill / max(nnz, 1),
            "fallback": bool(kernel.get("sparse_fallback", 0)),
        }
        if dense_timed:
            dense_wall, dense_result = time_policy(
                netlist, initial, record, "reuse", t_stop
            )
            row["dense_s"] = dense_wall
            speedup = dense_wall / sparse_wall
            # The always-flag regression rule only makes sense where the
            # contract says sparse must win; small cases record their
            # ratio under a key the checker ignores.
            if n_free >= SPARSE_CONTRACT_NODES:
                row["sparse_speedup"] = speedup
                headline = speedup
            else:
                row["speedup"] = speedup
            if name == "medium":
                row["deviation_max_v"] = max_deviation(
                    dense_result, sparse_result, record, t_stop
                )
        rows.append(row)
    return rows, headline


def report(rows, headline, smoke: bool) -> int:
    """Emit the table + BENCH JSON; non-zero on a contract violation."""
    lines = [
        "Whole-chip clock-tree transients: dense vs sparse MNA",
        "  case     nodes  steps   dense_s  sparse_s  speedup   nnz"
        "    LU fill",
    ]
    for row in rows:
        speed = row.get("sparse_speedup", row.get("speedup"))
        lines.append(
            f"  {row['case']:<8} {row['n_nodes']:>5} {row['steps']:>6}"
            f"  {row.get('dense_s', float('nan')):8.2f}"
            f"  {row['sparse_s']:8.2f}"
            f"  {speed if speed is not None else float('nan'):6.1f}x"
            f"  {row['sparse_nnz']:>6} {row['sparse_fill_nnz']:>8}"
        )
    deviation = next(
        (r["deviation_max_v"] for r in rows if "deviation_max_v" in r), None
    )
    if deviation is not None:
        lines.append(
            f"  dense-vs-sparse deviation (medium): {deviation * 1e9:.3f} nV"
        )
    emit("whole_tree", lines)
    write_bench_json("whole_tree", {
        "smoke": smoke,
        "cases": rows,
        "sparse_speedup": headline,
        "deviation_max_v": deviation,
    })

    status = 0
    if deviation is not None and deviation > EQUIVALENCE_TOL:
        print("FAIL: dense-vs-sparse deviation above 1 uV", file=sys.stderr)
        status = 1
    if headline is not None and headline <= 1.0:
        print("FAIL: sparse path no faster than dense at >=500 nodes",
              file=sys.stderr)
        status = 1
    return status


def test_whole_tree_scaling(benchmark):
    """Pytest-benchmark entry: full sweep + the subsystem's shape claims."""
    rows, headline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report(rows, headline, smoke=False) == 0
    # Shape claims: the sparse pattern stays O(n) (density collapses as n
    # grows), the 10^3-node case completes on the sparse path, and the
    # contract speedup is comfortably above the flag line.
    by_name = {row["case"]: row for row in rows}
    assert by_name["xlarge"]["n_nodes"] >= 1000
    assert by_name["xlarge"]["steps"] > 0
    assert by_name["large"]["density"] < by_name["small"]["density"]
    assert headline is not None and headline > 10.0


def main(argv=None) -> int:
    """Standalone entry for the CI sparse job."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short window, skip the sparse-only xlarge case")
    args = parser.parse_args(argv)
    rows, headline = run(smoke=args.smoke)
    return report(rows, headline, smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
