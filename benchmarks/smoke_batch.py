"""CI smoke check of the batched engine: tiny equivalence + timing run.

A trimmed-down version of ``bench_fig5_montecarlo.py`` sized for a
continuous-integration minute: a small seeded population is evaluated
through the serial scalar backend and the lockstep batch backend at the
grid-converged :data:`_util.ACCURATE_OPTIONS`, per-point ``Vmin`` values
are compared, and the measured throughputs are written to
``out/BENCH_smoke_batch.json``.  When the resolved shard worker count is
above one (CI sets ``REPRO_BATCH_WORKERS=2``), a third leg fans the same
stacks over the shard pool at the same pinned stack size: its per-point
``Vmin`` must be **bit-identical** to the single-worker batch leg, and
the ratio lands in the record as ``shard_speedup``.  Runs standalone
(``python benchmarks/smoke_batch.py``) so the CI job does not depend on
the pytest-benchmark plugin.
"""

import sys

import numpy as np

from repro.batch.dispatch import resolve_batch_workers
from repro.montecarlo.parallel import scatter_analysis_parallel
from repro.montecarlo.sampling import sample_population
from repro.units import fF, ns

from _util import (
    ACCURATE_OPTIONS,
    Stopwatch,
    Telemetry,
    throughput_metrics,
    write_bench_json,
)

N_SAMPLES = 4
SKEWS_NS = (0.0, 0.1, 0.4)
LOAD = fF(160)
SEED = 7

#: Pinned samples per stack.  The auto-tuned size depends on the shard
#: worker count, so runs that must be bit-compared across worker counts
#: (the whole point of the sharded leg) pin it to the warm group size.
STACK_SIZE = len(SKEWS_NS)

#: Equivalence bar, volts (same as the full fig5 bench).
EQUIVALENCE_TOL = 1e-3


def _run_backend(backend, samples, batch_workers=None):
    telemetry = Telemetry()
    watch = Stopwatch()
    points = scatter_analysis_parallel(
        samples, skews=[ns(t) for t in SKEWS_NS], options=ACCURATE_OPTIONS,
        backend=backend, n_workers=1, batch_workers=batch_workers,
        chunksize=STACK_SIZE if backend == "batch" else None,
        cache=None, telemetry=telemetry,
    )
    wall = watch.elapsed()
    return points, {
        "backend": backend,
        "jobs": len(points),
        "cache_hit_rate": 0.0,
        "batch_fallbacks": telemetry.batch_fallbacks,
        "batch_stack_size": telemetry.batch_stack_size,
        "batch_workers": telemetry.batch_workers,
        **throughput_metrics(telemetry, wall, len(points)),
    }


def main():
    """Run the smoke comparison; exit non-zero on an equivalence miss."""
    samples = sample_population(N_SAMPLES, LOAD, seed=SEED)
    scalar_points, scalar_metrics = _run_backend("serial", samples)
    batch_points, batch_metrics = _run_backend("batch", samples,
                                               batch_workers=1)
    deviations = np.array([
        abs(s.vmin - b.vmin) for s, b in zip(scalar_points, batch_points)
    ])
    speedup = batch_metrics["samples_per_s"] / scalar_metrics["samples_per_s"]
    record = {
        "options": {"dt_max": ACCURATE_OPTIONS.dt_max,
                    "reltol": ACCURATE_OPTIONS.reltol},
        "grid": {"samples": N_SAMPLES, "skews_ns": list(SKEWS_NS),
                 "seed": SEED},
        "scalar": scalar_metrics,
        "batch": batch_metrics,
        "speedup_batch_vs_serial": speedup,
        "vmin_deviation_max": float(deviations.max()),
    }

    shard_workers = resolve_batch_workers()
    shard_mismatches = 0
    if shard_workers > 1:
        sharded_points, sharded_metrics = _run_backend(
            "batch", samples, batch_workers=shard_workers
        )
        shard_mismatches = sum(
            1 for b, s in zip(batch_points, sharded_points)
            if b.vmin != s.vmin  # bit-identity, not a tolerance
        )
        shard_speedup = (sharded_metrics["samples_per_s"]
                         / batch_metrics["samples_per_s"])
        record["batch_sharded"] = sharded_metrics
        record["shard_speedup"] = shard_speedup
        record["shard_vmin_mismatches"] = shard_mismatches
        print(f"smoke_batch: sharded x{shard_workers} speedup "
              f"{shard_speedup:.2f}x, {shard_mismatches} bit mismatches")

    write_bench_json("smoke_batch", record)
    print(f"smoke_batch: max |dVmin| {deviations.max() * 1e3:.3f} mV, "
          f"speedup {speedup:.2f}x, "
          f"fallbacks {batch_metrics['batch_fallbacks']}")
    if deviations.max() > EQUIVALENCE_TOL:
        print("FAIL: batch-vs-scalar deviation above 1 mV", file=sys.stderr)
        return 1
    if shard_mismatches:
        print("FAIL: sharded batch is not bit-identical to single-worker",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
