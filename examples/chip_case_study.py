"""Case study: adopting the testing scheme on a synthetic chip.

A start-to-finish walkthrough of everything a design team would do:

1. floorplan: 24 register clusters scattered on a 12 mm die;
2. route a zero-skew clock tree over them (the DME baseline);
3. derive the machine's skew budget from its pipeline timing and tune
   the sensor's interpretation threshold to it;
4. place sensors on the critical wire pairs (the paper's two criteria)
   and account for the instrumentation overhead;
5. sign-off: the instrumented tree must not trigger its own sensors;
6. production: run an off-line test session (scan path) and an on-line
   monitoring window (checker) against a mixed fault campaign.

Run:  python examples/chip_case_study.py
"""

import numpy as np

from repro.clocktree import (
    Buffer,
    BufferSlowdown,
    CrosstalkCoupling,
    IntermittentFault,
    ResistiveOpen,
    build_zero_skew_tree,
    monitoring_campaign,
    recommend_sensitivity,
    sink_delays,
    skew_budget,
    tune_threshold,
)
from repro.core.overhead import scheme_overhead
from repro.core.sensitivity import extract_tau_min
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns, to_ns


def main():
    # ------------------------------------------------------------ 1+2
    rng = np.random.default_rng(2026)
    sinks = [
        (f"reg{k:02d}",
         (float(rng.uniform(0, 12e-3)), float(rng.uniform(0, 12e-3))),
         float(rng.uniform(40e-15, 90e-15)))
        for k in range(24)
    ]
    tree = build_zero_skew_tree(sinks, root_buffer=Buffer(), name="chip-clk")
    delays = sink_delays(tree)
    spread = max(delays.values()) - min(delays.values())
    print(f"1-2. routed {len(sinks)} clusters, "
          f"insertion {to_ns(np.mean(list(delays.values()))):.2f} ns, "
          f"design skew {to_ns(spread) * 1000:.2f} ps, "
          f"wire {tree.total_wire_length() * 1e3:.1f} mm")

    # ------------------------------------------------------------ 3
    budget = skew_budget(
        period=ns(8.0), comb_min=ns(0.4), comb_max=ns(6.4),
        clk_to_q=ns(0.2), setup=ns(0.1), hold=ns(0.05),
    )
    target = recommend_sensitivity(budget, margin=0.8)
    vth = tune_threshold(target, fF(160), tolerance=ns(0.01))
    tau_min = extract_tau_min(fF(160), threshold=vth, tolerance=ns(0.01))
    print(f"3.   skew budget [{to_ns(budget.min_skew):+.2f}, "
          f"{to_ns(budget.max_skew):+.2f}] ns -> tuned Vth = {vth:.2f} V, "
          f"tau_min = {to_ns(tau_min):.3f} ns")

    # ------------------------------------------------------------ 4+5
    scheme = ClockTestingScheme.plan(
        tree, tau_min=tau_min, max_distance=5e-3, top_k=8
    )
    cost = scheme_overhead(scheme)
    print(f"4.   placed {cost.n_sensors} sensors "
          f"({cost.total_transistors} transistors, "
          f"{cost.total_active_area * 1e12:.0f} um^2, worst wire load "
          f"+{cost.worst_added_load * 1e15:.0f} fF)")
    ok = cost.induced_skew < tau_min
    print(f"5.   instrumentation-induced skew "
          f"{to_ns(cost.induced_skew) * 1000:.1f} ps "
          f"{'< tau_min: sign-off PASS' if ok else '>= tau_min: FAIL'}")
    assert ok

    # ------------------------------------------------------------ 6
    victim = scheme.placements[0].pair.sink_a
    print("\n6.   production campaign:")
    campaign = [
        ("off-line: healthy die", None),
        ("off-line: resistive open (10 kohm)",
         ResistiveOpen(node=victim, extra_resistance=10_000.0)),
        ("off-line: crosstalk (+700 fF)",
         CrosstalkCoupling(node=victim, coupling_capacitance=700e-15)),
    ]
    buffered = [n.name for n in tree.walk()
                if n.buffer is not None and n.parent is not None]
    if buffered:
        campaign.append(
            ("off-line: buffer degradation x1.5",
             BufferSlowdown(node=buffered[0], factor=1.5))
        )
    for label, fault in campaign:
        scheme.reset()
        state = fault.apply(tree) if fault is not None else None
        scheme.observe(state)
        bits = scheme.scan_out()
        print(f"     {label:<38} scan {bits} "
              f"{'-> REJECT' if 1 in bits else '-> ship'}")

    # On-line: an intermittent supply disturbance, 12-cycle window.
    scheme.reset()
    flaky = IntermittentFault(
        fault=ResistiveOpen(node=victim, extra_resistance=10_000.0),
        active_cycles=frozenset({7}),
    )
    result = monitoring_campaign(scheme, flaky, cycles=12)
    print(f"     on-line: transient open active only in cycle 7:")
    print(f"       checker alarm cycles : {result.online_alarm_cycles}")
    print(f"       latched for diagnosis: {scheme.flagged_pairs()}")
    print(f"       off-line session at cycle 0 would have "
          f"{'caught' if result.offline_session_detects else 'MISSED'} it")


if __name__ == "__main__":
    main()
