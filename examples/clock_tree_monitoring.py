"""Fig.-6 scenario: sensors monitoring a buffered clock distribution tree.

Builds a buffered H-tree (the symmetric scheme sketched in the paper's
Fig. 6), selects critical couples of clock wires with the paper's two
criteria (skew-critical + physically close), attaches a sensing circuit
with a latching error indicator to each, then injects a series of
clock-distribution defects and reads the indicators out through the scan
path (off-line mode) and the two-rail checker (on-line mode).

Run:  python examples/clock_tree_monitoring.py
"""

from repro.clocktree import (
    Buffer,
    BufferSlowdown,
    CrosstalkCoupling,
    ResistiveOpen,
    build_h_tree,
    sink_delays,
)
from repro.core.sensitivity import extract_tau_min
from repro.testing.diagnosis import diagnose, diagnosis_report
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns, to_ns


def main():
    # 1. The clock distribution under test: 16-sink buffered H-tree.
    tree = build_h_tree(levels=2, chip_size=10e-3, buffer=Buffer())
    delays = sink_delays(tree)
    print(f"Clock tree: {len(delays)} sinks, insertion delay "
          f"{to_ns(next(iter(delays.values()))):.2f} ns, nominal skew 0")

    # 2. Calibrate the sensor sensitivity for the load it will see.
    tau_min = extract_tau_min(fF(160), tolerance=ns(0.01))
    print(f"Calibrated sensor sensitivity tau_min = {to_ns(tau_min):.3f} ns\n")

    # 3. Place sensors on critical pairs (criteria 1 + 2 of Sec. 2).
    scheme = ClockTestingScheme.plan(
        tree, tau_min=tau_min, max_distance=6e-3, top_k=6
    )
    print("Monitored pairs (most skew-critical first):")
    for p in scheme.placements:
        print(f"  {p.indicator.name:12s} distance {p.pair.distance * 1e3:.1f} mm, "
              f"unshared path {p.pair.criticality * 1e3:.1f} mm")
    print()

    # 4. Fault campaign.
    victim = scheme.placements[0].pair.sink_a
    buffered = next(
        n.name for n in tree.walk()
        if n.buffer is not None and n.parent is not None
    )
    campaign = [
        ("healthy tree", None),
        ("resistive open (8 kohm) on monitored wire",
         ResistiveOpen(node=victim, extra_resistance=8000.0)),
        ("weak crosstalk (+250 fF): tolerated, below tau_min",
         CrosstalkCoupling(node=victim, coupling_capacitance=250e-15)),
        ("strong crosstalk (+800 fF) on monitored wire",
         CrosstalkCoupling(node=victim, coupling_capacitance=800e-15)),
        ("branch buffer slowdown x1.4",
         BufferSlowdown(node=buffered, factor=1.4)),
    ]

    for label, fault in campaign:
        scheme.reset()
        state = fault.apply(tree) if fault is not None else None
        observations = scheme.observe(state)
        worst = max(observations, key=lambda o: abs(o.skew))
        scan = scheme.scan_out()
        print(f"{label}:")
        print(f"  worst monitored skew : {to_ns(worst.skew):+.3f} ns "
              f"({worst.placement.indicator.name})")
        print(f"  scan-path readout    : {scan}")
        print(f"  on-line checker alarm: {scheme.online_alarm()}")
        flagged = scheme.flagged_pairs()
        print(f"  flagged pairs        : {flagged if flagged else 'none'}")
        if flagged:
            for line in diagnosis_report(diagnose(scheme)).splitlines():
                print(f"  {line}")
        print()


if __name__ == "__main__":
    main()
