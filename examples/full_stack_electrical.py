"""Everything at transistor level, in one netlist.

Clock generator -> buffered RC clock-tree paths (with an injected defect)
-> sensing circuit grafted onto the two monitored wires -> transistor-level
latching error indicator.  No behavioural shortcuts anywhere: the chain the
paper proposes, simulated end to end by the analog engine.

Run:  python examples/full_stack_electrical.py
"""

from repro.analog.engine import TransientOptions, transient
from repro.circuit.compose import graft, prefixed_guess
from repro.clocktree import Buffer, ResistiveOpen, build_h_tree, sink_delays
from repro.clocktree.electrical import TreeNetlistBuilder
from repro.core.sensing import SkewSensor
from repro.devices.sources import ClockSource, PWLSource
from repro.report import ascii_waveform
from repro.testing.indicator_circuit import IndicatorCircuit
from repro.units import ns, to_ns

OPTIONS = TransientOptions(dt_max=200e-12, reltol=5e-3)


def build_stack(tree, sink_a, sink_b):
    """Tree paths + sensor + indicator in one netlist."""
    sensor = SkewSensor()
    clock = ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2))
    builder = TreeNetlistBuilder(tree, [sink_a, sink_b])
    netlist = builder.build(clock)
    node_a = builder.sink_nodes[sink_a]
    node_b = builder.sink_nodes[sink_b]

    # Sensor: clock pins are the electrical tree nodes.
    mapping = graft(
        netlist, sensor.build(), prefix="sens",
        connections={"phi1": node_a, "phi2": node_b},
    )

    # Indicator watches the sensor outputs; precharge releases at 1.5 ns.
    indicator = IndicatorCircuit(prefix="ind")
    flag = indicator.build_into(
        netlist, y1=mapping["y1"], y2=mapping["y2"], prech="prech"
    )
    netlist.drive("prech", PWLSource([0.0, ns(1.4), ns(1.5)], [0, 0, 5]))

    initial = prefixed_guess(sensor.dc_guess(), mapping)
    initial.update(indicator.dc_guess())
    return netlist, (node_a, node_b, flag), initial


def run(tree, sink_a, sink_b, label):
    netlist, (node_a, node_b, flag), initial = build_stack(tree, sink_a, sink_b)
    result = transient(
        netlist, t_stop=ns(22),
        record=[node_a, node_b, flag],
        initial=initial, options=OPTIONS,
    )
    err = result.wave(flag)
    print(f"--- {label} ---")
    print(f"  error flag at 8 ns : {err.at(ns(8)):.2f} V")
    print(f"  error flag at 21 ns: {err.at(ns(21)):.2f} V (latched)")
    print("  monitored wires (2..6 ns):")
    print(ascii_waveform(result.wave(node_a), ns(2), ns(6), rows=8))
    print(ascii_waveform(result.wave(node_b), ns(2), ns(6), rows=8))
    print()
    return err


def main():
    tree = build_h_tree(levels=2, buffer=Buffer())
    sinks = sorted(s.name for s in tree.sinks())
    a, b = sinks[0], sinks[1]
    print(f"Monitoring sinks {a} / {b} of a 16-sink buffered H-tree")
    print(f"Nominal insertion delay: "
          f"{to_ns(sink_delays(tree)[a]):.2f} ns (Elmore)\n")

    run(tree, a, b, "healthy tree: no error, flag stays low")

    fault = ResistiveOpen(node=b, extra_resistance=10_000.0)
    print(f"Injecting: {fault.describe()}\n")
    err = run(fault.apply(tree), a, b,
              "defective tree: skewed arrival -> flag latches")
    assert err.at(ns(21)) > 4.0, "expected a latched error"
    print("Full transistor-level chain confirmed the defect.")


if __name__ == "__main__":
    main()
