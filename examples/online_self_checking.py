"""On-line (self-checking) operation over many clock cycles.

The paper's on-line application: the sensors run concurrently with the
mission logic; their indications feed latching error indicators whose
outputs a two-rail checker compresses into a single alarm pair.  This demo
runs a pipeline workload cycle by cycle while an environmental disturbance
(supply noise slowing one clock branch) comes and goes, and shows

* the mission logic keeps producing correct results (the skew is masked
  from any functional observation - Sec. 1), while
* the checker raises the alarm during the disturbed cycles, and
* the latched indicators localise the affected region afterwards.

Run:  python examples/online_self_checking.py
"""

from repro.clocktree import Buffer, SupplyNoise, build_h_tree, sink_delays
from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns, to_ns


def main():
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=6
    )

    # A regional disturbance under one first-level branch.
    branch = next(
        n.name for n in tree.walk()
        if n.buffer is not None and n.parent is not None
    )
    disturbance = SupplyNoise(node=branch, factor=1.35)
    disturbed_tree = disturbance.apply(tree)

    # How much clock skew does the disturbance create?
    nominal = sink_delays(tree)
    noisy = sink_delays(disturbed_tree)
    delta = max(noisy[s] - nominal[s] for s in nominal)
    print(f"Disturbance: {disturbance.describe()}")
    print(f"  worst sink arrival shift: {to_ns(delta):.3f} ns\n")

    # The mission logic is functionally unaffected (masking!).
    circuit, flops = build_pipeline(
        [ns(3), ns(3)], clock_offsets=[0.0, delta, 0.0]
    )
    result = at_speed_test(circuit, flops, period=ns(10))
    print(f"Mission pipeline under disturbance: "
          f"functional test {'PASSES (fault masked)' if result['passed'] else 'fails'}\n")

    # Cycle-by-cycle on-line monitoring.
    schedule = ["ok"] * 3 + ["noise"] * 2 + ["ok"] * 3
    print("cycle  condition  checker-alarm  latched-pairs")
    for cycle, condition in enumerate(schedule):
        state = disturbed_tree if condition == "noise" else None
        scheme.observe(state)
        latched = ",".join(scheme.flagged_pairs()) or "-"
        print(f"{cycle:>5}  {condition:<9}  {str(scheme.online_alarm()):<13} {latched}")

    print("\nAfter the campaign, off-line scan-out localises the event:")
    print(f"  scan chain: {scheme.scan_out()}")
    print(f"  pairs     : {[p.indicator.name for p in scheme.placements]}")
    directions = {
        p.indicator.name: p.indicator.direction
        for p in scheme.placements if p.indicator.latched
    }
    print(f"  late clock per latched pair: {directions}")


if __name__ == "__main__":
    main()
