"""Quickstart: build the sensing circuit and watch it catch a clock skew.

Reproduces the two situations of the paper's Fig. 2 (no skew: both outputs
fall together and clamp near the NMOS threshold) and Fig. 3 (phi2 late:
y1 completes its transition, y2 holds high -> error code 01).

Run:  python examples/quickstart.py
"""

from repro.core import SkewSensor, simulate_sensor
from repro.units import VTH_INTERPRET, fF, ns, to_ns


def ascii_plot(wave, t0, t1, rows=12, cols=64, vmax=5.5):
    """Tiny ASCII rendering of a waveform (no plotting deps needed)."""
    lines = [[" "] * cols for _ in range(rows)]
    for k in range(cols):
        t = t0 + (t1 - t0) * k / (cols - 1)
        v = wave.at(t)
        row = rows - 1 - int(min(max(v / vmax, 0.0), 0.999) * rows)
        lines[row][k] = "*"
    return "\n".join("".join(line) for line in lines)


def describe(response, label):
    print(f"--- {label} ---")
    print(f"  applied skew tau      : {to_ns(response.skew):+.2f} ns")
    print(f"  Vmin(y1)              : {response.vmin_y1:.2f} V")
    print(f"  Vmin(y2)              : {response.vmin_y2:.2f} V")
    print(f"  threshold             : {VTH_INTERPRET:.2f} V")
    print(f"  interpreted (y1, y2)  : {response.code}")
    print(f"  error detected        : {response.error_detected}")
    print()


def main():
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    print("Skew sensing circuit (Favalli & Metra, ED&TC 1997)")
    print("  10 transistors, 160 fF load per output\n")

    # Fig. 2: simultaneous clock edges.
    no_skew = simulate_sensor(sensor, skew=0.0)
    describe(no_skew, "no skew (Fig. 2): outputs fall together, clamp ~VTn")
    print("y1 waveform around the rising edges (2..12 ns):")
    print(ascii_plot(no_skew.wave("y1"), ns(1), ns(12)))
    print()

    # Fig. 3: phi2 late by 1 ns.
    skewed = simulate_sensor(sensor, skew=ns(1.0))
    describe(skewed, "phi2 late by 1 ns (Fig. 3): y2 holds high -> code 01")
    print("y1 (falls) vs y2 (holds) around the rising edges:")
    print(ascii_plot(skewed.wave("y1"), ns(1), ns(12)))
    print(ascii_plot(skewed.wave("y2"), ns(1), ns(12)))
    print()

    # And the mirror case.
    mirror = simulate_sensor(sensor, skew=-ns(1.0))
    describe(mirror, "phi1 late by 1 ns: mirror indication 10")


if __name__ == "__main__":
    main()
