"""Serve the Fig.-5 Monte Carlo as a campaign and stream its progress.

Boots the campaign service in-process on an ephemeral port, submits the
paper's Monte Carlo scatter analysis (a seeded population over a skew
grid) as one service campaign, follows the Server-Sent-Events progress
stream job by job, and fetches the folded result - the same
``ServiceClient`` calls ``repro submit --stream`` makes against a
long-running ``repro serve``.

Because the service compiles specs into exactly the jobs a direct
``repro montecarlo`` run would build, the results land under the same
content-addressed cache keys: run this twice and the second campaign
completes from cache.

Run:  python examples/service_montecarlo.py
"""

import tempfile
import threading

from repro.service.api import create_server
from repro.service.client import ServiceClient
from repro.units import VTH_INTERPRET


def main():
    print("Campaign service demo: Fig.-5 Monte Carlo over HTTP")

    with tempfile.TemporaryDirectory(prefix="repro-service-") as state_dir:
        server = create_server(state_dir=state_dir)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        print(f"  server  : http://127.0.0.1:{server.port}")
        print(f"  health  : {client.health()['status']}")

        spec = {
            "kind": "montecarlo",
            "samples": 6,
            "seed": 42,
            "load_ff": 160.0,
            "skews_ns": [0.0, 0.15, 0.4],
        }
        record = client.submit(spec, client="example")
        campaign_id = record["campaign_id"]
        print(f"  campaign: {campaign_id} ({record['state']})\n")

        print("streaming progress events:")
        for event in client.stream_events(campaign_id, timeout=600):
            kind = event["event"]
            if kind == "job":
                print(f"  job {event['done']:2d}/{event['total']}  "
                      f"tau = {event['skew'] * 1e9:5.2f} ns  "
                      f"Vmin = {event['vmin']:5.2f} V"
                      f"{'  (cached)' if event.get('cached') else ''}")
            else:
                print(f"  [{kind}] {event}")

        result = client.result(campaign_id)
        print("\nscatter summary (flagged = Vmin above the interpretation "
              f"threshold {VTH_INTERPRET:.1f} V):")
        points = result["points"]
        for tau in sorted({p["skew_s"] for p in points}):
            vmins = [p["vmin_v"] for p in points if p["skew_s"] == tau]
            flagged = sum(1 for v in vmins if v > VTH_INTERPRET)
            print(f"  tau = {tau * 1e9:5.2f} ns : Vmin in "
                  f"[{min(vmins):5.2f}, {max(vmins):5.2f}] V, "
                  f"flagged {flagged}/{len(vmins)}")

        metrics = client.metrics()
        print(f"\nservice metrics: {metrics['campaigns_executed']} campaign "
              f"run, cache {metrics['cache']['hits']} hits / "
              f"{metrics['cache']['misses']} misses")
        server.shutdown_all()
    print("done")


if __name__ == "__main__":
    main()
