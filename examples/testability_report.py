"""Sec.-3 testability report for the sensing circuit itself.

Runs the full fault universe (node stuck-ats, transistor stuck-open /
stuck-on, 100 ohm bridging faults) against the sensor under fault-free
clock stimuli - the only stimuli available, since "the clock signals cannot
be controlled independently from each other" - and prints the coverage
table the paper reports in prose.

Run:  python examples/testability_report.py      (~15 s)
"""

from repro.testing.testability import analyze_sensor_testability
from repro.units import to_ns


def main():
    print("Analysing sensor testability (electrical simulation of the")
    print("full fault universe under fault-free clocks)...\n")
    report = analyze_sensor_testability()

    print(f"{'fault class':<12} {'universe':>8} {'logic':>8} {'with IDDQ':>10}")
    print("-" * 42)
    for kind, n, cov, cov_iddq in report.summary_rows():
        print(f"{kind:<12} {n:>8d} {cov * 100:>7.0f}% {cov_iddq * 100:>9.0f}%")
    print()

    print("Escapes (logic detection, fault-free stimuli):")
    for kind in ("stuck-at", "stuck-open", "stuck-on", "bridging"):
        escapes = report.undetected(kind)
        if not escapes:
            print(f"  {kind:<11}: none")
            continue
        names = ", ".join(v.fault.describe() for v in escapes)
        print(f"  {kind:<11}: {names}")
    print()

    print("Undetected stuck-opens vs the skew-masking question")
    print("(the paper: these faults do not mask abnormal skews):")
    for verdict in report.verdicts["stuck-open"]:
        if verdict.masks_skew is not None:
            status = "MASKS skews (bad)" if verdict.masks_skew else \
                "still detects skews"
            print(f"  {verdict.fault.describe():<28} -> {status}")
    print()

    print("IDDQ currents of logic escapes (threshold 10 uA):")
    for kind in ("stuck-on", "bridging"):
        for verdict in report.undetected(kind):
            flag = "IDDQ-detected" if verdict.detected_iddq else "escape"
            print(f"  {verdict.fault.describe():<32} "
                  f"{verdict.iddq_current * 1e6:>10.2f} uA  {flag}")


if __name__ == "__main__":
    main()
