from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Testing scheme for IC's clocks' "
        "(Favalli & Metra, ED&TC 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    python_requires=">=3.9",
)
