"""Reproduction of *Testing scheme for IC's clocks* (Favalli & Metra,
ED&TC 1997).

The paper proposes a compact CMOS sensing circuit that detects abnormal
skew between two clock signals branching from the same generator, for both
off-line testing and on-line self-checking operation.  This library
rebuilds the full system:

* :mod:`repro.core` - the sensing circuit, its response and sensitivity;
* :mod:`repro.analog` - the electrical-level transient simulator;
* :mod:`repro.devices` / :mod:`repro.circuit` - device models and netlists;
* :mod:`repro.faults` / :mod:`repro.testing` - fault models, the Sec.-3
  testability analysis, indicators, checker, scan path and the full
  Fig.-6 scheme;
* :mod:`repro.clocktree` - buffered H-trees, zero-skew DME routing,
  Elmore timing, tree-level fault injection;
* :mod:`repro.logicsim` - gate-level simulation for the Sec.-1 motivation;
* :mod:`repro.montecarlo` - the Fig.-5 / Tab.-1 variability analysis;
* :mod:`repro.runtime` - campaign orchestration: content-addressed
  result cache, serial/thread/process executor, telemetry.

Quickstart::

    from repro.core import SkewSensor, simulate_sensor
    from repro.units import ns, fF

    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    response = simulate_sensor(sensor, skew=ns(0.5))
    assert response.code == (0, 1)   # phi2 late -> error indication
"""

from repro.core import SkewSensor, simulate_sensor
from repro.units import VDD, VTH_INTERPRET, fF, ns, ps, um

__version__ = "1.0.0"

__all__ = [
    "SkewSensor",
    "simulate_sensor",
    "VDD",
    "VTH_INTERPRET",
    "ns",
    "ps",
    "fF",
    "um",
    "__version__",
]
