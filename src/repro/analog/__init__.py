"""Electrical-level transient simulator.

This package replaces the SPICE-class simulator the paper used.  It compiles
a :class:`~repro.circuit.Netlist` into dense numpy arrays and integrates the
nodal equations ``C dv/dt + i(v, t) = 0`` with Newton-Raphson iterations and
an adaptive trapezoidal / backward-Euler scheme, landing steps exactly on
source breakpoints (clock edge corners).
"""

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import dc_operating_point
from repro.analog.engine import TransientOptions, TransientResult, transient
from repro.analog.sweep import dc_sweep, switching_threshold
from repro.analog.waveform import Waveform
from repro.analog.measure import (
    crossing_time,
    delay_between,
    logic_value,
    skew_between,
)

__all__ = [
    "CompiledCircuit",
    "dc_operating_point",
    "transient",
    "TransientOptions",
    "TransientResult",
    "Waveform",
    "crossing_time",
    "delay_between",
    "skew_between",
    "logic_value",
    "dc_sweep",
    "switching_threshold",
]
