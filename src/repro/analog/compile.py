"""Compilation of a netlist into the dense arrays the engine integrates.

Node ordering: the ``n_free`` solved nodes come first, then the driven
(source) nodes.  All device evaluation works on the *full* voltage vector so
the same pass also yields the current drawn from every source - which is how
the IDDQ probe (Sec. 3 of the paper) is implemented.

MOSFETs are evaluated in vectorised model space:

* PMOS voltages are negated (``sign = -1``) so one set of equations serves
  both polarities;
* drain/source are swapped wherever ``vds`` would be negative, so the model
  only ever sees ``vds >= 0``.

Fault semantics honoured here:

* ``stuck_open`` devices are compiled out (channel never conducts);
* ``stuck_on`` devices have their gate remapped to the turn-on rail
  (VDD for NMOS, ground for PMOS), which reproduces the conducting-channel
  behaviour including the analog intermediate voltages of conflicting
  networks that the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.validate import validate
from repro.devices.mosfet import MosfetType, level1_ids  # noqa: F401  (re-export)
from repro.devices.sources import DCSource

#: Shunt conductance added from every free node to ground for conditioning.
GMIN = 1e-9

#: Parasitic capacitance floor added on every free node so the nodal system
#: is never singular (farads).
CMIN = 0.5e-15

#: Free-node count past which running a dense-family ``jacobian_policy``
#: is flagged: the engine's O(n^2) Jacobian buffers and O(n^3)
#: refactorizations stop being an implementation detail around here.
DENSE_WARN_NODES = 512

#: Times :func:`note_dense_jacobian` fired this process (telemetry /
#: test observable; the stderr message itself is emitted only once).
dense_jacobian_warnings = 0
_dense_jacobian_announced = False


def note_dense_jacobian(n_free: int, policy: str) -> None:
    """Record a dense-Jacobian run above :data:`DENSE_WARN_NODES`.

    Counts every occurrence in :data:`dense_jacobian_warnings` and
    writes one stderr line per process - loud enough to catch a
    whole-tree campaign silently burning O(n^3) per Newton refresh,
    quiet enough not to spam a sweep.  The engine also tallies the event
    under ``"dense-jacobian-large-n"`` in its escalation counters, which
    flow into the campaign telemetry.
    """
    global dense_jacobian_warnings, _dense_jacobian_announced
    dense_jacobian_warnings += 1
    if not _dense_jacobian_announced:
        _dense_jacobian_announced = True
        import sys

        print(
            f"repro: dense jacobian_policy={policy!r} on {n_free} free "
            f"nodes (> {DENSE_WARN_NODES}); each Newton refresh factors "
            "a dense matrix - consider jacobian_policy='sparse' "
            "(pip install 'repro[sparse]') or 'auto'",
            file=sys.stderr,
        )


@dataclass
class CompiledCircuit:
    """A netlist lowered to dense arrays ready for integration."""

    netlist: Netlist
    node_index: Dict[str, int] = field(default_factory=dict)
    n_free: int = 0
    n_total: int = 0
    vdd_node: str = "vdd"

    # Linear parts (full-size, n_total x n_total).
    G: np.ndarray = field(default=None, repr=False)
    C: np.ndarray = field(default=None, repr=False)

    # MOSFET arrays.
    m_d: np.ndarray = field(default=None, repr=False)
    m_g: np.ndarray = field(default=None, repr=False)
    m_s: np.ndarray = field(default=None, repr=False)
    m_sign: np.ndarray = field(default=None, repr=False)
    m_vt: np.ndarray = field(default=None, repr=False)
    m_beta: np.ndarray = field(default=None, repr=False)
    m_lam: np.ndarray = field(default=None, repr=False)

    #: Compile-time ``(node index, source)`` pairs and the reusable
    #: scratch vector behind :meth:`source_voltages` (the dict walk and
    #: fresh ``np.zeros`` of the original implementation were a measurable
    #: per-timestep cost).
    _source_plan: List[Tuple[int, Any]] = field(default_factory=list, repr=False)
    _source_plan_dynamic: List[Tuple[int, Any]] = field(
        default_factory=list, repr=False
    )
    _source_scratch: np.ndarray = field(default=None, repr=False)
    _kernel: Any = field(default=None, repr=False)

    @classmethod
    def compile(cls, netlist: Netlist, vdd_node: str = "vdd") -> "CompiledCircuit":
        """Validate and lower ``netlist``.

        ``vdd_node`` names the positive supply; it is required only when the
        netlist contains stuck-on NMOS faults (their gate is remapped there).
        """
        validate(netlist)
        self = cls(netlist=netlist, vdd_node=vdd_node)

        free = netlist.free_nodes()
        driven = netlist.driven_nodes()
        self.node_index = {n: i for i, n in enumerate(free + driven)}
        self.n_free = len(free)
        self.n_total = len(free) + len(driven)
        n = self.n_total
        idx = self.node_index

        self.G = np.zeros((n, n))
        self.C = np.zeros((n, n))

        def stamp_two_terminal(matrix: np.ndarray, a: int, b: int, value: float) -> None:
            matrix[a, a] += value
            matrix[b, b] += value
            matrix[a, b] -= value
            matrix[b, a] -= value

        for r in netlist.resistors:
            if r.a == r.b:
                continue
            stamp_two_terminal(self.G, idx[r.a], idx[r.b], r.conductance)
        for c in netlist.capacitors:
            if c.a == c.b:
                continue
            stamp_two_terminal(self.C, idx[c.a], idx[c.b], c.capacitance)

        ground = idx[GROUND]
        for k in range(self.n_free):
            stamp_two_terminal(self.G, k, ground, GMIN)
            stamp_two_terminal(self.C, k, ground, CMIN)

        d_list: List[int] = []
        g_list: List[int] = []
        s_list: List[int] = []
        sign_list: List[int] = []
        vt_list: List[float] = []
        beta_list: List[float] = []
        lam_list: List[float] = []
        for m in netlist.mosfets:
            if m.stuck_open:
                continue
            gate = m.gate
            if m.stuck_on:
                gate = vdd_node if m.mtype is MosfetType.NMOS else GROUND
                if gate not in idx:
                    raise KeyError(
                        f"stuck-on fault on {m.name} needs rail node {gate!r} "
                        "in the netlist"
                    )
            d_list.append(idx[m.drain])
            g_list.append(idx[gate])
            s_list.append(idx[m.source])
            sign_list.append(m.mtype.sign)
            vt_list.append(m.vt_magnitude)
            beta_list.append(m.beta)
            lam_list.append(m.card.lam)
            # Weak channel leakage keeps series stacks conditioned.
            stamp_two_terminal(self.G, idx[m.drain], idx[m.source], GMIN)

        self.m_d = np.array(d_list, dtype=int)
        self.m_g = np.array(g_list, dtype=int)
        self.m_s = np.array(s_list, dtype=int)
        self.m_sign = np.array(sign_list, dtype=float)
        self.m_vt = np.array(vt_list, dtype=float)
        self.m_beta = np.array(beta_list, dtype=float)
        self.m_lam = np.array(lam_list, dtype=float)

        self._source_plan = [
            (idx[node], src) for node, src in netlist.sources.items()
        ]
        self._source_plan_dynamic = [
            (i, src) for i, src in self._source_plan
            if not isinstance(src, DCSource)
        ]
        self._source_scratch = np.zeros(n)
        return self

    # ------------------------------------------------------------------ #
    # Sources
    # ------------------------------------------------------------------ #
    def source_voltages(self, t: float) -> np.ndarray:
        """Voltages of all driven nodes at time ``t`` (full-vector layout:
        the first ``n_free`` entries are zero placeholders)."""
        scratch = self._source_scratch
        for index, src in self._source_plan:
            scratch[index] = src.value(t)
        return scratch.copy()

    def source_voltages_into(
        self, t: float, out: np.ndarray, dynamic_only: bool = False
    ) -> np.ndarray:
        """Fill ``out`` (length ``n_total``) with the driven-node voltages
        at ``t`` - the allocation-free variant the engine hot loop uses.
        Only driven entries are written; free entries keep their values.

        With ``dynamic_only`` the DC sources are skipped: a caller that
        reuses one buffer across timesteps writes the constants once and
        refreshes only the time-varying sources per step.
        """
        plan = self._source_plan_dynamic if dynamic_only else self._source_plan
        for index, src in plan:
            out[index] = src.value(t)
        return out

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """All source waveform corners in ``[t0, t1]``, sorted and unique."""
        points = set()
        for src in self.netlist.sources.values():
            if isinstance(src, DCSource):
                continue
            points.update(src.breakpoints(t0, t1))
        return sorted(points)

    # ------------------------------------------------------------------ #
    # Device evaluation
    # ------------------------------------------------------------------ #
    def kernel(self) -> "ScalarKernel":
        """The compiled scatter/assembly kernel of this circuit (lazy).

        Built on first use so that compilation itself stays cheap for
        callers that never integrate (structure checks, probes).  The
        kernel freezes the device *connectivity*; model-card parameters
        are still read per evaluation, so post-compile mutations of
        ``m_vt``/``m_beta``/``m_lam`` (fault/poison injection) apply.
        """
        if self._kernel is None:
            from repro.analog.kernels import ScalarKernel

            self._kernel = ScalarKernel(self)
        return self._kernel

    def device_currents(
        self, v: np.ndarray, with_jacobian: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Static currents leaving each node, and their Jacobian.

        Parameters
        ----------
        v:
            Full voltage vector (length ``n_total``).
        with_jacobian:
            Skip the Jacobian scatter when only the residual is needed
            (saves time in acceptance checks and probes).

        Returns
        -------
        (f, j):
            ``f[k]`` is the total static (resistive + MOSFET) current
            flowing *out of* node ``k`` into devices; ``j`` is ``df/dv``
            (``None`` when ``with_jacobian`` is false).  Assembly happens
            in the compiled :meth:`kernel`; the returned arrays are fresh
            copies, safe for the caller to keep or mutate.
        """
        f, j = self.kernel().eval(v, with_jacobian=with_jacobian)
        return f.copy(), (j.copy() if j is not None else None)
