"""DC operating point via damped Newton with gmin and source stepping.

The operating point initialises every transient run: sources are frozen at
their ``t = t0`` values and the static KCL system ``i(v) = 0`` is solved on
the free nodes.  The solve escalates through a ladder of homotopies:

1. **direct** - plain damped Newton from the caller's guess (preserves the
   intended state of multistable circuits);
2. **gmin** - homotopy on an artificial shunt conductance (classic "gmin
   stepping") pulling toward the guess;
3. **source-stepping** - supply voltages ramped from a fraction of their
   value to full scale, each stage seeded by the previous solution.

Every failure raises :class:`~repro.errors.ConvergenceError` carrying a
:class:`~repro.errors.SimulationDiagnostics` record (circuit name, time,
Newton iteration, gmin stage, worst-residual node, last-good state), so a
non-convergent corner inside a thousand-job campaign is debuggable from
its log line.  ``ConvergenceError`` lives in :mod:`repro.errors` now; this
module keeps re-exporting it for backward compatibility.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.analog.compile import CompiledCircuit
from repro.errors import (  # noqa: F401  (re-exported, historical home)
    ConvergenceError,
    NonFiniteStateError,
    SimulationDiagnostics,
)

#: Source-stepping ramp: fraction of full supply solved at each stage.
SOURCE_STEPS = (0.1, 0.25, 0.5, 0.75, 1.0)


def _newton_static(
    circuit: CompiledCircuit,
    v: np.ndarray,
    shunt: float,
    target: np.ndarray,
    max_iter: int = 200,
    vntol: float = 1e-9,
    itol: float = 1e-12,
    solver: Optional[object] = None,
) -> Tuple[Optional[np.ndarray], Dict[str, object]]:
    """One Newton solve of ``i(v) + shunt * (v - target) = 0`` on free nodes.

    The shunt pulls nodes toward ``target`` - the caller's initial guess
    (or mid-rail by default), so the homotopy stays in the intended basin
    of a multistable circuit.  Returns ``(solution, info)``: the full
    voltage vector (or ``None`` on non-convergence) plus an ``info`` dict
    with the iteration count and worst-residual observation of the last
    iterate - the raw material of failure diagnostics.

    ``solver`` (e.g. :class:`repro.sparse.newton.SparseStaticSolver`)
    replaces the two dense operations - device evaluation and the shunted
    linear solve - while this function keeps the ladder semantics; a
    singular system must surface as a non-finite delta there, which the
    finite guard below rejects exactly like the dense ``LinAlgError``.
    """
    n_free = circuit.n_free
    v = v.copy()
    info: Dict[str, object] = {"iterations": 0, "worst_index": None,
                               "worst_residual": None}
    for iteration in range(max_iter):
        info["iterations"] = iteration + 1
        if solver is not None:
            f = solver.currents(v)
            j = None
        else:
            f, j = circuit.device_currents(v, with_jacobian=True)
        residual = f[:n_free] + shunt * (v[:n_free] - target[:n_free])
        if n_free:
            worst = int(np.argmax(np.abs(residual)))
            info["worst_index"] = worst
            info["worst_residual"] = float(abs(residual[worst]))
        if solver is not None:
            delta = solver.solve(shunt, residual)
        else:
            jacobian = j[:n_free, :n_free] + shunt * np.eye(n_free)
            try:
                delta = np.linalg.solve(jacobian, -residual)
            except np.linalg.LinAlgError:
                return None, info
        if not np.all(np.isfinite(delta)):
            return None, info
        step = np.max(np.abs(delta))
        if step > 1.0:
            delta *= 1.0 / step
        v[:n_free] += delta
        if not np.all(np.isfinite(v[:n_free])):
            return None, info
        if np.max(np.abs(delta)) < vntol and np.max(np.abs(residual)) < max(
            itol, 1e-6 * max(np.max(np.abs(f[:n_free])), 1e-12)
        ):
            return v, info
    return None, info


def _node_name(circuit: CompiledCircuit, index: Optional[object]) -> Optional[str]:
    """Node name for a solver row index, if identifiable."""
    if index is None:
        return None
    for name, i in circuit.node_index.items():
        if i == index:
            return name
    return None


def dc_operating_point(
    circuit: CompiledCircuit,
    t: float = 0.0,
    initial: Optional[Dict[str, float]] = None,
    stats: Optional[Dict[str, object]] = None,
    solver: Optional[object] = None,
) -> np.ndarray:
    """Solve the DC operating point with sources frozen at time ``t``.

    Parameters
    ----------
    circuit:
        Compiled circuit.
    t:
        Time at which source values are taken.
    initial:
        Optional initial guesses per node name; unnamed free nodes start at
        mid-rail.
    stats:
        Optional dict the solver annotates with ``{"dcop_rung": name}`` -
        which ladder rung (``"direct"``, ``"gmin"``,
        ``"source-stepping"``) produced the solution.  Telemetry reads it.
    solver:
        Optional evaluate/factor hook handed to every
        :func:`_newton_static` call (the sparse engine passes its
        :class:`repro.sparse.newton.SparseStaticSolver` so the DC solve
        never assembles a dense Jacobian).  The ladder itself is
        solver-agnostic.

    Returns
    -------
    Full voltage vector (length ``n_total``).

    Raises
    ------
    ConvergenceError
        When every rung of the ladder fails; carries diagnostics naming
        the circuit, the gmin stage reached and the worst-residual node.
    """
    v = circuit.source_voltages(t)
    vdd = max((src.value(t) for src in circuit.netlist.sources.values()), default=0.0)
    v[: circuit.n_free] = vdd / 2.0
    if initial:
        for node, voltage in initial.items():
            index = circuit.node_index.get(node)
            if index is not None and index < circuit.n_free:
                v[index] = voltage

    if circuit.n_free == 0:
        if stats is not None:
            stats["dcop_rung"] = "direct"
        return v

    target = v.copy()
    last_info: Dict[str, object] = {}
    last_shunt: Optional[float] = None

    # Rung 1 - direct.  A plain solve from the caller's guess preserves
    # the intended state of multistable circuits (the homotopy shunt
    # would otherwise drag them toward its target and can land on the
    # metastable branch).
    direct, info = _newton_static(circuit, v, 1e-12, target, solver=solver)
    last_info = info
    if direct is not None:
        if stats is not None:
            stats["dcop_rung"] = "direct"
        return direct

    # Rung 2 - gmin stepping.
    solution = None
    for exponent in range(3, 13):
        shunt = 10.0 ** (-exponent)
        attempt, info = _newton_static(circuit, v, shunt, target,
                                       solver=solver)
        if attempt is None:
            # Retry this stage from the target before giving up on it.
            attempt, info = _newton_static(circuit, target.copy(), shunt, target,
                                           solver=solver)
        if attempt is not None:
            v = attempt
            solution = attempt
        else:
            last_info, last_shunt = info, shunt
    if solution is not None:
        if stats is not None:
            stats["dcop_rung"] = "gmin"
        return solution

    # Rung 3 - source stepping: ramp the driven nodes from a fraction of
    # their value to full scale, seeding each stage with the previous
    # solution.  Rescues circuits whose device curves are too stiff for
    # the shunt homotopy at full supply.
    full_sources = circuit.source_voltages(t)
    guess = target.copy()
    stepped: Optional[np.ndarray] = None
    for fraction in SOURCE_STEPS:
        staged = guess.copy()
        staged[circuit.n_free:] = fraction * full_sources[circuit.n_free:]
        staged_target = staged.copy()
        attempt, info = _newton_static(circuit, staged, 1e-9, staged_target,
                                       solver=solver)
        if attempt is None:
            stepped = None
            last_info = info
            break
        guess = attempt
        stepped = attempt
    if stepped is not None:
        if stats is not None:
            stats["dcop_rung"] = "source-stepping"
        return stepped

    diagnostics = SimulationDiagnostics(
        circuit=circuit.netlist.name,
        sim_time=t,
        newton_iteration=last_info.get("iterations"),
        gmin_stage=last_shunt,
        ladder_rung="source-stepping",
        worst_residual_node=_node_name(circuit, last_info.get("worst_index")),
        worst_residual=last_info.get("worst_residual"),
    )
    diagnostics.capture_state(circuit.node_index, target)
    raise ConvergenceError(
        f"DC operating point failed for {circuit.netlist.name!r}",
        diagnostics=diagnostics,
    )
