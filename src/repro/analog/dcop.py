"""DC operating point via damped Newton with gmin stepping.

The operating point initialises every transient run: sources are frozen at
their ``t = t0`` values and the static KCL system ``i(v) = 0`` is solved on
the free nodes.  A homotopy on an artificial shunt conductance (classic
"gmin stepping") makes the solve robust for the ratioed, feedback-coupled
circuits in this library.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analog.compile import CompiledCircuit


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to find an operating point."""


def _newton_static(
    circuit: CompiledCircuit,
    v: np.ndarray,
    shunt: float,
    target: np.ndarray,
    max_iter: int = 200,
    vntol: float = 1e-9,
    itol: float = 1e-12,
) -> Optional[np.ndarray]:
    """One Newton solve of ``i(v) + shunt * (v - target) = 0`` on free nodes.

    The shunt pulls nodes toward ``target`` - the caller's initial guess
    (or mid-rail by default), so the homotopy stays in the intended basin
    of a multistable circuit.  Returns the full voltage vector on success,
    ``None`` on non-convergence.
    """
    n_free = circuit.n_free
    v = v.copy()
    for _ in range(max_iter):
        f, j = circuit.device_currents(v, with_jacobian=True)
        residual = f[:n_free] + shunt * (v[:n_free] - target[:n_free])
        jacobian = j[:n_free, :n_free] + shunt * np.eye(n_free)
        try:
            delta = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError:
            return None
        step = np.max(np.abs(delta))
        if step > 1.0:
            delta *= 1.0 / step
        v[:n_free] += delta
        if np.max(np.abs(delta)) < vntol and np.max(np.abs(residual)) < max(
            itol, 1e-6 * max(np.max(np.abs(f[:n_free])), 1e-12)
        ):
            return v
    return None


def dc_operating_point(
    circuit: CompiledCircuit,
    t: float = 0.0,
    initial: Optional[Dict[str, float]] = None,
) -> np.ndarray:
    """Solve the DC operating point with sources frozen at time ``t``.

    Parameters
    ----------
    circuit:
        Compiled circuit.
    t:
        Time at which source values are taken.
    initial:
        Optional initial guesses per node name; unnamed free nodes start at
        mid-rail.

    Returns
    -------
    Full voltage vector (length ``n_total``).

    Raises
    ------
    ConvergenceError
        If the gmin homotopy fails at its tightest stage.
    """
    v = circuit.source_voltages(t)
    vdd = max((src.value(t) for src in circuit.netlist.sources.values()), default=0.0)
    v[: circuit.n_free] = vdd / 2.0
    if initial:
        for node, voltage in initial.items():
            index = circuit.node_index.get(node)
            if index is not None and index < circuit.n_free:
                v[index] = voltage

    if circuit.n_free == 0:
        return v

    target = v.copy()

    # A direct solve from the caller's guess preserves the intended state
    # of multistable circuits (the homotopy shunt would otherwise drag
    # them toward its target and can land on the metastable branch).
    direct = _newton_static(circuit, v, 1e-12, target)
    if direct is not None:
        return direct

    solution = None
    for exponent in range(3, 13):
        shunt = 10.0 ** (-exponent)
        attempt = _newton_static(circuit, v, shunt, target)
        if attempt is None:
            # Retry this stage from the target before giving up on it.
            attempt = _newton_static(circuit, target.copy(), shunt, target)
        if attempt is not None:
            v = attempt
            solution = attempt
    if solution is None:
        raise ConvergenceError(
            f"DC operating point failed for {circuit.netlist.name!r}"
        )
    return solution
