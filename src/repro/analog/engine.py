"""Adaptive transient integration.

The nodal system is ``C dv/dt + i(v, t) = 0`` on the free nodes, with driven
nodes following their sources exactly.  Two one-step methods are used:

* **backward Euler** for the first step after every source breakpoint (it is
  L-stable, so it damps the artificial ringing a corner would excite in the
  trapezoidal rule);
* **trapezoidal** everywhere else (second order - what SPICE uses).

Step control is the classic predictor/corrector comparison: the accepted
solution is compared against a linear extrapolation of history; the
normalised difference drives growth/shrink of ``h`` and step rejection.

The engine also records, at every accepted point, the current delivered by
every source node - the IDDQ probe used by the Sec. 3 testability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import ConvergenceError, dc_operating_point
from repro.analog.waveform import Waveform
from repro.circuit.netlist import Netlist


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient engine.

    Attributes
    ----------
    dt_max:
        Hard cap on the step size, seconds.
    dt_min:
        Floor below which the engine gives up, seconds.
    dt_start:
        Step used right after ``t0`` and after every breakpoint.
    reltol, vabstol:
        Local-error normalisation: the error weight per node is
        ``reltol * |v| + vabstol``.
    max_newton:
        Newton iteration cap per step; non-convergence rejects the step.
    vntol:
        Newton update convergence threshold, volts.
    lte_reject:
        Normalised local error above which a step is rejected outright.
    """

    dt_max: float = 100e-12
    dt_min: float = 1e-18
    dt_start: float = 1e-13
    reltol: float = 2e-3
    vabstol: float = 1e-4
    max_newton: int = 50
    vntol: float = 1e-7
    lte_reject: float = 4.0

    def __post_init__(self) -> None:
        if not 0 < self.dt_min <= self.dt_start <= self.dt_max:
            raise ValueError(
                "need 0 < dt_min <= dt_start <= dt_max "
                f"(got {self.dt_min}, {self.dt_start}, {self.dt_max})"
            )
        if self.reltol <= 0 or self.vabstol <= 0 or self.vntol <= 0:
            raise ValueError("tolerances must be positive")
        if self.max_newton < 2:
            raise ValueError("max_newton must be at least 2")
        if self.lte_reject <= 1.0:
            raise ValueError("lte_reject must exceed 1")


@dataclass
class TransientResult:
    """Waveforms of a transient run."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray] = field(default_factory=dict)

    def wave(self, node: str) -> Waveform:
        """Voltage waveform of ``node``."""
        if node not in self.voltages:
            raise KeyError(f"node {node!r} was not recorded")
        return Waveform(times=self.times, values=self.voltages[node], name=node)

    def source_current(self, node: str) -> Waveform:
        """Current delivered *by* the source driving ``node`` (amperes).

        Positive values mean the source pushes current into the circuit.
        This is the IDDQ observable when applied to the VDD node in a
        quiescent interval.
        """
        if node not in self.source_currents:
            raise KeyError(f"source current for {node!r} was not recorded")
        return Waveform(
            times=self.times, values=self.source_currents[node], name=f"i({node})"
        )

    def delivered_charge(
        self, node: str, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> float:
        """Charge the source on ``node`` delivered over ``[t0, t1]``,
        coulombs (trapezoidal integral of the recorded current)."""
        wave = self.source_current(node)
        t0 = wave.t_start if t0 is None else t0
        t1 = wave.t_stop if t1 is None else t1
        window = wave.slice(t0, t1)
        return float(np.trapezoid(window.values, window.times))

    def delivered_energy(
        self,
        node: str,
        supply_voltage: float,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> float:
        """Energy drawn from a DC supply on ``node`` over ``[t0, t1]``,
        joules (``V * integral of i dt``; valid for constant-voltage
        rails, which is what VDD is here)."""
        return supply_voltage * self.delivered_charge(node, t0, t1)

    def __len__(self) -> int:
        return len(self.times)


def _newton_step(
    circuit: CompiledCircuit,
    v_guess: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    f_prev: Optional[np.ndarray],
    h: float,
    alpha: float,
    options: TransientOptions,
) -> Optional[np.ndarray]:
    """Solve one implicit step; ``alpha = 1`` is BE, ``0.5`` trapezoidal.

    Residual on free nodes:
    ``(q(v) - q_prev) / h + alpha * f(v) + (1 - alpha) * f_prev = 0``.
    Returns the converged full voltage vector or ``None``.
    """
    n_free = circuit.n_free
    v = v_guess.copy()
    v[n_free:] = v_sources[n_free:]
    c_ff = circuit.C[:n_free, :]
    history = (1.0 - alpha) * f_prev[:n_free] if f_prev is not None else 0.0

    for _ in range(options.max_newton):
        f, j = circuit.device_currents(v, with_jacobian=True)
        q = circuit.C @ v
        residual = (q[:n_free] - q_prev[:n_free]) / h + alpha * f[:n_free] + history
        jacobian = c_ff[:, :n_free] / h + alpha * j[:n_free, :n_free]
        try:
            delta = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError:
            return None
        step = np.max(np.abs(delta))
        if step > 1.0:
            delta *= 1.0 / step
        v[:n_free] += delta
        if step < options.vntol:
            return v
    return None


def transient(
    netlist: Netlist,
    t_stop: float,
    t_start: float = 0.0,
    record: Optional[Iterable[str]] = None,
    record_currents: Optional[Iterable[str]] = None,
    initial: Optional[Dict[str, float]] = None,
    options: Optional[TransientOptions] = None,
    compiled: Optional[CompiledCircuit] = None,
) -> TransientResult:
    """Integrate ``netlist`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    netlist:
        Circuit to simulate (ignored when ``compiled`` is given).
    record:
        Node names whose voltages to keep; defaults to every node.
    record_currents:
        Driven nodes whose delivered source current to keep.
    initial:
        Initial-guess voltages per node, passed to the operating-point
        solve (useful to select a state of a bistable circuit).
    options:
        Engine knobs; see :class:`TransientOptions`.
    compiled:
        Reuse an already compiled circuit (Monte Carlo sweeps re-simulate
        the same topology with different stimuli).
    """
    options = options or TransientOptions()
    circuit = compiled or CompiledCircuit.compile(netlist)
    n_free = circuit.n_free

    record = list(record) if record is not None else sorted(circuit.node_index)
    for node in record:
        if node not in circuit.node_index:
            raise KeyError(f"cannot record unknown node {node!r}")
    current_nodes = list(record_currents or [])
    for node in current_nodes:
        if node not in circuit.netlist.sources:
            raise KeyError(f"cannot record source current of undriven node {node!r}")

    breakpoints = [b for b in circuit.breakpoints(t_start, t_stop) if b > t_start]
    breakpoints.append(t_stop)
    breakpoints = sorted(set(breakpoints))

    v = dc_operating_point(circuit, t=t_start, initial=initial)

    times: List[float] = [t_start]
    states: List[np.ndarray] = [v.copy()]
    f_now, _ = circuit.device_currents(v, with_jacobian=False)
    currents: List[np.ndarray] = [f_now.copy()]

    t = t_start
    h = options.dt_start
    # Time comparison tolerance: a few ULPs at the horizon's magnitude.
    eps_t = 64.0 * np.spacing(max(abs(t_stop), abs(t_start), 1e-12))
    bp_index = 0
    force_be = True  # first step after t0 behaves like after a breakpoint
    v_prev = v.copy()
    t_prev = t

    while t < t_stop - eps_t:
        while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + eps_t:
            bp_index += 1
        next_bp = breakpoints[bp_index] if bp_index < len(breakpoints) else t_stop
        h = min(h, options.dt_max, t_stop - t)
        hit_bp = False
        if t + h >= next_bp - eps_t:
            h = next_bp - t
            hit_bp = True
        if h < options.dt_min:
            raise ConvergenceError(
                f"step size underflow at t = {t:.3e} s in {circuit.netlist.name!r}"
            )

        t_new = t + h
        v_sources = circuit.source_voltages(t_new)
        # Predictor: linear extrapolation of the last two accepted points.
        if t > t_prev:
            slope = (v - v_prev) / (t - t_prev)
            v_pred = v + slope * h
        else:
            v_pred = v.copy()

        alpha = 1.0 if force_be else 0.5
        f_hist = None
        if not force_be:
            f_hist, _ = circuit.device_currents(v, with_jacobian=False)
        q_prev = circuit.C @ v

        v_new = _newton_step(
            circuit, v_pred, v_sources, q_prev, f_hist, h, alpha, options
        )
        if v_new is None:
            h *= 0.25
            force_be = True
            continue

        weight = options.reltol * np.maximum(np.abs(v_new[:n_free]), 1.0) + options.vabstol
        err = float(np.max(np.abs(v_new[:n_free] - v_pred[:n_free]) / weight)) if n_free else 0.0

        if err > options.lte_reject and not hit_bp and h > 4 * options.dt_min:
            h *= 0.4
            continue

        # Accept.
        v_prev, t_prev = v, t
        v, t = v_new, t_new
        times.append(t)
        states.append(v.copy())
        if current_nodes:
            f_now, _ = circuit.device_currents(v, with_jacobian=False)
            dq = (circuit.C @ v - q_prev) / h
            currents.append(f_now + dq)
        force_be = False
        if hit_bp:
            h = options.dt_start
            force_be = True
        else:
            grow = 0.9 * (1.0 / max(err, 1e-12)) ** (1.0 / 3.0)
            h *= float(np.clip(grow, 0.4, 2.0))

    time_array = np.asarray(times)
    state_array = np.asarray(states)
    voltages = {
        node: state_array[:, circuit.node_index[node]].copy() for node in record
    }
    source_currents: Dict[str, np.ndarray] = {}
    if current_nodes:
        current_array = np.asarray(currents)
        for node in current_nodes:
            source_currents[node] = current_array[:, circuit.node_index[node]].copy()
    return TransientResult(
        times=time_array, voltages=voltages, source_currents=source_currents
    )
