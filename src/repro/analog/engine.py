"""Adaptive transient integration with a failure-escalation ladder.

The nodal system is ``C dv/dt + i(v, t) = 0`` on the free nodes, with driven
nodes following their sources exactly.  Two one-step methods are used:

* **backward Euler** for the first step after every source breakpoint (it is
  L-stable, so it damps the artificial ringing a corner would excite in the
  trapezoidal rule);
* **trapezoidal** everywhere else (second order - what SPICE uses).

Step control is the classic predictor/corrector comparison: the accepted
solution is compared against a linear extrapolation of history; the
normalised difference drives growth/shrink of ``h`` and step rejection.

When a step refuses to converge the engine escalates through a
configurable ladder (:attr:`TransientOptions.escalation`) instead of dying
on the first symptom:

1. ``"step-halving"`` - shrink ``h`` by 4x down to ``dt_min``;
2. ``"damped-newton"`` - retry the floored step with a heavily damped
   update and an enlarged iteration budget;
3. ``"gmin-restart"`` - solve the floored step through a gmin homotopy
   anchored at the last *accepted* state, stepping the shunt down.

Every accepted step passes a NaN/Inf guard; when the ladder is exhausted
the engine raises :class:`~repro.errors.StepSizeUnderflowError` (or
:class:`~repro.errors.NonFiniteStateError` if the failure was numerical
blow-up) carrying full :class:`~repro.errors.SimulationDiagnostics`.  The
rungs that fired are tallied in :attr:`TransientResult.escalations`, which
the campaign telemetry aggregates.

The engine also records, at every accepted point, the current delivered by
every source node - the IDDQ probe used by the Sec. 3 testability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analog.compile import (
    DENSE_WARN_NODES,
    CompiledCircuit,
    note_dense_jacobian,
)
from repro.analog.dcop import dc_operating_point
from repro.analog.kernels import REUSE_SLOWDOWN, KernelStats, c_einsum, raw_inv
from repro.analog.waveform import Waveform
from repro.circuit.netlist import Netlist
from repro.errors import (  # noqa: F401  (ConvergenceError: historical import site)
    ConvergenceError,
    NonFiniteStateError,
    SimulationDiagnostics,
    StepSizeUnderflowError,
)

#: Rungs the transient escalation ladder knows, in escalation order.
ESCALATION_RUNGS = ("step-halving", "damped-newton", "gmin-restart")

#: Cap on floor-level rescues per run: a circuit that needs more than
#: this many ladder interventions is not integrating, it is crawling at
#: ``dt_min``; fail with diagnostics instead of hanging the campaign.
MAX_RESCUES = 50

#: Free-node count at which ``jacobian_policy="auto"`` switches from the
#: dense modified-Newton path to the CSR/SparseLU path.  Crossover sits
#: well below this in wall time, but the dense path is still tolerable
#: there; past ~256 nodes the O(n^3) refactorizations dominate runs.
SPARSE_AUTO_NODES = 256


def _resolve_jacobian_policy(
    circuit: CompiledCircuit, options: "TransientOptions"
) -> str:
    """Effective policy of a run: ``"auto"`` resolved by node count."""
    if options.jacobian_policy == "auto":
        return (
            "sparse" if circuit.n_free >= SPARSE_AUTO_NODES else "reuse"
        )
    return options.jacobian_policy


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient engine.

    Attributes
    ----------
    dt_max:
        Hard cap on the step size, seconds.
    dt_min:
        Floor below which the engine escalates instead of shrinking
        further, seconds.
    dt_start:
        Step used right after ``t0`` and after every breakpoint.
    reltol, vabstol:
        Local-error normalisation: the error weight per node is
        ``reltol * |v| + vabstol``.
    max_newton:
        Newton iteration cap per step; non-convergence rejects the step.
    vntol:
        Newton update convergence threshold, volts.
    lte_reject:
        Normalised local error above which a step is rejected outright.
    escalation:
        Enabled ladder rungs, applied in :data:`ESCALATION_RUNGS` order
        on a non-convergent step: ``"step-halving"`` shrinks ``h``
        toward ``dt_min``; the floor rungs retry the floored step.  An
        empty tuple disables *every* convergence rescue, so the first
        Newton failure raises immediately - stricter than the pre-ladder
        engine, which always halved down to ``dt_min`` before giving up;
        pass ``("step-halving",)`` for that historical behaviour.
    jacobian_policy:
        ``"reuse"`` (default) enables the modified-Newton factorization
        cache: a stale Jacobian inverse is reapplied while the update
        norm keeps contracting (refactoring on slowdown), and
        convergence is accepted on stale iterations too - the
        contraction guard bounds the distance to the full-Newton fixed
        point by a fraction of ``vntol``, far below the local-error
        tolerances.  ``"dense"`` factors on every iteration - the
        reference behaviour the golden-waveform tests compare against.
        Rescue rungs and the operating-point ladder always run dense.
        ``"sparse"`` routes the whole run - operating point, plain
        solves *and* rescue rungs - through the CSR/``SparseLU`` path of
        :mod:`repro.sparse` with the same modified-Newton reuse policy;
        ``"auto"`` picks ``"sparse"`` when the circuit has at least
        :data:`SPARSE_AUTO_NODES` free nodes and ``"reuse"`` otherwise.
    """

    dt_max: float = 100e-12
    dt_min: float = 1e-18
    dt_start: float = 1e-13
    reltol: float = 2e-3
    vabstol: float = 1e-4
    max_newton: int = 50
    vntol: float = 1e-7
    lte_reject: float = 4.0
    escalation: Tuple[str, ...] = ESCALATION_RUNGS
    jacobian_policy: str = "reuse"

    def __post_init__(self) -> None:
        if not 0 < self.dt_min <= self.dt_start <= self.dt_max:
            raise ValueError(
                "need 0 < dt_min <= dt_start <= dt_max "
                f"(got {self.dt_min}, {self.dt_start}, {self.dt_max})"
            )
        if self.reltol <= 0 or self.vabstol <= 0 or self.vntol <= 0:
            raise ValueError("tolerances must be positive")
        if self.max_newton < 2:
            raise ValueError("max_newton must be at least 2")
        if self.lte_reject <= 1.0:
            raise ValueError("lte_reject must exceed 1")
        unknown = [r for r in self.escalation if r not in ESCALATION_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown escalation rungs {unknown} (use {ESCALATION_RUNGS})"
            )
        if self.jacobian_policy not in ("reuse", "dense", "sparse", "auto"):
            raise ValueError(
                f"unknown jacobian_policy {self.jacobian_policy!r} "
                "(use 'reuse', 'dense', 'sparse' or 'auto')"
            )


@dataclass
class TransientCheckpoint:
    """Pure solver state of a transient at one accepted grid point.

    Captures exactly what the integration loop needs to continue from an
    accepted point ``t``: the full state vector there, plus the previous
    accepted point ``(t_prev, state_prev)`` that feeds the linear
    predictor.  Restarting from a checkpoint uses the engine's
    backward-Euler-after-breakpoint rule (``h = dt_start``, BE first
    step), so a resumed run walks the same grid a cold run would walk
    after a breakpoint at ``t`` - that is what makes a forked suffix a
    legal grid continuation (see ``tests/test_prefix_warm.py``).

    The record is RNG-free and engine-version-agnostic by construction;
    ``nodes`` (the node names in compiled order) is the legality guard a
    resume checks against the circuit it is applied to.  Instances
    pickle directly and round-trip bit-exactly through JSON via
    :meth:`to_payload` / :meth:`from_payload` (``json`` renders floats
    with ``repr``, which is exact).
    """

    t: float
    t_prev: float
    state: np.ndarray
    state_prev: np.ndarray
    nodes: Tuple[str, ...]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form (floats survive bit-exactly)."""
        return {
            "t": self.t,
            "t_prev": self.t_prev,
            "state": [float(x) for x in self.state],
            "state_prev": [float(x) for x in self.state_prev],
            "nodes": list(self.nodes),
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "TransientCheckpoint":
        """Rebuild a checkpoint from its :meth:`to_payload` dict."""
        return TransientCheckpoint(
            t=float(payload["t"]),
            t_prev=float(payload["t_prev"]),
            state=np.asarray(payload["state"], dtype=float),
            state_prev=np.asarray(payload["state_prev"], dtype=float),
            nodes=tuple(str(n) for n in payload["nodes"]),
        )


def _node_order(circuit: CompiledCircuit) -> Tuple[str, ...]:
    """Node names of ``circuit`` in state-vector order."""
    return tuple(sorted(circuit.node_index, key=circuit.node_index.get))


@dataclass
class TransientResult:
    """Waveforms of a transient run.

    ``escalations`` tallies solver-ladder events that fired during the
    run: per-rung counts (``"step-halving"``, ``"damped-newton"``,
    ``"gmin-restart"``) plus which DC operating-point rung succeeded
    (``"dcop:direct"`` / ``"dcop:gmin"`` / ``"dcop:source-stepping"``).
    An empty dict beyond the ``dcop:*`` entry means the integration never
    needed rescuing.

    ``kernel_stats`` is the hot-loop observability record of the run
    (:meth:`repro.analog.kernels.KernelStats.as_dict`): per-phase wall
    times and the modified-Newton ``jacobian_reuses`` /
    ``refactorizations`` tallies the campaign telemetry aggregates.
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray] = field(default_factory=dict)
    escalations: Dict[str, int] = field(default_factory=dict)
    kernel_stats: Dict[str, float] = field(default_factory=dict)
    #: Solver state captured at ``checkpoint_at`` (None unless requested).
    checkpoint: Optional[TransientCheckpoint] = None

    def wave(self, node: str) -> Waveform:
        """Voltage waveform of ``node``."""
        if node not in self.voltages:
            raise KeyError(f"node {node!r} was not recorded")
        return Waveform(times=self.times, values=self.voltages[node], name=node)

    def source_current(self, node: str) -> Waveform:
        """Current delivered *by* the source driving ``node`` (amperes).

        Positive values mean the source pushes current into the circuit.
        This is the IDDQ observable when applied to the VDD node in a
        quiescent interval.
        """
        if node not in self.source_currents:
            raise KeyError(f"source current for {node!r} was not recorded")
        return Waveform(
            times=self.times, values=self.source_currents[node], name=f"i({node})"
        )

    def delivered_charge(
        self, node: str, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> float:
        """Charge the source on ``node`` delivered over ``[t0, t1]``,
        coulombs (trapezoidal integral of the recorded current)."""
        wave = self.source_current(node)
        t0 = wave.t_start if t0 is None else t0
        t1 = wave.t_stop if t1 is None else t1
        window = wave.slice(t0, t1)
        return float(np.trapezoid(window.values, window.times))

    def delivered_energy(
        self,
        node: str,
        supply_voltage: float,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> float:
        """Energy drawn from a DC supply on ``node`` over ``[t0, t1]``,
        joules (``V * integral of i dt``; valid for constant-voltage
        rails, which is what VDD is here)."""
        return supply_voltage * self.delivered_charge(node, t0, t1)

    def __len__(self) -> int:
        return len(self.times)


class _NewtonWork:
    """Per-run scratch of the Newton loop.

    Owns the reusable iterate/residual/Jacobian buffers (the hot loop
    allocates nothing per iteration beyond what LAPACK returns), the
    cached Jacobian inverse of the modified-Newton policy - keyed on the
    ``(h, alpha)`` system scaling and persisting *across* time steps, so
    ``dt_max``-clamped stretches reuse one factorization for many steps -
    and the :class:`~repro.analog.kernels.KernelStats` counters.
    """

    #: Dispatch flag ``_newton_step`` checks; the sparse twin sets True.
    sparse = False

    def __init__(self, circuit: CompiledCircuit, options: TransientOptions) -> None:
        n, nf = circuit.n_total, circuit.n_free
        self.kernel = circuit.kernel()
        self.stats = KernelStats()
        # Only an explicit "dense" disables the factorization cache
        # ("auto" resolved to the dense family means "reuse").
        self.modified = options.jacobian_policy != "dense"
        self.v = np.empty(n)
        self.qh = np.empty(nf)        # (C_rows / h) @ v scratch
        self.rhs0 = np.empty(nf)      # iteration-invariant residual part
        self.residual = np.empty(nf)  # holds the *negated* residual
        self.delta = np.empty(nf)
        self.tmp = np.empty(nf)
        self.abs_buf = np.empty(nf)
        self.jac = np.empty((nf, nf))
        self.j_inv = np.empty((nf, nf))
        self.c_rows = circuit.C[:nf, :]
        self.c_over_h = np.empty((nf, n))
        self.h_scaled: Optional[float] = None
        self.valid = False
        self.key: Optional[Tuple[float, float]] = None
        self.info: Dict[str, object] = {
            "iterations": 0, "worst_index": None,
            "worst_residual": None, "nonfinite": False,
        }

    def scaled_c(self, h: float) -> np.ndarray:
        """``C[:n_free, :] / h``, recomputed only when ``h`` changes.

        The free-free block (columns ``:n_free``) feeds the Jacobian;
        the full rows turn the per-iteration charge term into a single
        matvec against the current iterate.
        """
        if self.h_scaled != h:
            np.multiply(self.c_rows, 1.0 / h, out=self.c_over_h)
            self.h_scaled = h
        return self.c_over_h

    def note_worst(self, n_free: int, iterations: int) -> Dict[str, object]:
        """Record the worst-residual observation of the last iterate
        (deferred to return time: the argmax is failure diagnostics, not
        hot-loop work)."""
        self.info["iterations"] = iterations
        if n_free and iterations:
            worst = int(np.argmax(np.abs(self.residual)))
            self.info["worst_index"] = worst
            self.info["worst_residual"] = float(abs(self.residual[worst]))
        return self.info


def _newton_step(
    circuit: CompiledCircuit,
    v_guess: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    f_prev: Optional[np.ndarray],
    h: float,
    alpha: float,
    options: TransientOptions,
    damping: float = 1.0,
    max_iter: Optional[int] = None,
    shunt: float = 0.0,
    shunt_target: Optional[np.ndarray] = None,
    work: Optional[_NewtonWork] = None,
) -> Tuple[Optional[np.ndarray], Dict[str, object]]:
    """Solve one implicit step; ``alpha = 1`` is BE, ``0.5`` trapezoidal.

    Residual on free nodes:
    ``(q(v) - q_prev) / h + alpha * f(v) + (1 - alpha) * f_prev
    + shunt * (v - shunt_target) = 0``.

    ``damping`` caps the per-iteration update magnitude (1.0 is the
    normal clip; the ladder's damped rung passes 0.1), and a non-zero
    ``shunt`` adds the gmin-restart homotopy term.  Returns
    ``(solution, info)`` where ``info`` carries the iteration count, the
    worst-residual observation and a ``nonfinite`` flag - the raw
    material of failure diagnostics.

    Modified-Newton policy (``options.jacobian_policy == "reuse"``, only
    in plain solves - the rescue rungs always run dense): while a cached
    inverse for the same ``(h, alpha)`` scaling exists, each iteration
    first reapplies it; the stale update is kept when its norm contracted
    to at most :data:`~repro.analog.kernels.REUSE_SLOWDOWN` times the
    previous update, otherwise the Jacobian is refactored on the spot.
    Convergence (``step < vntol``) is accepted on stale iterations too:
    the contraction guard bounds the distance to the full-Newton fixed
    point by ``REUSE_SLOWDOWN * vntol`` - far inside the local-error
    tolerances, so waveforms stay within solver noise of the dense path
    (the golden-waveform tests pin this at the microvolt level).
    """
    n_free = circuit.n_free
    if work is None:
        if _resolve_jacobian_policy(circuit, options) == "sparse":
            from repro.sparse.newton import SparseNewtonWork

            work = SparseNewtonWork(circuit, options)
        else:
            work = _NewtonWork(circuit, options)
    if work.sparse:
        # The sparse work object implements the whole solve (same
        # policy, CSR/SparseLU linear algebra); rescue rungs arrive
        # here too and therefore run sparse as well.
        return work.newton_step(
            circuit, v_guess, v_sources, q_prev, f_prev, h, alpha,
            options, damping=damping, max_iter=max_iter,
            shunt=shunt, shunt_target=shunt_target,
        )
    kernel, stats = work.kernel, work.stats
    v = work.v
    np.copyto(v, v_guess)
    v[n_free:] = v_sources[n_free:]
    iters = max_iter if max_iter is not None else options.max_newton
    info = work.info
    info["iterations"] = 0
    info["worst_index"] = None
    info["worst_residual"] = None
    info["nonfinite"] = False

    modified = work.modified and damping == 1.0 and shunt == 0.0
    if not (modified and work.valid and work.key == (h, alpha)):
        work.valid = False  # never reuse across a system-scaling change
    anchor = None
    if shunt:
        anchor = shunt_target if shunt_target is not None else v_guess
    neg_res, delta, tmp = work.residual, work.delta, work.tmp
    abs_buf, qh, j_inv = work.abs_buf, work.qh, work.j_inv
    max_reduce = np.maximum.reduce  # skips the ndarray.max wrapper chain
    is_be = alpha == 1.0
    c_over_h = work.scaled_c(h)
    # Iteration-invariant part of the negated residual:
    # ``q_prev / h - (1 - alpha) * f_prev``.
    rhs0 = work.rhs0
    np.multiply(q_prev[:n_free], 1.0 / h, out=rhs0)
    if f_prev is not None:
        np.multiply(f_prev[:n_free], 1.0 - alpha, out=tmp)
        rhs0 -= tmp
    step_prev = np.inf
    step = 0.0
    vntol = options.vntol
    slowdown = REUSE_SLOWDOWN
    # Quadratic/linear contraction makes the *next* update predictable
    # from the last two; accepting on the prediction saves the final
    # confirming iteration.  Only valid for undamped solves (a clipped
    # update breaks the contraction estimate).
    can_predict = damping == 1.0
    # Hot-loop counters accumulate in locals; flushed in ``finally``.
    n_iters = n_assembles = n_factor = n_refactor = n_reuse = 0
    assemble_acc = factor_acc = solve_acc = 0.0

    try:
        for iteration in range(iters):
            try_stale = modified and work.valid
            t0 = perf_counter()
            f, j = kernel.eval(v, with_jacobian=not try_stale)
            n_iters += 1
            n_assembles += 1
            # Negated residual: rhs0 - (C/h) @ v - alpha * f(v).
            c_einsum("ij,j->i", c_over_h, v, out=qh)
            np.subtract(rhs0, qh, out=neg_res)
            if is_be:
                neg_res -= f[:n_free]
            else:
                np.multiply(f[:n_free], alpha, out=tmp)
                neg_res -= tmp
            if shunt:
                np.subtract(v[:n_free], anchor[:n_free], out=tmp)
                tmp *= shunt
                neg_res -= tmp
            assemble_acc += perf_counter() - t0

            fresh = not try_stale
            if try_stale:
                t0 = perf_counter()
                c_einsum("ij,j->i", j_inv, neg_res, out=delta)
                np.abs(delta, out=abs_buf)
                step = max_reduce(abs_buf) if n_free else 0.0
                solve_acc += perf_counter() - t0
                # NaN fails the comparison too, triggering a refactor.
                if step <= slowdown * step_prev:
                    n_reuse += 1
                else:
                    t0 = perf_counter()
                    f, j = kernel.eval(v, with_jacobian=True)
                    n_assembles += 1
                    assemble_acc += perf_counter() - t0
                    n_refactor += 1
                    fresh = True

            if fresh:
                t0 = perf_counter()
                jac = work.jac
                np.multiply(j[:n_free, :n_free], alpha, out=jac)
                jac += c_over_h[:, :n_free]
                if shunt:
                    jac.reshape(-1)[:: n_free + 1] += shunt
                # Singular jac -> NaN inverse (see kernels.raw_inv); the
                # non-finite step guard below turns it into a rejection.
                raw_inv(jac, out=j_inv)
                n_factor += 1
                work.valid = modified
                work.key = (h, alpha)
                factor_acc += perf_counter() - t0
                t0 = perf_counter()
                c_einsum("ij,j->i", j_inv, neg_res, out=delta)
                np.abs(delta, out=abs_buf)
                step = max_reduce(abs_buf) if n_free else 0.0
                solve_acc += perf_counter() - t0

            if not step < np.inf:  # catches NaN and +inf in one comparison
                info["nonfinite"] = True
                work.valid = False
                return None, work.note_worst(n_free, n_iters)
            if step > damping:
                delta *= damping / step
            v[:n_free] += delta
            if step < vntol:
                return v.copy(), info
            # Predicted acceptance: with contraction ratio step/step_prev,
            # the next update would be ~ step^2/step_prev; if that is
            # already below vntol the iterate is within ~vntol of the
            # Newton fixed point - same error contract as the plain test,
            # one whole evaluate/solve round cheaper.  (iteration > 0
            # guards the step_prev = inf bootstrap.)
            if can_predict and iteration and step * step < vntol * step_prev:
                return v.copy(), info
            step_prev = step
        return None, work.note_worst(n_free, n_iters)
    finally:
        info["iterations"] = n_iters
        stats.newton_iterations += n_iters
        stats.assembles += n_assembles
        stats.factorizations += n_factor
        stats.refactorizations += n_refactor
        stats.jacobian_reuses += n_reuse
        stats.assemble_s += assemble_acc
        stats.factor_s += factor_acc
        stats.solve_s += solve_acc


def _rescue_step(
    circuit: CompiledCircuit,
    v_accepted: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    h: float,
    options: TransientOptions,
    work: Optional[_NewtonWork] = None,
) -> Tuple[Optional[np.ndarray], Dict[str, object], Optional[str]]:
    """Escalation rungs beyond step-halving, tried at the step floor.

    Both rungs restart from the last *accepted* state (not the failed
    predictor) and use backward Euler (L-stable), per the ladder design:

    * ``damped-newton`` - update magnitude capped at 0.1 V with a 4x
      iteration budget;
    * ``gmin-restart`` - a shunt homotopy anchored at the accepted state,
      stepped from 1e-1 S down to 1e-12 S, then a clean confirming solve.

    Returns ``(solution, info, rung)`` - the rung that succeeded, or the
    info of the deepest failure for diagnostics.
    """
    info: Dict[str, object] = {}
    if "damped-newton" in options.escalation:
        solution, info = _newton_step(
            circuit, v_accepted.copy(), v_sources, q_prev, None, h, 1.0,
            options, damping=0.1, max_iter=4 * options.max_newton, work=work,
        )
        if solution is not None:
            return solution, info, "damped-newton"
    if "gmin-restart" in options.escalation:
        guess = v_accepted.copy()
        failed = False
        for exponent in (1, 3, 6, 9, 12):
            shunt = 10.0 ** (-exponent)
            attempt, info = _newton_step(
                circuit, guess, v_sources, q_prev, None, h, 1.0,
                options, max_iter=4 * options.max_newton,
                shunt=shunt, shunt_target=v_accepted, work=work,
            )
            if attempt is None:
                failed = True
                break
            guess = attempt
        if not failed:
            solution, info = _newton_step(
                circuit, guess, v_sources, q_prev, None, h, 1.0,
                options, max_iter=4 * options.max_newton, work=work,
            )
            if solution is not None:
                return solution, info, "gmin-restart"
    return None, info, None


def transient(
    netlist: Netlist,
    t_stop: float,
    t_start: float = 0.0,
    record: Optional[Iterable[str]] = None,
    record_currents: Optional[Iterable[str]] = None,
    initial: Optional[Dict[str, float]] = None,
    options: Optional[TransientOptions] = None,
    compiled: Optional[CompiledCircuit] = None,
    resume_from: Optional[TransientCheckpoint] = None,
    checkpoint_at: Optional[float] = None,
) -> TransientResult:
    """Integrate ``netlist`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    netlist:
        Circuit to simulate (ignored when ``compiled`` is given).
    record:
        Node names whose voltages to keep; defaults to every node.
    record_currents:
        Driven nodes whose delivered source current to keep.
    initial:
        Initial-guess voltages per node, passed to the operating-point
        solve (useful to select a state of a bistable circuit).
    options:
        Engine knobs; see :class:`TransientOptions`.
    compiled:
        Reuse an already compiled circuit (Monte Carlo sweeps re-simulate
        the same topology with different stimuli).
    resume_from:
        Warm-start the run from a :class:`TransientCheckpoint` instead of
        solving the operating point: ``t_start`` is taken from the
        checkpoint and the first step uses the backward-Euler-after-
        breakpoint rule, so the resumed grid is bit-identical to the tail
        of a cold run that had a breakpoint at the checkpoint time.  The
        checkpoint's node order must match the circuit.  Note the first
        recorded source-current sample of a resumed run is static-only
        (the charge history before the checkpoint is not carried).
    checkpoint_at:
        Capture solver state at this time (inserted as a breakpoint so
        the grid lands on it exactly); the snapshot is returned as
        ``result.checkpoint``.  Must satisfy ``t_start < checkpoint_at
        <= t_stop``.

    Raises
    ------
    StepSizeUnderflowError
        A step refused to converge with the whole escalation ladder
        exhausted; diagnostics carry the circuit name, simulated time,
        Newton iteration, worst-residual node and last accepted state.
    NonFiniteStateError
        The failure was a NaN/Inf in the iterate rather than plain
        non-convergence.
    """
    options = options or TransientOptions()
    circuit = compiled or CompiledCircuit.compile(netlist)
    n_free = circuit.n_free

    record = list(record) if record is not None else sorted(circuit.node_index)
    for node in record:
        if node not in circuit.node_index:
            raise KeyError(f"cannot record unknown node {node!r}")
    current_nodes = list(record_currents or [])
    for node in current_nodes:
        if node not in circuit.netlist.sources:
            raise KeyError(f"cannot record source current of undriven node {node!r}")

    if resume_from is not None:
        order = _node_order(circuit)
        if resume_from.nodes != order:
            raise ValueError(
                "checkpoint node order does not match circuit "
                f"(checkpoint {resume_from.nodes}, circuit {order})"
            )
        t_start = resume_from.t
    if t_stop <= t_start:
        raise ValueError(f"need t_stop > t_start (got {t_start} .. {t_stop})")
    if checkpoint_at is not None and not t_start < checkpoint_at <= t_stop:
        raise ValueError(
            f"checkpoint_at must lie in (t_start, t_stop] "
            f"(got {checkpoint_at} for {t_start} .. {t_stop})"
        )

    breakpoints = [b for b in circuit.breakpoints(t_start, t_stop) if b > t_start]
    breakpoints.append(t_stop)
    if checkpoint_at is not None:
        breakpoints.append(checkpoint_at)
    breakpoints = sorted(set(breakpoints))

    escalations: Dict[str, int] = {}
    policy = _resolve_jacobian_policy(circuit, options)
    if policy == "sparse":
        from repro.sparse.newton import SparseNewtonWork

        work = SparseNewtonWork(circuit, options)
    else:
        work = _NewtonWork(circuit, options)
        if n_free > DENSE_WARN_NODES:
            # A dense-family policy at this size allocates O(n^2)
            # Jacobian buffers and refactors at O(n^3); warn loudly
            # (once) and leave a trail in the escalation tallies.
            note_dense_jacobian(n_free, policy)
            escalations["dense-jacobian-large-n"] = 1
    if resume_from is not None:
        v = resume_from.state.copy()
    else:
        dcop_stats: Dict[str, object] = {}
        v = dc_operating_point(
            circuit, t=t_start, initial=initial, stats=dcop_stats,
            solver=work.static_solver() if work.sparse else None,
        )
        if "dcop_rung" in dcop_stats:
            escalations[f"dcop:{dcop_stats['dcop_rung']}"] = 1

    def _fail(kind: type, reason: str, h: float, step_info: Dict[str, object],
              rung: Optional[str]) -> None:
        worst_index = step_info.get("worst_index")
        worst_name = None
        if worst_index is not None:
            for name, i in circuit.node_index.items():
                if i == worst_index:
                    worst_name = name
                    break
        diagnostics = SimulationDiagnostics(
            circuit=circuit.netlist.name,
            sim_time=t,
            newton_iteration=step_info.get("iterations"),
            ladder_rung=rung,
            worst_residual_node=worst_name,
            worst_residual=step_info.get("worst_residual"),
            extra={"h": h, "reason": reason},
        )
        diagnostics.capture_state(circuit.node_index, v)
        raise kind(
            f"{reason} at t = {t:.3e} s in {circuit.netlist.name!r}",
            diagnostics=diagnostics,
        )

    kernel, stats = work.kernel, work.stats

    times: List[float] = [t_start]
    states: List[np.ndarray] = [v.copy()]
    currents: List[np.ndarray] = []
    if current_nodes:
        f_now, _ = kernel.eval(v, with_jacobian=False, stats=stats)
        currents.append(f_now.copy())

    t = t_start
    h = options.dt_start
    # Time comparison tolerance: a few ULPs at the horizon's magnitude.
    eps_t = 64.0 * np.spacing(max(abs(t_stop), abs(t_start), 1e-12))
    bp_index = 0
    force_be = True  # first step after t0 behaves like after a breakpoint
    if resume_from is not None:
        # Restore the predictor history; h/force_be above already match
        # the post-breakpoint restart of a cold run, so from here on the
        # loop walks the exact grid the cold run would have walked.
        v_prev = resume_from.state_prev.copy()
        t_prev = resume_from.t_prev
    else:
        v_prev = v.copy()
        t_prev = t
    checkpoint: Optional[TransientCheckpoint] = None

    # Reusable step buffers: sources, predictor, charge history and the
    # LTE weight/error scratch - the outer loop allocates only the
    # accepted states it records.
    n_total = circuit.n_total
    v_sources = np.zeros(n_total)
    circuit.source_voltages_into(t_start, v_sources)  # constants written once
    v_pred = np.empty(n_total)
    q_prev = np.empty(n_total)
    q_now = np.empty(n_total) if (current_nodes and work.sparse) else None
    weight = np.empty(n_free)
    err_buf = np.empty(n_free)

    while t < t_stop - eps_t:
        while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + eps_t:
            bp_index += 1
        next_bp = breakpoints[bp_index] if bp_index < len(breakpoints) else t_stop
        h = min(h, options.dt_max, t_stop - t)
        hit_bp = False
        if t + h >= next_bp - eps_t:
            h = next_bp - t
            hit_bp = True
        if h < options.dt_min:
            _fail(StepSizeUnderflowError, "step size underflow", h, {}, None)

        t_new = t + h
        circuit.source_voltages_into(t_new, v_sources, dynamic_only=True)
        # Predictor: linear extrapolation of the last two accepted points
        # (same rounding order as the original ``v + slope * h``).
        if t > t_prev:
            np.subtract(v, v_prev, out=v_pred)
            v_pred /= t - t_prev
            v_pred *= h
            v_pred += v
        else:
            np.copyto(v_pred, v)

        alpha = 1.0 if force_be else 0.5
        f_hist = None
        if not force_be:
            f_hist, _ = kernel.eval(v, with_jacobian=False, stats=stats)
        if work.sparse:
            work.charge_into(v, q_prev)
        else:
            # c_einsum matches the batch engine's ``bij,bj->bi`` bits
            # exactly (matmul's BLAS accumulation would not) - see
            # kernels.ScalarKernel.
            c_einsum("ij,j->i", circuit.C, v, out=q_prev)

        rescued = False
        v_new, step_info = _newton_step(
            circuit, v_pred, v_sources, q_prev, f_hist, h, alpha, options,
            work=work,
        )
        if v_new is not None and not np.isfinite(v_new).all():
            step_info["nonfinite"] = True
            v_new = None
        if v_new is None:
            # Rung 1: step-halving down to the floor.
            if h * 0.25 >= options.dt_min and "step-halving" in options.escalation:
                escalations["step-halving"] = escalations.get("step-halving", 0) + 1
                h *= 0.25
                force_be = True
                continue
            # Floor reached: damped Newton, then gmin-restart, from the
            # last accepted state.
            nonfinite = bool(step_info.get("nonfinite"))
            rescues_used = sum(
                count for name, count in escalations.items()
                if name in ("damped-newton", "gmin-restart")
            )
            if rescues_used >= MAX_RESCUES:
                _fail(
                    StepSizeUnderflowError,
                    f"escalation budget exhausted ({MAX_RESCUES} rescues)",
                    h, step_info, options.escalation[-1] if options.escalation else None,
                )
            v_new, rescue_info, rung = _rescue_step(
                circuit, v, v_sources, q_prev, h, options, work=work
            )
            if v_new is not None and not np.isfinite(v_new).all():
                rescue_info["nonfinite"] = True
                v_new = None
            if v_new is None:
                nonfinite = nonfinite or bool(rescue_info.get("nonfinite"))
                last_rung = (
                    options.escalation[-1] if options.escalation else None
                )
                _fail(
                    NonFiniteStateError if nonfinite else StepSizeUnderflowError,
                    "non-finite state" if nonfinite else "step size underflow",
                    h,
                    rescue_info or step_info,
                    last_rung,
                )
            escalations[rung] = escalations.get(rung, 0) + 1
            rescued = True

        t_accept = perf_counter()
        # LTE, computed into the reused weight/error buffers (rounding
        # order matches the original expression exactly).
        if n_free:
            np.abs(v_new[:n_free], out=weight)
            np.maximum(weight, 1.0, out=weight)
            weight *= options.reltol
            weight += options.vabstol
            np.subtract(v_new[:n_free], v_pred[:n_free], out=err_buf)
            np.abs(err_buf, out=err_buf)
            err_buf /= weight
            err = np.maximum.reduce(err_buf)
        else:
            err = 0.0

        if (
            not rescued
            and err > options.lte_reject
            and not hit_bp
            and h > 4 * options.dt_min
        ):
            h *= 0.4
            stats.accept_s += perf_counter() - t_accept
            continue

        # Finiteness was already guarded right after the solve above.
        v_prev, t_prev = v, t
        v, t = v_new, t_new
        times.append(t)
        states.append(v)  # _newton_step returned a fresh copy
        if (
            checkpoint_at is not None
            and checkpoint is None
            and abs(t - checkpoint_at) <= eps_t
        ):
            checkpoint = TransientCheckpoint(
                t=t, t_prev=t_prev, state=v.copy(), state_prev=v_prev.copy(),
                nodes=_node_order(circuit),
            )
        if current_nodes:
            f_now, _ = kernel.eval(v, with_jacobian=False, stats=stats)
            if work.sparse:
                dq = (work.charge_into(v, q_now) - q_prev) / h
            else:
                dq = (circuit.C @ v - q_prev) / h
            currents.append(f_now + dq)
        force_be = False
        if hit_bp or rescued:
            h = options.dt_start
            force_be = True
        else:
            grow = 0.9 * (1.0 / max(err, 1e-12)) ** (1.0 / 3.0)
            h *= float(min(max(grow, 0.4), 2.0))
        stats.accept_s += perf_counter() - t_accept

    if checkpoint_at is not None and checkpoint is None:
        raise RuntimeError(
            f"transient never landed on checkpoint_at = {checkpoint_at!r} "
            "(breakpoint insertion failed - this is a bug)"
        )

    time_array = np.asarray(times)
    state_array = np.asarray(states)
    voltages = {
        node: state_array[:, circuit.node_index[node]].copy() for node in record
    }
    source_currents: Dict[str, np.ndarray] = {}
    if current_nodes:
        current_array = np.asarray(currents)
        for node in current_nodes:
            source_currents[node] = current_array[:, circuit.node_index[node]].copy()
    return TransientResult(
        times=time_array, voltages=voltages, source_currents=source_currents,
        escalations=escalations, kernel_stats=stats.as_dict(),
        checkpoint=checkpoint,
    )
