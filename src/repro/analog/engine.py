"""Adaptive transient integration with a failure-escalation ladder.

The nodal system is ``C dv/dt + i(v, t) = 0`` on the free nodes, with driven
nodes following their sources exactly.  Two one-step methods are used:

* **backward Euler** for the first step after every source breakpoint (it is
  L-stable, so it damps the artificial ringing a corner would excite in the
  trapezoidal rule);
* **trapezoidal** everywhere else (second order - what SPICE uses).

Step control is the classic predictor/corrector comparison: the accepted
solution is compared against a linear extrapolation of history; the
normalised difference drives growth/shrink of ``h`` and step rejection.

When a step refuses to converge the engine escalates through a
configurable ladder (:attr:`TransientOptions.escalation`) instead of dying
on the first symptom:

1. ``"step-halving"`` - shrink ``h`` by 4x down to ``dt_min``;
2. ``"damped-newton"`` - retry the floored step with a heavily damped
   update and an enlarged iteration budget;
3. ``"gmin-restart"`` - solve the floored step through a gmin homotopy
   anchored at the last *accepted* state, stepping the shunt down.

Every accepted step passes a NaN/Inf guard; when the ladder is exhausted
the engine raises :class:`~repro.errors.StepSizeUnderflowError` (or
:class:`~repro.errors.NonFiniteStateError` if the failure was numerical
blow-up) carrying full :class:`~repro.errors.SimulationDiagnostics`.  The
rungs that fired are tallied in :attr:`TransientResult.escalations`, which
the campaign telemetry aggregates.

The engine also records, at every accepted point, the current delivered by
every source node - the IDDQ probe used by the Sec. 3 testability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import dc_operating_point
from repro.analog.waveform import Waveform
from repro.circuit.netlist import Netlist
from repro.errors import (  # noqa: F401  (ConvergenceError: historical import site)
    ConvergenceError,
    NonFiniteStateError,
    SimulationDiagnostics,
    StepSizeUnderflowError,
)

#: Rungs the transient escalation ladder knows, in escalation order.
ESCALATION_RUNGS = ("step-halving", "damped-newton", "gmin-restart")

#: Cap on floor-level rescues per run: a circuit that needs more than
#: this many ladder interventions is not integrating, it is crawling at
#: ``dt_min``; fail with diagnostics instead of hanging the campaign.
MAX_RESCUES = 50


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient engine.

    Attributes
    ----------
    dt_max:
        Hard cap on the step size, seconds.
    dt_min:
        Floor below which the engine escalates instead of shrinking
        further, seconds.
    dt_start:
        Step used right after ``t0`` and after every breakpoint.
    reltol, vabstol:
        Local-error normalisation: the error weight per node is
        ``reltol * |v| + vabstol``.
    max_newton:
        Newton iteration cap per step; non-convergence rejects the step.
    vntol:
        Newton update convergence threshold, volts.
    lte_reject:
        Normalised local error above which a step is rejected outright.
    escalation:
        Enabled ladder rungs, applied in :data:`ESCALATION_RUNGS` order
        on a non-convergent step: ``"step-halving"`` shrinks ``h``
        toward ``dt_min``; the floor rungs retry the floored step.  An
        empty tuple disables *every* convergence rescue, so the first
        Newton failure raises immediately - stricter than the pre-ladder
        engine, which always halved down to ``dt_min`` before giving up;
        pass ``("step-halving",)`` for that historical behaviour.
    """

    dt_max: float = 100e-12
    dt_min: float = 1e-18
    dt_start: float = 1e-13
    reltol: float = 2e-3
    vabstol: float = 1e-4
    max_newton: int = 50
    vntol: float = 1e-7
    lte_reject: float = 4.0
    escalation: Tuple[str, ...] = ESCALATION_RUNGS

    def __post_init__(self) -> None:
        if not 0 < self.dt_min <= self.dt_start <= self.dt_max:
            raise ValueError(
                "need 0 < dt_min <= dt_start <= dt_max "
                f"(got {self.dt_min}, {self.dt_start}, {self.dt_max})"
            )
        if self.reltol <= 0 or self.vabstol <= 0 or self.vntol <= 0:
            raise ValueError("tolerances must be positive")
        if self.max_newton < 2:
            raise ValueError("max_newton must be at least 2")
        if self.lte_reject <= 1.0:
            raise ValueError("lte_reject must exceed 1")
        unknown = [r for r in self.escalation if r not in ESCALATION_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown escalation rungs {unknown} (use {ESCALATION_RUNGS})"
            )


@dataclass
class TransientResult:
    """Waveforms of a transient run.

    ``escalations`` tallies solver-ladder events that fired during the
    run: per-rung counts (``"step-halving"``, ``"damped-newton"``,
    ``"gmin-restart"``) plus which DC operating-point rung succeeded
    (``"dcop:direct"`` / ``"dcop:gmin"`` / ``"dcop:source-stepping"``).
    An empty dict beyond the ``dcop:*`` entry means the integration never
    needed rescuing.
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray] = field(default_factory=dict)
    escalations: Dict[str, int] = field(default_factory=dict)

    def wave(self, node: str) -> Waveform:
        """Voltage waveform of ``node``."""
        if node not in self.voltages:
            raise KeyError(f"node {node!r} was not recorded")
        return Waveform(times=self.times, values=self.voltages[node], name=node)

    def source_current(self, node: str) -> Waveform:
        """Current delivered *by* the source driving ``node`` (amperes).

        Positive values mean the source pushes current into the circuit.
        This is the IDDQ observable when applied to the VDD node in a
        quiescent interval.
        """
        if node not in self.source_currents:
            raise KeyError(f"source current for {node!r} was not recorded")
        return Waveform(
            times=self.times, values=self.source_currents[node], name=f"i({node})"
        )

    def delivered_charge(
        self, node: str, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> float:
        """Charge the source on ``node`` delivered over ``[t0, t1]``,
        coulombs (trapezoidal integral of the recorded current)."""
        wave = self.source_current(node)
        t0 = wave.t_start if t0 is None else t0
        t1 = wave.t_stop if t1 is None else t1
        window = wave.slice(t0, t1)
        return float(np.trapezoid(window.values, window.times))

    def delivered_energy(
        self,
        node: str,
        supply_voltage: float,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> float:
        """Energy drawn from a DC supply on ``node`` over ``[t0, t1]``,
        joules (``V * integral of i dt``; valid for constant-voltage
        rails, which is what VDD is here)."""
        return supply_voltage * self.delivered_charge(node, t0, t1)

    def __len__(self) -> int:
        return len(self.times)


def _newton_step(
    circuit: CompiledCircuit,
    v_guess: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    f_prev: Optional[np.ndarray],
    h: float,
    alpha: float,
    options: TransientOptions,
    damping: float = 1.0,
    max_iter: Optional[int] = None,
    shunt: float = 0.0,
    shunt_target: Optional[np.ndarray] = None,
) -> Tuple[Optional[np.ndarray], Dict[str, object]]:
    """Solve one implicit step; ``alpha = 1`` is BE, ``0.5`` trapezoidal.

    Residual on free nodes:
    ``(q(v) - q_prev) / h + alpha * f(v) + (1 - alpha) * f_prev
    + shunt * (v - shunt_target) = 0``.

    ``damping`` caps the per-iteration update magnitude (1.0 is the
    normal clip; the ladder's damped rung passes 0.1), and a non-zero
    ``shunt`` adds the gmin-restart homotopy term.  Returns
    ``(solution, info)`` where ``info`` carries the iteration count, the
    worst-residual observation and a ``nonfinite`` flag - the raw
    material of failure diagnostics.
    """
    n_free = circuit.n_free
    v = v_guess.copy()
    v[n_free:] = v_sources[n_free:]
    c_ff = circuit.C[:n_free, :]
    history = (1.0 - alpha) * f_prev[:n_free] if f_prev is not None else 0.0
    iters = max_iter if max_iter is not None else options.max_newton
    info: Dict[str, object] = {"iterations": 0, "worst_index": None,
                               "worst_residual": None, "nonfinite": False}

    for iteration in range(iters):
        info["iterations"] = iteration + 1
        f, j = circuit.device_currents(v, with_jacobian=True)
        q = circuit.C @ v
        residual = (q[:n_free] - q_prev[:n_free]) / h + alpha * f[:n_free] + history
        if shunt:
            anchor = shunt_target if shunt_target is not None else v_guess
            residual = residual + shunt * (v[:n_free] - anchor[:n_free])
        if n_free:
            worst = int(np.argmax(np.abs(residual)))
            info["worst_index"] = worst
            info["worst_residual"] = float(abs(residual[worst]))
        jacobian = c_ff[:, :n_free] / h + alpha * j[:n_free, :n_free]
        if shunt:
            jacobian = jacobian + shunt * np.eye(n_free)
        try:
            delta = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError:
            return None, info
        if not np.all(np.isfinite(delta)):
            info["nonfinite"] = True
            return None, info
        step = np.max(np.abs(delta))
        if step > damping:
            delta *= damping / step
        v[:n_free] += delta
        if not np.all(np.isfinite(v[:n_free])):
            info["nonfinite"] = True
            return None, info
        if step < options.vntol:
            return v, info
    return None, info


def _rescue_step(
    circuit: CompiledCircuit,
    v_accepted: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    h: float,
    options: TransientOptions,
) -> Tuple[Optional[np.ndarray], Dict[str, object], Optional[str]]:
    """Escalation rungs beyond step-halving, tried at the step floor.

    Both rungs restart from the last *accepted* state (not the failed
    predictor) and use backward Euler (L-stable), per the ladder design:

    * ``damped-newton`` - update magnitude capped at 0.1 V with a 4x
      iteration budget;
    * ``gmin-restart`` - a shunt homotopy anchored at the accepted state,
      stepped from 1e-1 S down to 1e-12 S, then a clean confirming solve.

    Returns ``(solution, info, rung)`` - the rung that succeeded, or the
    info of the deepest failure for diagnostics.
    """
    info: Dict[str, object] = {}
    if "damped-newton" in options.escalation:
        solution, info = _newton_step(
            circuit, v_accepted.copy(), v_sources, q_prev, None, h, 1.0,
            options, damping=0.1, max_iter=4 * options.max_newton,
        )
        if solution is not None:
            return solution, info, "damped-newton"
    if "gmin-restart" in options.escalation:
        guess = v_accepted.copy()
        failed = False
        for exponent in (1, 3, 6, 9, 12):
            shunt = 10.0 ** (-exponent)
            attempt, info = _newton_step(
                circuit, guess, v_sources, q_prev, None, h, 1.0,
                options, max_iter=4 * options.max_newton,
                shunt=shunt, shunt_target=v_accepted,
            )
            if attempt is None:
                failed = True
                break
            guess = attempt
        if not failed:
            solution, info = _newton_step(
                circuit, guess, v_sources, q_prev, None, h, 1.0,
                options, max_iter=4 * options.max_newton,
            )
            if solution is not None:
                return solution, info, "gmin-restart"
    return None, info, None


def transient(
    netlist: Netlist,
    t_stop: float,
    t_start: float = 0.0,
    record: Optional[Iterable[str]] = None,
    record_currents: Optional[Iterable[str]] = None,
    initial: Optional[Dict[str, float]] = None,
    options: Optional[TransientOptions] = None,
    compiled: Optional[CompiledCircuit] = None,
) -> TransientResult:
    """Integrate ``netlist`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    netlist:
        Circuit to simulate (ignored when ``compiled`` is given).
    record:
        Node names whose voltages to keep; defaults to every node.
    record_currents:
        Driven nodes whose delivered source current to keep.
    initial:
        Initial-guess voltages per node, passed to the operating-point
        solve (useful to select a state of a bistable circuit).
    options:
        Engine knobs; see :class:`TransientOptions`.
    compiled:
        Reuse an already compiled circuit (Monte Carlo sweeps re-simulate
        the same topology with different stimuli).

    Raises
    ------
    StepSizeUnderflowError
        A step refused to converge with the whole escalation ladder
        exhausted; diagnostics carry the circuit name, simulated time,
        Newton iteration, worst-residual node and last accepted state.
    NonFiniteStateError
        The failure was a NaN/Inf in the iterate rather than plain
        non-convergence.
    """
    options = options or TransientOptions()
    circuit = compiled or CompiledCircuit.compile(netlist)
    n_free = circuit.n_free

    record = list(record) if record is not None else sorted(circuit.node_index)
    for node in record:
        if node not in circuit.node_index:
            raise KeyError(f"cannot record unknown node {node!r}")
    current_nodes = list(record_currents or [])
    for node in current_nodes:
        if node not in circuit.netlist.sources:
            raise KeyError(f"cannot record source current of undriven node {node!r}")

    breakpoints = [b for b in circuit.breakpoints(t_start, t_stop) if b > t_start]
    breakpoints.append(t_stop)
    breakpoints = sorted(set(breakpoints))

    dcop_stats: Dict[str, object] = {}
    v = dc_operating_point(circuit, t=t_start, initial=initial, stats=dcop_stats)
    escalations: Dict[str, int] = {}
    if "dcop_rung" in dcop_stats:
        escalations[f"dcop:{dcop_stats['dcop_rung']}"] = 1

    def _fail(kind: type, reason: str, h: float, step_info: Dict[str, object],
              rung: Optional[str]) -> None:
        worst_index = step_info.get("worst_index")
        worst_name = None
        if worst_index is not None:
            for name, i in circuit.node_index.items():
                if i == worst_index:
                    worst_name = name
                    break
        diagnostics = SimulationDiagnostics(
            circuit=circuit.netlist.name,
            sim_time=t,
            newton_iteration=step_info.get("iterations"),
            ladder_rung=rung,
            worst_residual_node=worst_name,
            worst_residual=step_info.get("worst_residual"),
            extra={"h": h, "reason": reason},
        )
        diagnostics.capture_state(circuit.node_index, v)
        raise kind(
            f"{reason} at t = {t:.3e} s in {circuit.netlist.name!r}",
            diagnostics=diagnostics,
        )

    times: List[float] = [t_start]
    states: List[np.ndarray] = [v.copy()]
    f_now, _ = circuit.device_currents(v, with_jacobian=False)
    currents: List[np.ndarray] = [f_now.copy()]

    t = t_start
    h = options.dt_start
    # Time comparison tolerance: a few ULPs at the horizon's magnitude.
    eps_t = 64.0 * np.spacing(max(abs(t_stop), abs(t_start), 1e-12))
    bp_index = 0
    force_be = True  # first step after t0 behaves like after a breakpoint
    v_prev = v.copy()
    t_prev = t

    while t < t_stop - eps_t:
        while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + eps_t:
            bp_index += 1
        next_bp = breakpoints[bp_index] if bp_index < len(breakpoints) else t_stop
        h = min(h, options.dt_max, t_stop - t)
        hit_bp = False
        if t + h >= next_bp - eps_t:
            h = next_bp - t
            hit_bp = True
        if h < options.dt_min:
            _fail(StepSizeUnderflowError, "step size underflow", h, {}, None)

        t_new = t + h
        v_sources = circuit.source_voltages(t_new)
        # Predictor: linear extrapolation of the last two accepted points.
        if t > t_prev:
            slope = (v - v_prev) / (t - t_prev)
            v_pred = v + slope * h
        else:
            v_pred = v.copy()

        alpha = 1.0 if force_be else 0.5
        f_hist = None
        if not force_be:
            f_hist, _ = circuit.device_currents(v, with_jacobian=False)
        q_prev = circuit.C @ v

        rescued = False
        v_new, step_info = _newton_step(
            circuit, v_pred, v_sources, q_prev, f_hist, h, alpha, options
        )
        if v_new is not None and not np.all(np.isfinite(v_new)):
            step_info["nonfinite"] = True
            v_new = None
        if v_new is None:
            # Rung 1: step-halving down to the floor.
            if h * 0.25 >= options.dt_min and "step-halving" in options.escalation:
                escalations["step-halving"] = escalations.get("step-halving", 0) + 1
                h *= 0.25
                force_be = True
                continue
            # Floor reached: damped Newton, then gmin-restart, from the
            # last accepted state.
            nonfinite = bool(step_info.get("nonfinite"))
            rescues_used = sum(
                count for name, count in escalations.items()
                if name in ("damped-newton", "gmin-restart")
            )
            if rescues_used >= MAX_RESCUES:
                _fail(
                    StepSizeUnderflowError,
                    f"escalation budget exhausted ({MAX_RESCUES} rescues)",
                    h, step_info, options.escalation[-1] if options.escalation else None,
                )
            v_new, rescue_info, rung = _rescue_step(
                circuit, v, v_sources, q_prev, h, options
            )
            if v_new is not None and not np.all(np.isfinite(v_new)):
                rescue_info["nonfinite"] = True
                v_new = None
            if v_new is None:
                nonfinite = nonfinite or bool(rescue_info.get("nonfinite"))
                last_rung = (
                    options.escalation[-1] if options.escalation else None
                )
                _fail(
                    NonFiniteStateError if nonfinite else StepSizeUnderflowError,
                    "non-finite state" if nonfinite else "step size underflow",
                    h,
                    rescue_info or step_info,
                    last_rung,
                )
            escalations[rung] = escalations.get(rung, 0) + 1
            rescued = True

        weight = options.reltol * np.maximum(np.abs(v_new[:n_free]), 1.0) + options.vabstol
        err = float(np.max(np.abs(v_new[:n_free] - v_pred[:n_free]) / weight)) if n_free else 0.0

        if (
            not rescued
            and err > options.lte_reject
            and not hit_bp
            and h > 4 * options.dt_min
        ):
            h *= 0.4
            continue

        # Accept (guarded: no NaN/Inf ever enters the recorded history).
        if not np.all(np.isfinite(v_new)):
            _fail(NonFiniteStateError, "non-finite state", h, step_info, None)
        v_prev, t_prev = v, t
        v, t = v_new, t_new
        times.append(t)
        states.append(v.copy())
        if current_nodes:
            f_now, _ = circuit.device_currents(v, with_jacobian=False)
            dq = (circuit.C @ v - q_prev) / h
            currents.append(f_now + dq)
        force_be = False
        if hit_bp or rescued:
            h = options.dt_start
            force_be = True
        else:
            grow = 0.9 * (1.0 / max(err, 1e-12)) ** (1.0 / 3.0)
            h *= float(np.clip(grow, 0.4, 2.0))

    time_array = np.asarray(times)
    state_array = np.asarray(states)
    voltages = {
        node: state_array[:, circuit.node_index[node]].copy() for node in record
    }
    source_currents: Dict[str, np.ndarray] = {}
    if current_nodes:
        current_array = np.asarray(currents)
        for node in current_nodes:
            source_currents[node] = current_array[:, circuit.node_index[node]].copy()
    return TransientResult(
        times=time_array, voltages=voltages, source_currents=source_currents,
        escalations=escalations,
    )
