"""Allocation-free compiled evaluation kernels for the scalar engine.

The transient engine spends nearly all of its time in two places: the
per-iteration assembly of the device residual/Jacobian and the dense
linear solve.  This module removes the per-call allocations from the
first and makes the second factorization-aware:

* :class:`ScalarKernel` precomputes, once per compiled circuit, the flat
  scatter index arrays and the signed node/device incidence matrix that
  turn MOSFET stamping into one ``incidence @ weights`` product for the
  residual and one :func:`np.bincount` for the Jacobian - replacing the
  ``G.copy()`` plus six ``np.add.at`` calls the old
  :meth:`~repro.analog.compile.CompiledCircuit.device_currents` paid on
  every Newton iteration.  Output buffers are preallocated and reused.

* The **fixed-target scatter** is the enabling observation: although the
  drain/source swap (so the level-1 model only sees ``vds >= 0``)
  changes which physical node plays "drain" per evaluation, the scatter
  *targets* can stay the compile-time ``(m_d, m_s)`` pair with
  swap-adjusted weights.  With ``u = -1`` where swapped else ``+1``, the
  residual weight at ``m_d`` is ``u * sign * ids`` (and its negative at
  ``m_s``); the six Jacobian stamps become, in the fixed frame,
  ``gds' = where(swap, gsum, gds)`` and ``gsum' = where(swap, gds,
  gsum)`` (the swap exchanges ``gds`` and ``gsum``) plus ``u * gm`` on
  the gate column.  This is what makes the index arrays precomputable.

* :class:`KernelStats` carries the hot-loop observability counters the
  runtime telemetry aggregates: per-phase wall time (assemble / factor /
  solve / accept) and the modified-Newton policy tallies
  (``jacobian_reuses`` / ``refactorizations``).

:func:`reference_device_currents` preserves the pre-kernel dense
assembly verbatim; the golden equivalence tests pin the kernel against
it.  Kernel buffers are reused across calls, so a kernel (like the
compiled circuit that owns it) must not be shared across threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

import numpy as np

try:  # the C entry point skips np.einsum's python-level dispatch (~1.5 us)
    from numpy._core.multiarray import c_einsum
except ImportError:  # pragma: no cover - older numpy layout
    c_einsum = np.einsum

try:  # raw inv gufunc: same LAPACK path as np.linalg.inv (so scalar and
    # batch invocations stay bit-identical) minus ~4 us of python wrapper;
    # singular input yields NaNs instead of LinAlgError, which the Newton
    # loop's non-finite step guard already handles.
    from numpy.linalg._umath_linalg import inv as raw_inv
except ImportError:  # pragma: no cover - older numpy layout
    def raw_inv(a, out=None):
        try:
            result = np.linalg.inv(a)
        except np.linalg.LinAlgError:
            result = np.full(np.shape(a), np.nan)
        if out is not None:
            out[...] = result
            return out
        return result

#: A stale factorization is kept only while the Newton update norm keeps
#: contracting by at least this factor per iteration; a slower stale
#: iteration triggers a refactorization instead.
REUSE_SLOWDOWN = 0.5


@dataclass
class KernelStats:
    """Hot-loop counters of one engine run (scalar or batch).

    Wall times are cumulative seconds per phase: ``assemble`` is device
    evaluation plus f/J scatter, ``factor`` the Jacobian factorizations,
    ``solve`` the triangular/matvec applications, ``accept`` the
    step-acceptance bookkeeping of the outer loop.  ``jacobian_reuses``
    counts Newton iterations served by a stale factorization,
    ``refactorizations`` the slowdown-triggered refreshes (a subset of
    ``factorizations``).
    """

    assembles: int = 0
    factorizations: int = 0
    refactorizations: int = 0
    jacobian_reuses: int = 0
    newton_iterations: int = 0
    assemble_s: float = 0.0
    factor_s: float = 0.0
    solve_s: float = 0.0
    accept_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable counter snapshot."""
        return {
            "assembles": self.assembles,
            "factorizations": self.factorizations,
            "refactorizations": self.refactorizations,
            "jacobian_reuses": self.jacobian_reuses,
            "newton_iterations": self.newton_iterations,
            "assemble_s": self.assemble_s,
            "factor_s": self.factor_s,
            "solve_s": self.solve_s,
            "accept_s": self.accept_s,
        }

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object into this one."""
        self.assembles += other.assembles
        self.factorizations += other.factorizations
        self.refactorizations += other.refactorizations
        self.jacobian_reuses += other.jacobian_reuses
        self.newton_iterations += other.newton_iterations
        self.assemble_s += other.assemble_s
        self.factor_s += other.factor_s
        self.solve_s += other.solve_s
        self.accept_s += other.accept_s


def mosfet_stamp_targets(
    m_d: np.ndarray, m_g: np.ndarray, m_s: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed residual/Jacobian scatter targets of ``M`` MOSFETs.

    ``f_idx`` is the ``(2M,)`` residual target vector
    (``[m_d..., m_s...]``); ``j_idx`` the ``(6M,)`` flattened row-major
    Jacobian targets in stamp order ``(d,d) (d,g) (d,s) (s,d) (s,g)
    (s,s)``.  These targets are compile-time constants - the
    drain/source swap changes stamp *weights*, never targets - which is
    what lets the sparse CSR plan (:mod:`repro.sparse.csr`) freeze its
    pattern per topology.  Shared by :func:`build_mosfet_scatter`
    (which adds the dense ``(n, M)`` incidence on top) and the sparse
    plan (which must not pay for that incidence at 10^4 nodes).
    """
    m_d = np.asarray(m_d, dtype=np.intp)
    m_g = np.asarray(m_g, dtype=np.intp)
    m_s = np.asarray(m_s, dtype=np.intp)
    f_idx = np.concatenate([m_d, m_s])
    j_idx = np.concatenate([
        m_d * n + m_d, m_d * n + m_g, m_d * n + m_s,
        m_s * n + m_d, m_s * n + m_g, m_s * n + m_s,
    ])
    return f_idx, j_idx


def build_mosfet_scatter(
    m_d: np.ndarray, m_g: np.ndarray, m_s: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compile-time scatter plan of ``M`` MOSFETs into an ``n``-node system.

    Returns
    -------
    (f_idx, j_idx, incidence):
        The fixed targets of :func:`mosfet_stamp_targets` plus
        ``incidence``, the signed ``(n, M)`` node/device incidence
        matrix (``+1`` at ``m_d``, ``-1`` at ``m_s`` - a self-connected
        device cancels to ``0``).
    """
    m_d = np.asarray(m_d, dtype=np.intp)
    m_s = np.asarray(m_s, dtype=np.intp)
    f_idx, j_idx = mosfet_stamp_targets(m_d, m_g, m_s, n)
    incidence = np.zeros((n, m_d.size))
    np.add.at(incidence, (m_d, np.arange(m_d.size)), 1.0)
    np.add.at(incidence, (m_s, np.arange(m_s.size)), -1.0)
    return f_idx, j_idx, incidence


@lru_cache(maxsize=256)
def _scatter_plan_cached(
    n: int, d: Tuple[int, ...], g: Tuple[int, ...], s: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return build_mosfet_scatter(
        np.asarray(d, dtype=np.intp), np.asarray(g, dtype=np.intp),
        np.asarray(s, dtype=np.intp), n,
    )


def mosfet_scatter_plan(
    m_d: np.ndarray, m_g: np.ndarray, m_s: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Memoized :func:`build_mosfet_scatter` keyed on the topology.

    Bisection and serial sweeps recompile the same sensor topology for
    every probe; the scatter plan depends only on connectivity, so one
    module-level LRU (shared by the scalar and batch kernels) hands the
    identical plan back.  The returned arrays are shared across kernels
    and must be treated as read-only - both kernels only gather from
    them.
    """
    return _scatter_plan_cached(
        int(n),
        tuple(int(x) for x in m_d),
        tuple(int(x) for x in m_g),
        tuple(int(x) for x in m_s),
    )


def reference_device_currents(
    circuit: Any, v: np.ndarray, with_jacobian: bool = True
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """The pre-kernel dense assembly, kept verbatim as the golden oracle.

    This is the original
    :meth:`~repro.analog.compile.CompiledCircuit.device_currents` body
    (``G.copy()`` + ``np.add.at`` scatter); the kernel-equivalence tests
    assert :meth:`ScalarKernel.eval` matches it to summation-order
    roundoff on every circuit family.
    """
    f = circuit.G @ v
    j = circuit.G.copy() if with_jacobian else None
    if circuit.m_d.size == 0:
        return f, j

    vd = v[circuit.m_d]
    vg = v[circuit.m_g]
    vs = v[circuit.m_s]
    sign = circuit.m_sign
    swap = sign * (vd - vs) < 0.0
    md = np.where(swap, circuit.m_s, circuit.m_d)
    ms = np.where(swap, circuit.m_d, circuit.m_s)
    vmd = np.where(swap, vs, vd)
    vms = np.where(swap, vd, vs)
    vds = sign * (vmd - vms)
    vgs = sign * (vg - vms)

    from repro.devices.mosfet import level1_ids

    ids, gm, gds = level1_ids(vgs, vds, circuit.m_vt, circuit.m_beta,
                              circuit.m_lam)

    np.add.at(f, md, sign * ids)
    np.add.at(f, ms, -sign * ids)

    if with_jacobian:
        gsum = gm + gds
        np.add.at(j, (md, md), gds)
        np.add.at(j, (md, circuit.m_g), gm)
        np.add.at(j, (md, ms), -gsum)
        np.add.at(j, (ms, md), -gds)
        np.add.at(j, (ms, circuit.m_g), -gm)
        np.add.at(j, (ms, ms), gsum)
    return f, j


class ScalarKernel:
    """Reusable-buffer device evaluation for one compiled circuit.

    Built lazily by :meth:`CompiledCircuit.kernel`.  Model-card arrays
    (``m_vt``/``m_beta``/``m_lam``) are read from the owning circuit at
    every call, so parameter mutations after compilation (the fault- and
    poison-injection tests rely on this) are honoured; only the
    *connectivity* (``m_d``/``m_g``/``m_s``) is frozen into the scatter
    plan.
    """

    def __init__(self, circuit: Any) -> None:
        self.circuit = circuit
        n = circuit.n_total
        m = circuit.m_d.size
        self.n = n
        self.m = m
        self.f_idx, self.j_idx, self.incidence = mosfet_scatter_plan(
            circuit.m_d, circuit.m_g, circuit.m_s, n
        )
        # Reused output/scratch buffers (not thread-safe, by design).
        self.f = np.empty(n)
        self.j = np.empty((n, n))
        self._j_flat = self.j.reshape(-1)
        self._fs = np.empty(n)        # incidence @ weights scratch
        self._jw = np.empty((6, m))   # Jacobian stamp weights, row-major
        self._jw_flat = self._jw.reshape(-1)
        self._nn = n * n
        self._b = np.empty((10, m))   # elementwise scratch rows
        self._swap = np.empty(m, dtype=bool)
        # One combined gather plus a premultiplied polarity vector turns
        # the three separate model-space transforms into a single
        # elementwise product (sign is exactly +/-1, so premultiplying
        # the gathered voltages is bit-identical to the reference).
        self._idx_all = np.concatenate(
            [np.asarray(circuit.m_d, dtype=np.intp),
             np.asarray(circuit.m_g, dtype=np.intp),
             np.asarray(circuit.m_s, dtype=np.intp)]
        )
        self._sign3 = np.tile(np.asarray(circuit.m_sign, dtype=float), 3)

    def eval(
        self,
        v: np.ndarray,
        with_jacobian: bool = True,
        stats: Optional[KernelStats] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Assemble ``(f, j)`` at ``v`` into the kernel's reused buffers.

        The returned arrays are owned by the kernel and overwritten by
        the next call; callers that keep them must copy (the public
        :meth:`CompiledCircuit.device_currents` does).

        The body is the level-1 evaluation of
        :func:`repro.devices.mosfet.level1_ids` inlined with every
        intermediate written into a preallocated scratch row - each
        floating-point operation keeps the operand order of the
        reference path, so currents stay bit-identical and derivatives
        within one ulp of :func:`reference_device_currents` up to the
        scatter summation order.  ``gm``/``gds`` are skipped entirely on
        residual-only calls.
        """
        t0 = perf_counter() if stats is not None else 0.0
        circuit = self.circuit
        # c_einsum, not matmul: the batched kernel's ``bij,bj->bi`` form
        # is bit-identical to this ``ij,j->i`` per sample (same inner
        # summation loop), while BLAS matmul accumulates differently -
        # and the B == 1 batch/scalar equivalence pin needs identical
        # bits so the engines' accept decisions can never diverge.
        f = c_einsum("ij,j->i", circuit.G, v, out=self.f)
        j = None
        if with_jacobian:
            j = self.j
            j[...] = circuit.G
        if self.m == 0:
            if stats is not None:
                stats.assembles += 1
                stats.assemble_s += perf_counter() - t0
            return f, j

        m = self.m
        sv = v[self._idx_all]  # sign-premultiplied (vd, vg, vs) gather
        sv *= self._sign3
        svd = sv[:m]
        svg = sv[m:2 * m]
        svs = sv[2 * m:]
        b = self._b
        dv = np.subtract(svd, svs, out=b[0])
        swap = np.less(dv, 0.0, out=self._swap)
        vds = np.abs(dv, out=b[1])
        # Model-space vgs, referenced to the post-swap source terminal:
        # ``where(swap, svd, svs)`` is exactly ``min(svd, svs)`` (swap
        # means svd < svs), and ``minimum`` is a plain ufunc - no
        # python-level ``np.where`` dispatch on the hot path.
        vmin = np.minimum(svd, svs, out=b[2])
        vgs = np.subtract(svg, vmin, out=b[2])
        vov = np.subtract(vgs, circuit.m_vt, out=b[3])
        np.maximum(vov, 0.0, out=vov)
        x = np.minimum(vds, vov, out=b[4])
        clm = np.multiply(circuit.m_lam, vds, out=b[5])
        clm += 1.0
        xx = np.multiply(x, x, out=b[6])
        xx *= 0.5  # power-of-2 scale: identical to the 0.5*x*x reference
        core = np.multiply(vov, x, out=b[7])
        core -= xx
        ids = np.multiply(circuit.m_beta, core, out=b[8])
        ids *= clm
        # Node weight: +sign*ids at the fixed drain target, negated where
        # the evaluation swapped drain/source (negating is exact).
        w = np.multiply(ids, circuit.m_sign, out=b[9])
        np.negative(w, out=w, where=swap)
        f += c_einsum("nm,m->n", self.incidence, w, out=self._fs)

        if with_jacobian:
            gm = np.multiply(circuit.m_beta, x, out=b[8])  # ids row is spent
            gm *= clm
            gds = np.subtract(vov, x, out=b[9])
            gds *= clm
            lamcore = core
            lamcore *= circuit.m_lam
            gds += lamcore
            gds *= circuit.m_beta
            # Fixed-frame stamps without ``np.where``'s dispatch cost:
            # with ``sg = swap * gm`` (exactly gm or 0.0),
            # ``gds + sg`` is ``where(swap, gds + gm, gds)`` and
            # ``gds + (gm - sg)`` its mirror - additions against an exact
            # 0.0 / exact cancellation, so bit-equal to the where() form.
            jw = self._jw
            sg = np.multiply(swap, gm, out=b[1])
            sg2 = np.subtract(gm, sg, out=b[2])
            np.add(gds, sg, out=jw[0])             # swap exchanges gds <-> gsum
            np.add(gds, sg2, out=jw[5])
            jw1 = jw[1]
            jw1[...] = gm
            np.negative(jw1, out=jw1, where=swap)
            np.negative(jw[5], out=jw[2])
            np.negative(jw[0], out=jw[3])
            np.negative(jw1, out=jw[4])
            self._j_flat += np.bincount(
                self.j_idx, weights=self._jw_flat, minlength=self._nn
            )
        if stats is not None:
            stats.assembles += 1
            stats.assemble_s += perf_counter() - t0
        return f, j
