"""Derived measurements over waveforms: delays, skews, logic interpretation."""

from __future__ import annotations

from typing import Optional

from repro.analog.waveform import Waveform
from repro.units import VDD


def crossing_time(
    wave: Waveform, level: float, rising: bool = True, after: Optional[float] = None
) -> Optional[float]:
    """Convenience wrapper around :meth:`Waveform.first_crossing`."""
    return wave.first_crossing(level, rising=rising, after=after)


def delay_between(
    cause: Waveform,
    effect: Waveform,
    level: float,
    cause_rising: bool = True,
    effect_rising: bool = True,
    after: Optional[float] = None,
) -> Optional[float]:
    """Time from ``cause`` crossing ``level`` to ``effect`` crossing it.

    Returns ``None`` when either crossing is absent.  The effect crossing is
    searched from the cause crossing onward, so a pre-existing level on the
    effect signal is not mistaken for a response.
    """
    t_cause = cause.first_crossing(level, rising=cause_rising, after=after)
    if t_cause is None:
        return None
    t_effect = effect.first_crossing(level, rising=effect_rising, after=t_cause)
    if t_effect is None:
        return None
    return t_effect - t_cause


def skew_between(
    a: Waveform,
    b: Waveform,
    level: float = VDD / 2,
    rising: bool = True,
    after: Optional[float] = None,
) -> Optional[float]:
    """Skew ``t_b - t_a`` between equal-direction crossings of two signals.

    Positive means ``b`` lags ``a`` - the convention used for the paper's
    ``tau`` (``phi2`` delayed relative to ``phi1``).
    """
    t_a = a.first_crossing(level, rising=rising, after=after)
    t_b = b.first_crossing(level, rising=rising, after=after)
    if t_a is None or t_b is None:
        return None
    return t_b - t_a


def logic_value(voltage: float, threshold: float) -> int:
    """Interpret a node voltage through a logic threshold.

    The paper evaluates the sensing-circuit response with a gate whose logic
    threshold is ``VDD/2`` derated by 10 % parameter variation (2.75 V);
    voltages above the threshold read as logic 1.
    """
    return 1 if voltage > threshold else 0
