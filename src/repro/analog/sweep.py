"""DC transfer sweeps.

Sweeps one driven node over a value grid, solving the operating point at
each step with continuation (the previous solution seeds the next Newton
solve, which keeps multistable circuits on one branch).  Used to
characterise static transfer curves - e.g. the logic threshold of the
interpreting gate that defines the paper's ``Vth``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import _newton_static, dc_operating_point
from repro.circuit.netlist import Netlist
from repro.devices.sources import DCSource


def dc_sweep(
    netlist: Netlist,
    input_node: str,
    values: Iterable[float],
    record: Optional[Iterable[str]] = None,
    initial: Optional[Dict[str, float]] = None,
) -> Dict[str, np.ndarray]:
    """Sweep the DC source on ``input_node`` and record node voltages.

    Parameters
    ----------
    netlist:
        Circuit; ``input_node`` must be a driven node (its source is
        replaced by a DC source per step; the original netlist is not
        modified - the sweep works on a copy).
    values:
        Input voltages, in sweep order.
    record:
        Node names to record; defaults to all free nodes.
    initial:
        Initial-guess voltages for the first point.

    Returns
    -------
    Mapping node -> array of voltages, one entry per sweep value, plus
    the key ``"sweep"`` holding the input values themselves.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("empty sweep")
    working = netlist.copy()
    if input_node not in working.sources:
        raise KeyError(f"{input_node!r} is not a driven node")

    working.drive(input_node, DCSource(values[0]))
    circuit = CompiledCircuit.compile(working)
    record = list(record) if record is not None else working.free_nodes()
    for node in record:
        if node not in circuit.node_index:
            raise KeyError(f"cannot record unknown node {node!r}")

    out: Dict[str, List[float]] = {node: [] for node in record}
    v = dc_operating_point(circuit, t=0.0, initial=initial)
    input_index = circuit.node_index[input_node]
    for value in values:
        v[input_index] = value
        solved, _ = _newton_static(circuit, v, 1e-12, v)
        if solved is None:
            # Fall back to a full homotopy solve seeded by the last point.
            working.drive(input_node, DCSource(value))
            fresh = CompiledCircuit.compile(working)
            guesses = {
                node: v[circuit.node_index[node]]
                for node in working.free_nodes()
            }
            solved = dc_operating_point(fresh, t=0.0, initial=guesses)
            circuit = fresh
            input_index = circuit.node_index[input_node]
        v = solved
        for node in record:
            out[node].append(float(v[circuit.node_index[node]]))

    result = {node: np.asarray(series) for node, series in out.items()}
    result["sweep"] = np.asarray(values)
    return result


def switching_threshold(
    netlist: Netlist,
    input_node: str,
    output_node: str,
    v_lo: float = 0.0,
    v_hi: float = 5.0,
    tolerance: float = 1e-3,
    initial: Optional[Dict[str, float]] = None,
) -> float:
    """Input voltage at which ``output`` crosses the input (``v_out =
    v_in`` point of an inverting transfer curve) - the logic threshold of
    an interpreting gate.
    """
    lo, hi = v_lo, v_hi

    def out_minus_in(v_in: float) -> float:
        curve = dc_sweep(
            netlist, input_node, [v_in], record=[output_node], initial=initial
        )
        return float(curve[output_node][0]) - v_in

    f_lo = out_minus_in(lo)
    f_hi = out_minus_in(hi)
    if f_lo * f_hi > 0:
        raise ValueError("transfer curve does not cross v_out = v_in")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if out_minus_in(mid) * f_lo <= 0:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)
