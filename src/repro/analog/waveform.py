"""Waveform container and point measurements.

A :class:`Waveform` is a piecewise-linear signal sampled at the (irregular)
accepted time points of a transient run.  All measurements interpolate
linearly between samples - which is exact for the PWL sources and a good
approximation for node voltages given the engine's LTE control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Waveform:
    """An irregularly sampled signal ``value(time)``."""

    times: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.ndim != 1 or t.shape != v.shape or t.size == 0:
            raise ValueError("Waveform: times and values must be equal-length 1-D")
        if np.any(np.diff(t) < 0):
            raise ValueError("Waveform: times must be non-decreasing")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)

    # ------------------------------------------------------------------ #
    def at(self, t: float) -> float:
        """Linearly interpolated value at time ``t`` (clamped at the ends)."""
        return float(np.interp(t, self.times, self.values))

    @property
    def t_start(self) -> float:
        """First sample time."""
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        """Last sample time."""
        return float(self.times[-1])

    def final_value(self) -> float:
        """Value at the last sample."""
        return float(self.values[-1])

    # ------------------------------------------------------------------ #
    def _window(self, t0: Optional[float], t1: Optional[float]) -> np.ndarray:
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_stop if t1 is None else t1
        if t1 < t0:
            raise ValueError("window end precedes start")
        inside = self.values[(self.times > t0) & (self.times < t1)]
        ends = np.array([self.at(t0), self.at(t1)])
        return np.concatenate([ends, inside])

    def window_min(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Minimum over ``[t0, t1]`` including interpolated endpoints.

        This is the ``Vmin`` measurement of Fig. 4 / Fig. 5 when applied to
        the lagging sensor output over the evaluation window.
        """
        return float(self._window(t0, t1).min())

    def window_max(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Maximum over ``[t0, t1]`` including interpolated endpoints."""
        return float(self._window(t0, t1).max())

    def mean(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Time-weighted average over ``[t0, t1]`` (trapezoidal integral)."""
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_stop if t1 is None else t1
        if t1 <= t0:
            return self.at(t0)
        mask = (self.times > t0) & (self.times < t1)
        t = np.concatenate([[t0], self.times[mask], [t1]])
        v = np.concatenate([[self.at(t0)], self.values[mask], [self.at(t1)]])
        return float(np.trapezoid(v, t) / (t1 - t0))

    # ------------------------------------------------------------------ #
    def first_crossing(
        self,
        level: float,
        rising: bool = True,
        after: Optional[float] = None,
    ) -> Optional[float]:
        """Time of the first crossing of ``level`` in the given direction.

        Returns ``None`` if the waveform never crosses.  ``after`` restricts
        the search to ``t >= after``.
        """
        t = self.times
        v = self.values
        if after is not None:
            keep = t >= after
            if not keep.any():
                return None
            first = int(np.argmax(keep))
            if first > 0:
                t = np.concatenate([[after], t[first:]])
                v = np.concatenate([[self.at(after)], v[first:]])
            else:
                t, v = t[first:], v[first:]
        prev, cur = v[:-1], v[1:]
        if rising:
            hits = (prev < level) & (cur >= level)
        else:
            hits = (prev > level) & (cur <= level)
        indices = np.nonzero(hits)[0]
        if indices.size == 0:
            return None
        i = int(indices[0])
        dv = cur[i] - prev[i]
        if dv == 0.0:
            return float(t[i + 1])
        frac = (level - prev[i]) / dv
        return float(t[i] + frac * (t[i + 1] - t[i]))

    def slice(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform on ``[t0, t1]`` with interpolated endpoints."""
        mask = (self.times > t0) & (self.times < t1)
        t = np.concatenate([[t0], self.times[mask], [t1]])
        v = np.concatenate([[self.at(t0)], self.values[mask], [self.at(t1)]])
        return Waveform(times=t, values=v, name=self.name)

    # ------------------------------------------------------------------ #
    # Edge characterisation
    # ------------------------------------------------------------------ #
    def transition_time(
        self,
        rising: bool = True,
        low_frac: float = 0.1,
        high_frac: float = 0.9,
        after: Optional[float] = None,
    ) -> Optional[float]:
        """10-90 % (by default) transition time of the first edge.

        The fractions are applied to the waveform's own value range.
        Returns ``None`` when the corresponding crossings are absent.
        """
        lo = float(self.values.min())
        hi = float(self.values.max())
        span = hi - lo
        if span <= 0:
            return None
        level_a = lo + low_frac * span
        level_b = lo + high_frac * span
        if rising:
            t_a = self.first_crossing(level_a, rising=True, after=after)
            if t_a is None:
                return None
            t_b = self.first_crossing(level_b, rising=True, after=t_a)
        else:
            t_a = self.first_crossing(level_b, rising=False, after=after)
            if t_a is None:
                return None
            t_b = self.first_crossing(level_a, rising=False, after=t_a)
        if t_b is None:
            return None
        return t_b - t_a

    def settling_time(
        self,
        target: float,
        band: float,
        after: float,
    ) -> Optional[float]:
        """Time (from ``after``) until the waveform stays within
        ``target +/- band`` for the rest of the record.

        Returns ``None`` when the waveform never settles.
        """
        mask = self.times >= after
        t = self.times[mask]
        v = self.values[mask]
        if t.size == 0:
            return None
        inside = np.abs(v - target) <= band
        if not inside[-1]:
            return None
        outside = np.nonzero(~inside)[0]
        if outside.size == 0:
            return 0.0
        return float(t[outside[-1] + 1] - after)

    def overshoot(self, target: float, after: Optional[float] = None) -> float:
        """Largest excursion beyond ``target`` from ``after`` onward
        (positive number; 0 when the waveform never exceeds it)."""
        mask = (
            self.times >= after if after is not None
            else np.ones_like(self.times, dtype=bool)
        )
        if not mask.any():
            return 0.0
        return float(max(0.0, self.values[mask].max() - target))
