"""Batched vectorized simulation engine: lockstep many-circuit transients.

Every headline figure of the paper (Fig. 4's ``Vmin`` vs skew sweeps,
Fig. 5's Monte Carlo scatter) re-simulates thousands of *structurally
identical* 10-transistor sensors that differ only in parameters, loads,
slews and skew.  This package turns that shape into vectorized math:

* :mod:`repro.batch.compile` - :func:`compile_batch` stacks N parameter
  variants of one netlist topology into batched MNA tensors (the
  :class:`~repro.analog.compile.CompiledCircuit` arrays with a leading
  batch axis, per-sample model cards, shared connectivity);
* :mod:`repro.batch.engine` - :func:`batch_transient` integrates the
  whole stack in lockstep: one shared adaptive time axis, vectorized
  Newton with per-sample convergence masks, per-sample local-error
  control driving a shared step size (a sample that rejects a step drops
  the batch to the smallest accepted ``h``), and mask-out semantics for
  samples that exhaust the in-batch ladder;
* :mod:`repro.batch.response` - :func:`evaluate_jobs_batch` evaluates a
  stack of :class:`~repro.runtime.SensorJob` descriptions and reports
  which samples need the scalar engine (the *fallback contract*: a
  masked-out sample is re-dispatched to :mod:`repro.analog.engine`, so
  PR 2's escalation ladder and failure diagnostics are preserved, never
  silently degraded);
* :mod:`repro.batch.dispatch` - campaign integration: grouping of
  compatible jobs into batches, ``REPRO_BATCH_SIZE`` chunking with a
  memory/fan-out auto-tune, process sharding of whole stacks over
  ``REPRO_BATCH_WORKERS`` workers through the executor's windowed
  dispatcher (crash isolation and bounded redispatch included), and the
  outcome protocol the :func:`repro.runtime.run_campaign` executor
  consumes via ``backend="batch"``.
"""

from repro.batch.compile import BatchCompiledCircuit, BatchTopologyError, compile_batch
from repro.batch.dispatch import (
    DEFAULT_BATCH_SIZE,
    ENV_BATCH_SIZE,
    ENV_BATCH_WORKERS,
    batch_signature,
    dispatch_batches,
    group_batches,
    resolve_batch_plan,
    resolve_batch_size,
    resolve_batch_workers,
)
from repro.batch.engine import BatchTransientResult, batch_transient
from repro.batch.response import BatchEvaluation, evaluate_jobs_batch

__all__ = [
    "BatchCompiledCircuit",
    "BatchEvaluation",
    "BatchTopologyError",
    "BatchTransientResult",
    "DEFAULT_BATCH_SIZE",
    "ENV_BATCH_SIZE",
    "ENV_BATCH_WORKERS",
    "batch_signature",
    "batch_transient",
    "compile_batch",
    "dispatch_batches",
    "evaluate_jobs_batch",
    "group_batches",
    "resolve_batch_plan",
    "resolve_batch_size",
    "resolve_batch_workers",
]
