"""Stacking N parameter variants of one topology into batched MNA tensors.

:func:`compile_batch` lowers each netlist through the scalar
:meth:`repro.analog.compile.CompiledCircuit.compile` (so validation,
fault semantics, GMIN/CMIN conditioning and node ordering are exactly
the scalar engine's), verifies the samples are *structurally identical*
(same node set and ordering, same device connectivity and polarity -
only parameter values may differ), and stacks the results along a
leading batch axis:

==================  ===========  ========================================
array               shape        meaning
==================  ===========  ========================================
``G``, ``C``        ``(B,n,n)``  per-sample linear conductance/capacitance
``m_vt`` etc.       ``(B,M)``    per-sample MOSFET model cards
``m_d/m_g/m_s``     ``(M,)``     shared connectivity (indices into nodes)
==================  ===========  ========================================

Device evaluation mirrors :meth:`CompiledCircuit.device_currents` but
runs once for the whole stack, in the compiled
:class:`~repro.batch.kernels.BatchKernel` (lazy, see :meth:`kernel`):
the level-1 model evaluates elementwise on ``(B, M)`` scratch rows and
the node scatter is one flattened-index ``np.bincount`` for all samples
- the allocation-free twin of the scalar kernel, operation for
operation, so a single-sample batch stays bit-identical to the scalar
engine.

Source evaluation is grouped per driven node at compile time: a node
driven by :class:`~repro.devices.sources.DCSource` in every sample
becomes one precomputed constant column; a node driven by
:class:`~repro.devices.sources.ClockSource` everywhere evaluates the
pulse waveform closed-form over ``(B,)`` parameter arrays; anything else
falls back to a per-sample Python loop (correct, just not vectorized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analog.compile import CompiledCircuit
from repro.circuit.netlist import Netlist
from repro.devices.sources import ClockSource, DCSource


class BatchTopologyError(ValueError):
    """Raised when netlists handed to :func:`compile_batch` differ in
    structure (node set, ordering, device connectivity or polarity) and
    therefore cannot share one stacked tensor layout."""


@dataclass
class _ClockGroup:
    """Vectorized parameters of one driven node that is a clock in every
    sample: the SPICE-pulse decomposition of
    :class:`~repro.devices.sources.ClockSource` as ``(B,)`` arrays."""

    node: int
    delay: np.ndarray  # first-edge time (clock delay + skew), (B,)
    slew: np.ndarray
    width: np.ndarray
    period: np.ndarray
    vdd: np.ndarray

    def values(self, t: float) -> np.ndarray:
        """Clock voltages of all samples at time ``t`` (closed form)."""
        tau = np.mod(t - self.delay, self.period)
        r, w = self.slew, self.width
        v = np.where(
            tau < r,
            self.vdd * tau / r,
            np.where(
                tau < r + w,
                self.vdd,
                np.where(
                    tau < r + w + r,
                    # Same operation order as PulseSource._phase_value so
                    # the batched stimulus is bit-identical to the scalar.
                    self.vdd + (0.0 - self.vdd) * ((tau - r - w) / r),
                    0.0,
                ),
            ),
        )
        return np.where(t < self.delay, 0.0, v)


@dataclass
class BatchCompiledCircuit:
    """``B`` structurally identical circuits lowered to stacked arrays.

    The scalar :class:`~repro.analog.compile.CompiledCircuit` objects are
    kept in :attr:`circuits` so masked-out samples can be re-dispatched
    to the scalar engine without recompiling.
    """

    circuits: List[CompiledCircuit]
    node_index: Dict[str, int] = field(default_factory=dict)
    n_free: int = 0
    n_total: int = 0

    #: Linear parts, stacked: ``(B, n_total, n_total)``.
    G: np.ndarray = field(default=None, repr=False)
    C: np.ndarray = field(default=None, repr=False)

    #: Shared MOSFET connectivity ``(M,)`` and per-sample cards ``(B, M)``.
    m_d: np.ndarray = field(default=None, repr=False)
    m_g: np.ndarray = field(default=None, repr=False)
    m_s: np.ndarray = field(default=None, repr=False)
    m_sign: np.ndarray = field(default=None, repr=False)
    m_vt: np.ndarray = field(default=None, repr=False)
    m_beta: np.ndarray = field(default=None, repr=False)
    m_lam: np.ndarray = field(default=None, repr=False)

    # Source evaluation plan (built by compile_batch).
    _dc_values: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _clock_groups: List[_ClockGroup] = field(default_factory=list, repr=False)
    _slow_nodes: List[int] = field(default_factory=list, repr=False)
    _kernel: object = field(default=None, repr=False)

    @property
    def batch_size(self) -> int:
        """Number of stacked samples ``B``."""
        return len(self.circuits)

    # ------------------------------------------------------------------ #
    # Sources
    # ------------------------------------------------------------------ #
    def source_voltages(self, t: float) -> np.ndarray:
        """Driven-node voltages of every sample at time ``t``, ``(B, n)``
        (free-node entries are zero placeholders, like the scalar layout).
        """
        v = np.zeros((self.batch_size, self.n_total))
        return self.source_voltages_into(t, v)

    def source_voltages_into(
        self, t: float, out: np.ndarray, dynamic_only: bool = False
    ) -> np.ndarray:
        """Fill ``out`` (``(B, n_total)``) with the driven-node voltages
        at ``t`` - the allocation-free variant the lockstep hot loop
        uses.  Only driven entries are written; free entries keep their
        values.  With ``dynamic_only`` the DC columns are skipped: a
        caller reusing one buffer across timesteps writes the constants
        once and refreshes only the time-varying sources per step.
        """
        if not dynamic_only:
            for node, column in self._dc_values.items():
                out[:, node] = column
        for group in self._clock_groups:
            out[:, group.node] = group.values(t)
        for node in self._slow_nodes:
            name = self._node_name(node)
            for b, circuit in enumerate(self.circuits):
                out[b, node] = circuit.netlist.sources[name].value(t)
        return out

    def _node_name(self, index: int) -> str:
        for name, i in self.node_index.items():
            if i == index:
                return name
        raise KeyError(f"no node with index {index}")

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """Union of every sample's source corners in ``[t0, t1]``."""
        points = set()
        for circuit in self.circuits:
            points.update(circuit.breakpoints(t0, t1))
        return sorted(points)

    # ------------------------------------------------------------------ #
    # Device evaluation
    # ------------------------------------------------------------------ #
    def kernel(self) -> "BatchKernel":
        """The compiled scatter/assembly kernel of this batch (lazy).

        Mirrors :meth:`CompiledCircuit.kernel`: connectivity is frozen
        into the scatter plan, model-card parameters are read per
        evaluation, so post-compile mutations of ``m_vt``/``m_beta``/
        ``m_lam`` (fault/poison injection) apply.
        """
        if self._kernel is None:
            from repro.batch.kernels import BatchKernel

            self._kernel = BatchKernel(self)
        return self._kernel

    def device_currents(
        self, v: np.ndarray, with_jacobian: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Static currents and Jacobians of the whole stack.

        Parameters
        ----------
        v:
            Stacked voltage vectors, ``(B, n_total)``.

        Returns
        -------
        (f, j):
            ``f`` is ``(B, n_total)``; ``j`` is ``(B, n_total, n_total)``
            (``None`` when ``with_jacobian`` is false).  Sample ``b`` of
            the output equals the scalar
            :meth:`~repro.analog.compile.CompiledCircuit.device_currents`
            on ``v[b]`` up to floating-point summation order.  Assembly
            happens in the compiled :meth:`kernel`; the returned arrays
            are fresh copies, safe for the caller to keep or mutate.
        """
        f, j = self.kernel().eval(v, with_jacobian=with_jacobian)
        return f.copy(), (j.copy() if j is not None else None)


def _check_identical(reference: CompiledCircuit, other: CompiledCircuit) -> None:
    """Raise :class:`BatchTopologyError` unless ``other`` shares
    ``reference``'s structure (it may differ in parameter values)."""
    if other.node_index != reference.node_index:
        raise BatchTopologyError(
            "netlists cannot be batched: node sets/ordering differ "
            f"({other.netlist.name!r} vs {reference.netlist.name!r})"
        )
    if other.n_free != reference.n_free or other.n_total != reference.n_total:
        raise BatchTopologyError("netlists cannot be batched: node counts differ")
    for attr in ("m_d", "m_g", "m_s"):
        if not np.array_equal(getattr(other, attr), getattr(reference, attr)):
            raise BatchTopologyError(
                "netlists cannot be batched: MOSFET connectivity differs "
                f"({other.netlist.name!r} vs {reference.netlist.name!r})"
            )
    if not np.array_equal(other.m_sign, reference.m_sign):
        raise BatchTopologyError(
            "netlists cannot be batched: MOSFET polarities differ"
        )
    if sorted(other.netlist.sources) != sorted(reference.netlist.sources):
        raise BatchTopologyError(
            "netlists cannot be batched: driven node sets differ"
        )


def compile_batch(
    netlists: Sequence[Netlist], vdd_node: str = "vdd"
) -> BatchCompiledCircuit:
    """Compile and stack ``netlists`` into one batched circuit.

    Each netlist is lowered through the scalar compiler (keeping its
    validation and fault semantics), then checked for structural
    identity against the first and stacked.

    Raises
    ------
    ValueError
        On an empty sequence.
    BatchTopologyError
        When the netlists differ in structure, not just parameters.
    """
    if not netlists:
        raise ValueError("compile_batch needs at least one netlist")
    circuits = [CompiledCircuit.compile(n, vdd_node=vdd_node) for n in netlists]
    reference = circuits[0]
    for other in circuits[1:]:
        _check_identical(reference, other)

    self = BatchCompiledCircuit(
        circuits=circuits,
        node_index=dict(reference.node_index),
        n_free=reference.n_free,
        n_total=reference.n_total,
    )
    self.G = np.stack([c.G for c in circuits])
    self.C = np.stack([c.C for c in circuits])
    self.m_d = reference.m_d.copy()
    self.m_g = reference.m_g.copy()
    self.m_s = reference.m_s.copy()
    self.m_sign = reference.m_sign.copy()
    self.m_vt = np.stack([c.m_vt for c in circuits])
    self.m_beta = np.stack([c.m_beta for c in circuits])
    self.m_lam = np.stack([c.m_lam for c in circuits])

    # Source-evaluation plan: group each driven node by source type.
    for name in sorted(reference.netlist.sources):
        node = self.node_index[name]
        sources = [c.netlist.sources[name] for c in circuits]
        if all(isinstance(s, DCSource) for s in sources):
            self._dc_values[node] = np.array([s.voltage for s in sources])
        elif all(isinstance(s, ClockSource) for s in sources):
            self._clock_groups.append(_ClockGroup(
                node=node,
                delay=np.array([s.delay + s.skew for s in sources]),
                slew=np.array([s.slew for s in sources]),
                width=np.array([s.period / 2.0 - s.slew for s in sources]),
                period=np.array([s.period for s in sources]),
                vdd=np.array([s.vdd for s in sources]),
            ))
        else:
            self._slow_nodes.append(node)
    return self
