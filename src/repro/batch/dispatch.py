"""Campaign-side dispatch of the batch engine.

This module is what ``run_campaign(backend="batch")`` lazily imports.
It takes the executor's post-cache work items (cache hits were already
satisfied upstream, so only cold samples reach the stack), groups them
into batchable stacks, and returns outcomes in the executor's standard
worker protocol - so caching, journaling, telemetry and error policies
behave identically across backends.

Grouping and chunking
---------------------
Jobs are grouped by :func:`batch_signature` (the fields one lockstep run
must share: horizon, topology switches, engine options, warm-start
prefix) and each group is split into chunks of at most
:func:`resolve_batch_plan` samples.  Resolution order: explicit
``chunksize`` argument > ``REPRO_BATCH_SIZE`` > the auto-tune heuristic
(:func:`auto_batch_size`: bound the stack by the
``REPRO_BATCH_MEM_BUDGET`` memory budget over the circuit's
:func:`~repro.batch.engine.stack_bytes_per_sample`, by an even fan-out
over the shard workers, and by :data:`MAX_AUTO_BATCH`).  Oversized
batches trade diminishing vectorization gains for a denser
merged-breakpoint schedule, so the tuner keeps stacks moderate.  The
resolved size and worker count are recorded on the campaign
:class:`~repro.runtime.telemetry.Telemetry` so summaries and BENCH JSON
report the shape actually used.

Process sharding
----------------
With :func:`resolve_batch_workers` > 1 (``REPRO_BATCH_WORKERS``), whole
stacks fan out over a process pool through the executor's windowed
submission core (:func:`repro.runtime.executor._dispatch_process_chunks`)
- the same machinery the scalar process backend uses, inheriting its
crash isolation and bounded redispatch.  The unit of crash isolation is
the whole stack (``isolate="chunk"``): a lockstep stack is indivisible,
because splitting it would change its composition and therefore its
merged breakpoint schedule and its bits.  Outcomes are index-addressed,
so merged results are deterministic in job order regardless of which
worker finished first; with the *same stack composition* (same resolved
batch size), a sharded run is bit-identical to the single-worker batch
path, which stays available as ``REPRO_BATCH_WORKERS=1``.

Before the shards launch, every warm group's skew-invariant prefix is
built once in the parent and *published* to the checkpoint disk tier
(:func:`repro.runtime.prefix.publish_prefixes`), turning the prefix
cache into a cross-worker shared artifact store: every worker - forked
or spawned, first generation or rebuilt after a crash - warm-starts
from the published checkpoint instead of re-integrating it.  When the
cache disk tier is disabled, a campaign-scoped temporary store is
exported via ``REPRO_PREFIX_SHARED_DIR`` for the duration of the
dispatch.

Fallback contract
-----------------
A sample the lockstep engine masks out is re-evaluated through the
executor's scalar :func:`~repro.runtime.executor._evaluate_outcome` -
the same path the serial backend uses, with the same bounded
ConvergenceError retries and the same serialised error diagnostics.  If
an entire stack fails to build or integrate, every sample of that chunk
takes the scalar path.  Nothing is silently degraded: every re-dispatch
is counted in ``Telemetry.batch_fallbacks``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import contextmanager
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.compile import BatchTopologyError
from repro.batch.engine import stack_bytes_per_sample
from repro.batch.response import evaluate_jobs_batch
from repro.errors import SimulationError
from repro.runtime.cache import parse_size
from repro.runtime.executor import (
    DEFAULT_MAX_REDISPATCH, _check_cancelled, _dispatch_process_chunks,
    _evaluate_outcome, _Item, _Outcome, resolve_workers,
)
from repro.runtime.jobs import SensorJob
from repro.runtime.telemetry import Stopwatch, Telemetry

#: Environment variable overriding the per-stack sample count.
ENV_BATCH_SIZE = "REPRO_BATCH_SIZE"

#: Environment variable overriding the batch shard worker count.
ENV_BATCH_WORKERS = "REPRO_BATCH_WORKERS"

#: Environment variable bounding the per-stack tensor memory of the
#: auto-tuned batch size (``k``/``m``/``g`` suffixes, default 256 MB).
ENV_BATCH_MEM_BUDGET = "REPRO_BATCH_MEM_BUDGET"

#: Fallback samples per lockstep stack (explicit/env unset and the
#: auto-tune heuristic inapplicable - e.g. no work items to measure).
DEFAULT_BATCH_SIZE = 64

#: Default auto-tune memory budget per stack, bytes (256 MB).
DEFAULT_BATCH_MEM_BUDGET = 256 * 1024 ** 2

#: Ceiling on the auto-tuned stack size.  Past ~10^2 samples the
#: vectorization gain has flattened while the merged breakpoint schedule
#: (every sample integrates every other sample's clock corners) keeps
#: densifying, so bigger stacks get slower per sample.
MAX_AUTO_BATCH = 128


def resolve_batch_size(chunksize: Optional[int] = None) -> int:
    """Samples per stack: explicit arg > ``REPRO_BATCH_SIZE`` > default.

    The static resolution, kept for callers without work items in hand;
    :func:`resolve_batch_plan` adds the auto-tune tier the dispatcher
    uses.
    """
    size, _ = resolve_batch_plan(chunksize)
    return size


def resolve_batch_workers(
    batch_workers: Optional[int] = None, max_workers: Optional[int] = None
) -> int:
    """Shard worker count: arg > ``REPRO_BATCH_WORKERS`` > worker default.

    Falls back to :func:`~repro.runtime.executor.resolve_workers` (the
    ``max_workers`` argument / ``REPRO_MAX_WORKERS`` / half the CPUs),
    so a campaign that fans scalar jobs over N processes shards its
    batch stacks over the same N unless told otherwise.
    """
    if batch_workers is not None:
        return max(1, int(batch_workers))
    env = os.environ.get(ENV_BATCH_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{ENV_BATCH_WORKERS} must be an integer, got {env!r}"
            ) from None
    return resolve_workers(max_workers)


def resolve_batch_mem_budget() -> int:
    """Auto-tune memory budget: ``REPRO_BATCH_MEM_BUDGET`` or 256 MB."""
    env = os.environ.get(ENV_BATCH_MEM_BUDGET, "").strip()
    if not env:
        return DEFAULT_BATCH_MEM_BUDGET
    try:
        return max(1, parse_size(env))
    except ValueError:
        raise ValueError(
            f"{ENV_BATCH_MEM_BUDGET} must be a byte count "
            f"(optionally with k/m/g suffix), got {env!r}"
        ) from None


def auto_batch_size(
    n_jobs: int,
    workers: int,
    n_total: int,
    n_free: int,
    mem_budget: Optional[int] = None,
) -> int:
    """Auto-tuned samples per stack for one signature group.

    Three bounds, tightest wins:

    * **memory** - the ``(B, n, n)`` stack tensors must fit the budget:
      ``budget // stack_bytes_per_sample(n_total, n_free)``.  Irrelevant
      for the 10-transistor sensor (kilobytes per sample) but the
      operative bound at whole-chip node counts, where the per-sample
      Jacobian inverse alone is ``8 * n_free**2`` bytes;
    * **fan-out** - ``ceil(n_jobs / workers)``: never build a stack so
      large that shard workers sit idle while one integrates everything;
    * **cap** - :data:`MAX_AUTO_BATCH`, where the lockstep gain has
      flattened against the densifying merged breakpoint schedule.
    """
    per_sample = stack_bytes_per_sample(n_total, n_free)
    budget = resolve_batch_mem_budget() if mem_budget is None else mem_budget
    by_memory = max(1, int(budget) // per_sample)
    by_fanout = max(1, -(-int(n_jobs) // max(1, int(workers))))
    return max(1, min(by_memory, by_fanout, MAX_AUTO_BATCH))


def _estimate_dims(job: SensorJob) -> Tuple[int, int]:
    """(n_total, n_free) of one job's compiled sensor netlist.

    One scalar compile - cheap next to any transient - gives the
    auto-tuner the node counts its memory model needs.
    """
    from repro.analog.compile import CompiledCircuit
    from repro.runtime.prefix import _sensor_netlist

    _, netlist = _sensor_netlist(job.resolved())
    compiled = CompiledCircuit.compile(netlist)
    return compiled.n_total, compiled.n_free


def resolve_batch_plan(
    chunksize: Optional[int] = None,
    items: Optional[Sequence[_Item]] = None,
    workers: int = 1,
) -> Tuple[int, bool]:
    """Resolve ``(samples_per_stack, auto)`` for a dispatch.

    Resolution order: explicit ``chunksize`` > ``REPRO_BATCH_SIZE`` >
    :func:`auto_batch_size` over the largest :func:`batch_signature`
    group of ``items`` > :data:`DEFAULT_BATCH_SIZE`.  ``auto`` is True
    only when the heuristic chose the size - callers record it so a
    tuned size is always distinguishable from a pinned one.

    Note the auto-tuned size depends on the worker count (the fan-out
    bound), so runs that must be bit-compared across *different* worker
    counts should pin the size explicitly; the chosen size is recorded
    in telemetry for exactly that purpose.
    """
    if chunksize is not None:
        return max(1, int(chunksize)), False
    env = os.environ.get(ENV_BATCH_SIZE, "").strip()
    if env:
        try:
            return max(1, int(env)), False
        except ValueError:
            raise ValueError(
                f"{ENV_BATCH_SIZE} must be an integer, got {env!r}"
            ) from None
    if not items:
        return DEFAULT_BATCH_SIZE, False
    counts: Dict[Hashable, int] = {}
    for item in items:
        signature = batch_signature(item[1])
        counts[signature] = counts.get(signature, 0) + 1
    try:
        n_total, n_free = _estimate_dims(items[0][1])
    except (SimulationError, ValueError, KeyError):
        return DEFAULT_BATCH_SIZE, False
    return auto_batch_size(max(counts.values()), workers, n_total, n_free), True


def batch_signature(job: SensorJob) -> Hashable:
    """The fields every job of one lockstep stack must share.

    ``period``/``settle`` fix the shared time horizon, ``full_swing``/
    ``parasitics`` fix the circuit topology, and ``options`` fixes the
    engine knobs.  Everything else (skew, slews, loads, sizing, process
    corner, threshold) may vary per sample - that is the point.

    Warm-start jobs additionally carry their prefix key: a stack can
    fork from one broadcast checkpoint only when every sample shares the
    same skew-invariant prefix, so warm jobs with different prefixes (or
    warm and cold jobs) never share a stack.
    """
    resolved = job.resolved()
    prefix = None
    if resolved.warm_start:
        from repro.runtime.prefix import prefix_key, warm_eligible

        prefix = prefix_key(resolved) if warm_eligible(resolved) else "cold"
    return (
        resolved.period,
        resolved.settle,
        resolved.full_swing,
        resolved.parasitics,
        resolved.options,
        prefix,
    )


def group_batches(
    items: Sequence[_Item], batch_size: int
) -> List[List[_Item]]:
    """Split work items into batchable chunks.

    Items are grouped by :func:`batch_signature` preserving first-seen
    order, then each group is chunked to at most ``batch_size`` samples.
    The chunking is a pure function of ``(items, batch_size)`` - worker
    count never enters - which is what makes sharded runs bit-identical
    to single-worker runs at the same resolved size: sharding changes
    where a stack integrates, never what is in it.
    """
    groups: Dict[Hashable, List[_Item]] = {}
    order: List[Hashable] = []
    for item in items:
        signature = batch_signature(item[1])
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append(item)
    chunks: List[List[_Item]] = []
    for signature in order:
        group = groups[signature]
        for start in range(0, len(group), batch_size):
            chunks.append(group[start:start + batch_size])
    return chunks


def evaluate_batch_chunk(
    chunk: Sequence[_Item],
) -> Tuple[List[_Outcome], Dict[str, object]]:
    """Evaluate one stack; scalar-re-dispatch masked-out samples.

    Returns ``(outcomes, stats)`` where outcomes follow the executor's
    worker protocol and ``stats`` carries ``batched_samples`` (results
    produced by the lockstep engine), ``batch_fallbacks`` (samples that
    took the scalar path), the batch-level ``escalations`` tally and the
    stack's hot-loop ``kernel`` counters.  Runs either in the parent
    (single-worker path) or as the picklable pool worker of the sharded
    path - it touches no parent state, and all statistics travel home in
    ``stats``.
    """
    stats: Dict[str, object] = {
        "batched_samples": 0, "batch_fallbacks": 0, "escalations": {},
        "kernel": {}, "prefix": {},
    }
    outcomes: List[_Outcome] = []
    watch = Stopwatch()
    try:
        evaluation = evaluate_jobs_batch([item[1] for item in chunk])
    except (BatchTopologyError, SimulationError, np.linalg.LinAlgError):
        # The stack itself failed; every sample takes the scalar path
        # (same retries, same diagnostics - the fallback contract).
        evaluation = None
    if evaluation is None:
        for item in chunk:
            outcomes.append(_evaluate_outcome(item))
        stats["batch_fallbacks"] = len(chunk)
        return outcomes, stats

    stats["escalations"] = evaluation.escalations
    stats["kernel"] = evaluation.kernel_stats
    stats["prefix"] = evaluation.prefix
    share = watch.elapsed() / max(1, len(chunk))
    for item, result in zip(chunk, evaluation.results):
        if result is None:
            outcomes.append(_evaluate_outcome(item))
            stats["batch_fallbacks"] = int(stats["batch_fallbacks"]) + 1
        else:
            outcomes.append((item[0], "ok", result, share, 1))
            stats["batched_samples"] = int(stats["batched_samples"]) + 1
    return outcomes, stats


def _fold_stats(telemetry: Optional[Telemetry], stats: Dict[str, object]) -> None:
    """Record one chunk's stats into the campaign telemetry."""
    if telemetry is None:
        return
    telemetry.record_batch(
        samples=int(stats.get("batched_samples", 0)),
        fallbacks=int(stats.get("batch_fallbacks", 0)),
    )
    escalations = stats.get("escalations") or {}
    if escalations:
        telemetry.record_escalations(escalations)
    kernel = stats.get("kernel") or {}
    if kernel:
        telemetry.record_kernel(kernel)
    prefix = stats.get("prefix") or {}
    if prefix:
        telemetry.record_prefix(prefix)


@contextmanager
def _shared_prefix_store() -> Iterator[None]:
    """Guarantee a cross-worker disk store for prefix checkpoints.

    When the cache disk tier is enabled, the published checkpoints
    already live in ``<cache>/checkpoints`` and every worker - forked or
    spawned, first generation or rebuilt after a crash - reads them from
    there; nothing to do.  When it is disabled
    (``REPRO_CACHE_DISABLE``), a campaign-scoped temporary directory is
    exported via ``REPRO_PREFIX_SHARED_DIR`` for the duration of the
    dispatch: parent-built memory-tier checkpoints are promoted into it,
    workers inherit the variable when their pool forks/spawns, and the
    directory is removed when the dispatch ends.
    """
    from repro.runtime.cache import (
        ENV_PREFIX_SHARED_DIR, get_checkpoint_cache, reset_checkpoint_cache,
    )

    cache = get_checkpoint_cache()
    if cache.disk_enabled:
        yield
        return
    tmp = tempfile.mkdtemp(prefix="repro-prefix-")
    os.environ[ENV_PREFIX_SHARED_DIR] = tmp
    reset_checkpoint_cache()
    try:
        store = get_checkpoint_cache()
        for key, value in cache.memory_entries():
            store.put(key, value)
        yield
    finally:
        os.environ.pop(ENV_PREFIX_SHARED_DIR, None)
        reset_checkpoint_cache()
        shutil.rmtree(tmp, ignore_errors=True)


def dispatch_batches(
    items: Sequence[_Item],
    workers: int = 1,
    chunksize: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    on_outcome=None,
    cancel_event=None,
    max_redispatch: int = DEFAULT_MAX_REDISPATCH,
) -> List[_Outcome]:
    """Run all work items through the batch engine.

    Parameters
    ----------
    items:
        The executor's post-cache work items.
    workers:
        With ``workers > 1`` whole stacks fan out over a process pool
        (one lockstep stack per worker) through the executor's windowed
        submission core, inheriting its crash isolation: a stack whose
        worker dies is re-dispatched whole - bounded by
        ``max_redispatch`` - and outcomes merge in deterministic job
        order either way.  ``workers <= 1`` is the in-process
        single-worker path (``REPRO_BATCH_WORKERS=1``).
    chunksize:
        Samples per stack (see :func:`resolve_batch_plan` for the
        explicit > env > auto-tuned resolution).
    telemetry:
        Campaign accumulator receiving ``batched_samples`` /
        ``batch_fallbacks`` counters, the batch escalation tallies and
        the resolved stack size / worker count
        (:meth:`~repro.runtime.telemetry.Telemetry.record_batch_config`).
    on_outcome:
        Optional callback receiving each outcome as its stack completes
        (the executor assimilates/streams through this).
    cancel_event:
        Optional :class:`threading.Event` checked between stacks; when
        set, dispatch stops with a
        :class:`~repro.errors.CampaignCancelledError` (in-process stacks
        finish first - lockstep samples cannot be interrupted mid-grid;
        sharded pools are torn down).
    max_redispatch:
        Extra dispatches granted to a crashed stack before its samples
        are reported as :class:`~repro.errors.WorkerCrashError`
        outcomes (sharded path only).
    """
    batch_size, auto = resolve_batch_plan(chunksize, items, workers)
    chunks = group_batches(items, batch_size)
    effective = max(1, min(int(workers), len(chunks)))
    if telemetry is not None:
        telemetry.record_batch_config(
            stack_size=batch_size, workers=effective, auto=auto
        )

    if effective <= 1:
        outcomes: List[_Outcome] = []
        for chunk in chunks:
            _check_cancelled(cancel_event)
            chunk_outcomes, stats = evaluate_batch_chunk(chunk)
            _fold_stats(telemetry, stats)
            outcomes.extend(chunk_outcomes)
            if on_outcome is not None:
                for outcome in chunk_outcomes:
                    on_outcome(outcome)
        return outcomes

    # Sharded path: publish the warm prefixes once, then fan whole
    # stacks out through the executor's windowed dispatcher.  Stats ride
    # home in each worker's payload and are folded here in the parent.
    def consume(payload, emit) -> None:
        chunk_outcomes, stats = payload
        _fold_stats(telemetry, stats)
        for outcome in chunk_outcomes:
            emit(outcome)

    with _shared_prefix_store():
        from repro.runtime.prefix import publish_prefixes

        publish_prefixes([item[1] for item in items], telemetry)
        return _dispatch_process_chunks(
            chunks,
            workers=effective,
            timeout=None,
            max_redispatch=max_redispatch,
            telemetry=telemetry if telemetry is not None else Telemetry(),
            worker=evaluate_batch_chunk,
            consume=consume,
            isolate="chunk",
            on_outcome=on_outcome,
            cancel_event=cancel_event,
        )
