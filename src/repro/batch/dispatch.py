"""Campaign-side dispatch of the batch engine.

This module is what ``run_campaign(backend="batch")`` lazily imports.
It takes the executor's post-cache work items (cache hits were already
satisfied upstream, so only cold samples reach the stack), groups them
into batchable stacks, and returns outcomes in the executor's standard
worker protocol - so caching, journaling, telemetry and error policies
behave identically across backends.

Grouping and chunking
---------------------
Jobs are grouped by :func:`batch_signature` (the fields one lockstep run
must share: horizon, topology switches, engine options) and each group
is split into chunks of at most :func:`resolve_batch_size` samples
(``chunksize`` argument, else ``REPRO_BATCH_SIZE``, else
:data:`DEFAULT_BATCH_SIZE`).  Oversized batches trade diminishing
vectorization gains for a denser merged-breakpoint schedule, so the
default keeps stacks moderate.

Fallback contract
-----------------
A sample the lockstep engine masks out is re-evaluated through the
executor's scalar :func:`~repro.runtime.executor._evaluate_outcome` -
the same path the serial backend uses, with the same bounded
ConvergenceError retries and the same serialised error diagnostics.  If
an entire stack fails to build or integrate, every sample of that chunk
takes the scalar path.  Nothing is silently degraded: every re-dispatch
is counted in ``Telemetry.batch_fallbacks``.
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.compile import BatchTopologyError
from repro.batch.response import evaluate_jobs_batch
from repro.errors import SimulationError
from repro.runtime.executor import (
    _check_cancelled, _evaluate_outcome, _Item, _mp_context, _Outcome,
)
from repro.runtime.jobs import SensorJob
from repro.runtime.telemetry import Stopwatch, Telemetry

#: Environment variable overriding the per-stack sample count.
ENV_BATCH_SIZE = "REPRO_BATCH_SIZE"

#: Default samples per lockstep stack.
DEFAULT_BATCH_SIZE = 64


def resolve_batch_size(chunksize: Optional[int] = None) -> int:
    """Samples per stack: explicit arg > ``REPRO_BATCH_SIZE`` > default."""
    if chunksize is not None:
        return max(1, int(chunksize))
    env = os.environ.get(ENV_BATCH_SIZE, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{ENV_BATCH_SIZE} must be an integer, got {env!r}"
            ) from None
    return DEFAULT_BATCH_SIZE


def batch_signature(job: SensorJob) -> Hashable:
    """The fields every job of one lockstep stack must share.

    ``period``/``settle`` fix the shared time horizon, ``full_swing``/
    ``parasitics`` fix the circuit topology, and ``options`` fixes the
    engine knobs.  Everything else (skew, slews, loads, sizing, process
    corner, threshold) may vary per sample - that is the point.

    Warm-start jobs additionally carry their prefix key: a stack can
    fork from one broadcast checkpoint only when every sample shares the
    same skew-invariant prefix, so warm jobs with different prefixes (or
    warm and cold jobs) never share a stack.
    """
    resolved = job.resolved()
    prefix = None
    if resolved.warm_start:
        from repro.runtime.prefix import prefix_key, warm_eligible

        prefix = prefix_key(resolved) if warm_eligible(resolved) else "cold"
    return (
        resolved.period,
        resolved.settle,
        resolved.full_swing,
        resolved.parasitics,
        resolved.options,
        prefix,
    )


def group_batches(
    items: Sequence[_Item], batch_size: int
) -> List[List[_Item]]:
    """Split work items into batchable chunks.

    Items are grouped by :func:`batch_signature` preserving first-seen
    order, then each group is chunked to at most ``batch_size`` samples.
    """
    groups: Dict[Hashable, List[_Item]] = {}
    order: List[Hashable] = []
    for item in items:
        signature = batch_signature(item[1])
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append(item)
    chunks: List[List[_Item]] = []
    for signature in order:
        group = groups[signature]
        for start in range(0, len(group), batch_size):
            chunks.append(group[start:start + batch_size])
    return chunks


def evaluate_batch_chunk(
    chunk: Sequence[_Item],
) -> Tuple[List[_Outcome], Dict[str, object]]:
    """Evaluate one stack; scalar-re-dispatch masked-out samples.

    Returns ``(outcomes, stats)`` where outcomes follow the executor's
    worker protocol and ``stats`` carries ``batched_samples`` (results
    produced by the lockstep engine), ``batch_fallbacks`` (samples that
    took the scalar path), the batch-level ``escalations`` tally and the
    stack's hot-loop ``kernel`` counters.
    """
    stats: Dict[str, object] = {
        "batched_samples": 0, "batch_fallbacks": 0, "escalations": {},
        "kernel": {}, "prefix": {},
    }
    outcomes: List[_Outcome] = []
    watch = Stopwatch()
    try:
        evaluation = evaluate_jobs_batch([item[1] for item in chunk])
    except (BatchTopologyError, SimulationError, np.linalg.LinAlgError):
        # The stack itself failed; every sample takes the scalar path
        # (same retries, same diagnostics - the fallback contract).
        evaluation = None
    if evaluation is None:
        for item in chunk:
            outcomes.append(_evaluate_outcome(item))
        stats["batch_fallbacks"] = len(chunk)
        return outcomes, stats

    stats["escalations"] = evaluation.escalations
    stats["kernel"] = evaluation.kernel_stats
    stats["prefix"] = evaluation.prefix
    share = watch.elapsed() / max(1, len(chunk))
    for item, result in zip(chunk, evaluation.results):
        if result is None:
            outcomes.append(_evaluate_outcome(item))
            stats["batch_fallbacks"] = int(stats["batch_fallbacks"]) + 1
        else:
            outcomes.append((item[0], "ok", result, share, 1))
            stats["batched_samples"] = int(stats["batched_samples"]) + 1
    return outcomes, stats


def _fold_stats(telemetry: Optional[Telemetry], stats: Dict[str, object]) -> None:
    """Record one chunk's stats into the campaign telemetry."""
    if telemetry is None:
        return
    telemetry.record_batch(
        samples=int(stats.get("batched_samples", 0)),
        fallbacks=int(stats.get("batch_fallbacks", 0)),
    )
    escalations = stats.get("escalations") or {}
    if escalations:
        telemetry.record_escalations(escalations)
    kernel = stats.get("kernel") or {}
    if kernel:
        telemetry.record_kernel(kernel)
    prefix = stats.get("prefix") or {}
    if prefix:
        telemetry.record_prefix(prefix)


def dispatch_batches(
    items: Sequence[_Item],
    workers: int = 1,
    chunksize: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    on_outcome=None,
    cancel_event=None,
) -> List[_Outcome]:
    """Run all work items through the batch engine.

    Parameters
    ----------
    items:
        The executor's post-cache work items.
    workers:
        With ``workers > 1`` whole stacks fan out over a process pool
        (one stack per task); a broken pool re-evaluates the affected
        stack in-process, so crashes cost wall time, not results.
    chunksize:
        Samples per stack (see :func:`resolve_batch_size`).
    telemetry:
        Campaign accumulator receiving ``batched_samples`` /
        ``batch_fallbacks`` counters and the batch escalation tallies.
    on_outcome:
        Optional callback receiving each outcome as its stack completes
        (the executor assimilates/streams through this).
    cancel_event:
        Optional :class:`threading.Event` checked between stacks; when
        set, dispatch stops with a
        :class:`~repro.errors.CampaignCancelledError` (a running stack
        finishes - lockstep samples cannot be interrupted mid-grid).
    """
    chunks = group_batches(items, resolve_batch_size(chunksize))
    outcomes: List[_Outcome] = []

    def emit(chunk_outcomes: List[_Outcome]) -> None:
        outcomes.extend(chunk_outcomes)
        if on_outcome is not None:
            for outcome in chunk_outcomes:
                on_outcome(outcome)

    if workers <= 1 or len(chunks) <= 1:
        for chunk in chunks:
            _check_cancelled(cancel_event)
            chunk_outcomes, stats = evaluate_batch_chunk(chunk)
            _fold_stats(telemetry, stats)
            emit(chunk_outcomes)
        return outcomes

    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)), mp_context=_mp_context()
    ) as pool:
        futures = []
        for chunk in chunks:
            try:
                futures.append((pool.submit(evaluate_batch_chunk, chunk), chunk))
            except BrokenProcessPool:
                futures.append((None, chunk))
        for future, chunk in futures:
            _check_cancelled(cancel_event)
            chunk_outcomes: Optional[List[_Outcome]] = None
            stats: Optional[Dict[str, object]] = None
            if future is not None:
                try:
                    chunk_outcomes, stats = future.result()
                except BrokenProcessPool:
                    chunk_outcomes = None
            if chunk_outcomes is None:
                # Pool died under this stack: rerun it in-process.
                if telemetry is not None:
                    telemetry.record_worker_crash()
                    telemetry.record_redispatch(len(chunk))
                chunk_outcomes, stats = evaluate_batch_chunk(chunk)
            _fold_stats(telemetry, stats)
            emit(chunk_outcomes)
    return outcomes
