"""Lockstep transient integration of a stacked circuit batch.

:func:`batch_transient` advances every sample of a
:class:`~repro.batch.compile.BatchCompiledCircuit` along *one shared
time axis*: the step size ``h``, breakpoint schedule and BE/trapezoidal
switching are common to the batch, while Newton convergence, local
truncation error and liveness are tracked per sample.

Mask semantics
--------------
Three per-sample masks drive the loop:

* ``alive`` - samples still integrated in lockstep.  Dead samples keep
  their last accepted state frozen (their recorded waveform stops being
  meaningful at the time of death) and are excluded from every residual,
  error and growth computation.
* ``converged`` (inside the Newton solve) - samples whose update norm
  dropped below ``vntol`` (or whose contraction-extrapolated next update
  did - the scalar engine's predicted-acceptance rule); they freeze
  while the stragglers iterate on.
* ``failed`` (inside the Newton solve) - samples whose linear solve went
  singular or produced NaN/Inf; their inverse comes back as NaNs from
  the batched factorization (see :func:`repro.analog.kernels.raw_inv`),
  the non-finite step guard freezes them at the last finite iterate,
  and they cannot poison their batchmates (each sample owns its own
  cached inverse).

Step control is the scalar engine's predictor/corrector scheme applied
to the worst active sample: any active sample rejecting a step shrinks
``h`` for the whole batch (the "drop to the batch's min accepted h"
contract), and growth follows the largest active error.  The growth
ceiling matches the scalar 2x clip: with identical control laws a batch
of size one walks *exactly* the scalar grid, so a single-sample batch is
bit-identical to the scalar engine - the property the white-box
equivalence tests pin.

Fallback contract
-----------------
The in-batch escalation ladder is *step-halving only*.  A sample that
still refuses to converge at the ``dt_min`` floor (or goes non-finite,
or fails its operating point) is masked out with a recorded reason -
never rescued half-heartedly in batch - and the caller re-dispatches it
to the scalar engine, which owns the full damped-Newton/gmin-restart
ladder and the failure diagnostics of PR 2.  ``ok`` on the result marks
the samples whose lockstep integration completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analog.dcop import dc_operating_point
from repro.analog.engine import TransientCheckpoint, TransientOptions
from repro.analog.kernels import REUSE_SLOWDOWN, KernelStats, c_einsum, raw_inv
from repro.analog.waveform import Waveform
from repro.batch.compile import BatchCompiledCircuit
from repro.errors import ConvergenceError

#: Growth-factor ceiling of the batch step controller.  Kept equal to
#: the scalar engine's 2x clip on purpose: with the same control law a
#: single-sample batch reproduces the scalar grid point for point, which
#: makes batch-vs-scalar bit-identity at ``B == 1`` a testable invariant
#: of the whole vectorised arithmetic path.
GROWTH_MAX = 2.0

#: Breakpoints of different samples closer than this are merged into one
#: restart (seconds).  Clock slews are >= 100 ps in every paper
#: workload, so a 1 ps merge cannot blur distinct waveform corners.
BREAKPOINT_MERGE_TOL = 1e-12


@dataclass
class BatchTransientResult:
    """Waveforms and masks of one lockstep run.

    Attributes
    ----------
    times:
        Shared accepted time points, ``(T,)``.
    voltages:
        Per recorded node, a ``(T, B)`` array; column ``b`` is sample
        ``b``'s waveform.  Columns of samples with ``ok[b] == False``
        are frozen at their last accepted value from the moment the
        sample was masked out and must not be interpreted.
    ok:
        ``(B,)`` bool; True where the sample completed in lockstep.
    escalations:
        Batch-level solver tally: ``"step-halving"`` events (each event
        shrank the shared step once) and the ``"dcop:*"`` rung counts of
        the per-sample operating points.
    fallback_reasons:
        ``sample index -> reason`` for every masked-out sample (the
        caller's re-dispatch list).
    kernel_stats:
        Hot-loop observability record of the run
        (:meth:`repro.analog.kernels.KernelStats.as_dict`).
        ``newton_iterations``/``factorizations``/``jacobian_reuses``
        count *per sample* (so ratios are comparable with the scalar
        engine's); ``assembles`` counts whole-stack kernel calls.
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    ok: np.ndarray
    escalations: Dict[str, int] = field(default_factory=dict)
    fallback_reasons: Dict[int, str] = field(default_factory=dict)
    kernel_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def batch_size(self) -> int:
        """Number of samples ``B``."""
        return int(self.ok.shape[0])

    def wave(self, node: str, sample: int) -> Waveform:
        """Waveform of ``node`` for one sample."""
        if node not in self.voltages:
            raise KeyError(f"node {node!r} was not recorded")
        return Waveform(
            times=self.times,
            values=self.voltages[node][:, sample],
            name=f"{node}[{sample}]",
        )

    def __len__(self) -> int:
        return len(self.times)


def _masked_solve(
    jacobian: np.ndarray, rhs: np.ndarray, active: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``jacobian[b] @ x[b] = rhs[b]`` for the active samples.

    Inactive samples are neutralised with an identity system so the
    batched solve cannot be poisoned by their (possibly stale) matrices.
    Active samples whose matrix is singular or non-finite are resolved
    individually and reported as unsolved rather than raising for the
    whole batch.

    Returns ``(x, solved)``: ``x`` is zero wherever ``solved`` is False.
    """
    B, nf, _ = jacobian.shape
    eye = np.eye(nf)
    j = np.where(active[:, None, None], jacobian, eye)
    r = np.where(active[:, None], rhs, 0.0)
    solved = active.copy()

    bad = active & (
        ~np.isfinite(j).all(axis=(1, 2)) | ~np.isfinite(r).all(axis=1)
    )
    if bad.any():
        j[bad] = eye
        r[bad] = 0.0
        solved &= ~bad

    try:
        x = np.linalg.solve(j, r[..., None])[..., 0]
    except np.linalg.LinAlgError:
        x = np.zeros((B, nf))
        for b in np.flatnonzero(solved):
            try:
                xb = np.linalg.solve(j[b], r[b])
            except np.linalg.LinAlgError:
                solved[b] = False
                continue
            if not np.isfinite(xb).all():
                solved[b] = False
                continue
            x[b] = xb
        return x, solved

    nonfinite = solved & ~np.isfinite(x).all(axis=1)
    if nonfinite.any():
        x[nonfinite] = 0.0
        solved &= ~nonfinite
    x[~solved] = 0.0
    return x, solved


class _BatchNewtonWork:
    """Per-run scratch of the lockstep Newton loop.

    The batched twin of :class:`repro.analog.engine._NewtonWork`: owns
    the reusable residual/Jacobian buffers, the cached per-sample
    Jacobian inverses of the modified-Newton policy - keyed on the
    shared ``(h, alpha)`` scaling and persisting across time steps, with
    a per-sample ``valid`` mask - and the
    :class:`~repro.analog.kernels.KernelStats` counters.
    """

    def __init__(
        self, batch: BatchCompiledCircuit, options: TransientOptions
    ) -> None:
        B, n, nf = batch.batch_size, batch.n_total, batch.n_free
        self.kernel = batch.kernel()
        self.stats = KernelStats()
        self.modified = options.jacobian_policy == "reuse"
        self.qh = np.empty((B, nf))
        self.rhs0 = np.empty((B, nf))
        self.neg_res = np.empty((B, nf))
        self.delta = np.empty((B, nf))
        self.tmp = np.empty((B, nf))
        self.abs_buf = np.empty((B, nf))
        self.j_inv = np.empty((B, nf, nf))
        self.step = np.empty(B)
        self.step_prev = np.empty(B)
        self.c_rows = batch.C[:, :nf, :]
        self.c_over_h = np.empty((B, nf, n))
        self.h_scaled: Optional[float] = None
        self.valid = np.zeros(B, dtype=bool)
        self.key: Optional[Tuple[float, float]] = None

    def scaled_c(self, h: float) -> np.ndarray:
        """``C[:, :n_free, :] / h``, recomputed only when ``h`` changes."""
        if self.h_scaled != h:
            np.multiply(self.c_rows, 1.0 / h, out=self.c_over_h)
            self.h_scaled = h
        return self.c_over_h


def stack_bytes_per_sample(
    n_total: int, n_free: int, itemsize: int = 8
) -> int:
    """Approximate resident bytes one sample adds to a lockstep stack.

    The dominant dense allocations a ``(B, n, n)`` stack carries *per
    sample*: the stacked linear MNA parts (``G`` and ``C``, each
    ``n_total**2``), the cached Jacobian inverse of the modified-Newton
    policy (``n_free**2``), the ``C[:, :n_free, :] / h`` scratch
    (``n_free * n_total``) and the handful of ``(B, n_free)`` Newton
    work vectors (see :class:`_BatchNewtonWork`).  The dispatcher's
    ``REPRO_BATCH_SIZE`` auto-tune divides its memory budget by this to
    bound the stack size - an estimate on purpose: it only needs to keep
    whole-chip-scale stacks (where ``n_free**2`` dominates) from blowing
    past the budget, not to account every transient history array.
    """
    n, nf = int(n_total), int(n_free)
    matrices = 2 * n * n + nf * nf + nf * n
    vectors = 16 * nf + 8
    return max(1, int(itemsize) * (matrices + vectors))


def _newton_step_batch(
    batch: BatchCompiledCircuit,
    v_guess: np.ndarray,
    v_sources: np.ndarray,
    q_prev: np.ndarray,
    f_prev: Optional[np.ndarray],
    h: float,
    alpha: float,
    options: TransientOptions,
    active: np.ndarray,
    work: Optional[_BatchNewtonWork] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One implicit step for the whole stack; ``alpha=1`` BE, ``0.5`` trap.

    Solves the scalar residual
    ``(q - q_prev)/h + alpha*f + (1-alpha)*f_prev = 0`` per sample, with
    the scalar engine's damping clip, modified-Newton factorization
    cache and predicted-acceptance rule applied per sample (see
    :func:`repro.analog.engine._newton_step` - the control flow here is
    that function's, vectorised, so a single-sample batch takes exactly
    the scalar decision sequence).  Samples converge (and freeze)
    individually; a sample whose solve goes non-finite is frozen at the
    last finite iterate with its cached factorization invalidated.

    Returns ``(v_new, converged)``; ``converged`` is a subset of
    ``active`` - the samples whose step succeeded.  Rows of
    non-converged samples hold their last iterate and must not be
    accepted.
    """
    n_free = batch.n_free
    if work is None:
        work = _BatchNewtonWork(batch, options)
    kernel, stats = work.kernel, work.stats
    v = v_guess.copy()
    v[:, n_free:] = v_sources[:, n_free:]

    modified = work.modified
    if not (modified and work.key == (h, alpha)):
        work.valid[:] = False  # never reuse across a system-scaling change
    valid = work.valid
    j_inv = work.j_inv
    c_over_h = work.scaled_c(h)
    # Iteration-invariant part of the negated residual:
    # ``q_prev / h - (1 - alpha) * f_prev``.
    rhs0, tmp = work.rhs0, work.tmp
    np.multiply(q_prev[:, :n_free], 1.0 / h, out=rhs0)
    if f_prev is not None:
        np.multiply(f_prev[:, :n_free], 1.0 - alpha, out=tmp)
        rhs0 -= tmp

    neg_res, delta, qh = work.neg_res, work.delta, work.qh
    abs_buf, step, step_prev = work.abs_buf, work.step, work.step_prev
    step_prev[:] = np.inf
    step[:] = 0.0
    vntol = options.vntol
    slowdown = REUSE_SLOWDOWN
    is_be = alpha == 1.0
    converged = np.zeros(batch.batch_size, dtype=bool)
    live = active.copy()

    # Hot-loop counters accumulate in locals; flushed in ``finally``.
    n_iters = n_assembles = n_factor = n_refactor = n_reuse = 0
    assemble_acc = factor_acc = solve_acc = 0.0

    try:
        for iteration in range(options.max_newton):
            if not live.any():
                break
            need_fresh = live & ~valid
            t0 = perf_counter()
            f, j = kernel.eval(v, with_jacobian=bool(need_fresh.any()))
            n_iters += int(np.count_nonzero(live))
            n_assembles += 1
            # Negated residual: rhs0 - (C/h) @ v - alpha * f(v).
            c_einsum("bij,bj->bi", c_over_h, v, out=qh)
            np.subtract(rhs0, qh, out=neg_res)
            if is_be:
                neg_res -= f[:, :n_free]
            else:
                np.multiply(f[:, :n_free], alpha, out=tmp)
                neg_res -= tmp
            assemble_acc += perf_counter() - t0

            try_stale = live & valid
            if try_stale.any():
                t0 = perf_counter()
                c_einsum("bij,bj->bi", j_inv, neg_res, out=delta)
                if n_free:
                    np.abs(delta, out=abs_buf)
                    np.maximum.reduce(abs_buf, axis=1, out=step)
                else:
                    step[:] = 0.0
                solve_acc += perf_counter() - t0
                # NaN fails the comparison too, triggering a refactor.
                reuse = try_stale & (step <= slowdown * step_prev)
                n_reuse += int(np.count_nonzero(reuse))
                n_refactor += int(np.count_nonzero(try_stale & ~reuse))
                fresh = live & ~reuse
            else:
                fresh = need_fresh

            if fresh.any():
                if j is None:
                    t0 = perf_counter()
                    f, j = kernel.eval(v, with_jacobian=True)
                    n_assembles += 1
                    assemble_acc += perf_counter() - t0
                t0 = perf_counter()
                sub = np.flatnonzero(fresh)
                jac = j[sub][:, :n_free, :n_free] * alpha
                jac += c_over_h[sub][:, :, :n_free]
                # Singular jac -> NaN inverse (see kernels.raw_inv); the
                # non-finite step guard below freezes the sample.
                inv_sub = raw_inv(jac)
                j_inv[sub] = inv_sub
                valid[sub] = modified
                work.key = (h, alpha)
                n_factor += len(sub)
                factor_acc += perf_counter() - t0
                t0 = perf_counter()
                delta[sub] = c_einsum("bij,bj->bi", inv_sub, neg_res[sub])
                if n_free:
                    np.abs(delta, out=abs_buf)
                    np.maximum.reduce(abs_buf, axis=1, out=step)
                else:
                    step[:] = 0.0
                solve_acc += perf_counter() - t0

            # Catches NaN and +inf in one comparison, before the update
            # is applied - the frozen iterate stays finite.
            bad = live & ~(step < np.inf)
            if bad.any():
                valid &= ~bad
                live &= ~bad
                if not live.any():
                    break

            over = live & (step > 1.0)
            if over.any():
                delta[over] *= (1.0 / step[over])[:, None]
            v[live, :n_free] += delta[live]

            done = live & (step < vntol)
            if iteration:
                # Predicted acceptance, per sample: the contraction-
                # extrapolated next update ``step^2 / step_prev`` already
                # under vntol accepts one evaluate/solve round early
                # (``iteration > 0`` guards the step_prev = inf
                # bootstrap) - the scalar engine's exact rule.
                done |= live & (step * step < vntol * step_prev)
            converged |= done
            live &= ~done
            np.copyto(step_prev, step, where=live)
    finally:
        stats.newton_iterations += n_iters
        stats.assembles += n_assembles
        stats.factorizations += n_factor
        stats.refactorizations += n_refactor
        stats.jacobian_reuses += n_reuse
        stats.assemble_s += assemble_acc
        stats.factor_s += factor_acc
        stats.solve_s += solve_acc
    return v, converged


def _newton_static_batch(
    batch: BatchCompiledCircuit,
    v: np.ndarray,
    shunt: float,
    target: np.ndarray,
    active: np.ndarray,
    max_iter: int = 200,
    vntol: float = 1e-9,
    itol: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched twin of :func:`repro.analog.dcop._newton_static`.

    Solves ``i(v) + shunt * (v - target) = 0`` on the free nodes of every
    active sample, with the scalar solver's damping clip and two-part
    (update + residual) convergence test.  Returns ``(v, converged)``.
    """
    n_free = batch.n_free
    v = v.copy()
    converged = np.zeros(batch.batch_size, dtype=bool)
    live = active.copy()
    for _ in range(max_iter):
        if not live.any():
            break
        f, j = batch.device_currents(v, with_jacobian=True)
        residual = f[:, :n_free] + shunt * (v[:, :n_free] - target[:, :n_free])
        jacobian = j[:, :n_free, :n_free] + shunt * np.eye(n_free)
        delta, solved = _masked_solve(jacobian, -residual, live)
        live &= solved

        step = np.max(np.abs(delta), axis=1)
        over = live & (step > 1.0)
        if over.any():
            delta[over] *= (1.0 / step[over])[:, None]
        v[live, :n_free] += delta[live]

        blown = live & ~np.isfinite(v[:, :n_free]).all(axis=1)
        live &= ~blown

        res_max = np.max(np.abs(residual), axis=1)
        f_scale = np.maximum(np.max(np.abs(f[:, :n_free]), axis=1), 1e-12)
        res_tol = np.maximum(itol, 1e-6 * f_scale)
        just_done = live & (step < vntol) & (res_max < res_tol)
        converged |= just_done
        live &= ~just_done
    return v, converged


def _batch_dcop(
    batch: BatchCompiledCircuit,
    t: float,
    initial: Optional[Sequence[Optional[Dict[str, float]]]],
    escalations: Dict[str, int],
    fallback_reasons: Dict[int, str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Operating points for the whole stack at time ``t``.

    The direct Newton rung runs vectorized over the batch; samples it
    cannot converge fall back to the scalar
    :func:`~repro.analog.dcop.dc_operating_point` (full three-rung
    ladder).  Samples the scalar ladder also rejects are masked out with
    reason ``"dcop"``.

    Returns ``(v, alive)`` with ``v`` of shape ``(B, n_total)``.
    """
    B = batch.batch_size
    v = batch.source_voltages(t)
    vdd = np.max(v[:, batch.n_free:], axis=1, initial=0.0)
    v[:, : batch.n_free] = (vdd / 2.0)[:, None]
    if initial is not None:
        for b, guesses in enumerate(initial):
            if not guesses:
                continue
            for node, voltage in guesses.items():
                index = batch.node_index.get(node)
                if index is not None and index < batch.n_free:
                    v[b, index] = voltage

    alive = np.ones(B, dtype=bool)
    if batch.n_free == 0:
        escalations["dcop:direct"] = escalations.get("dcop:direct", 0) + B
        return v, alive

    target = v.copy()
    solved, converged = _newton_static_batch(
        batch, v, 1e-12, target, np.ones(B, dtype=bool)
    )
    v = np.where(converged[:, None], solved, v)
    escalations["dcop:direct"] = (
        escalations.get("dcop:direct", 0) + int(converged.sum())
    )

    for b in np.flatnonzero(~converged):
        guesses = initial[b] if initial is not None else None
        stats: Dict[str, object] = {}
        try:
            v[b] = dc_operating_point(
                batch.circuits[b], t=t, initial=guesses, stats=stats
            )
        except ConvergenceError:
            alive[b] = False
            fallback_reasons[b] = "dcop"
            continue
        rung = f"dcop:{stats.get('dcop_rung', 'direct')}"
        escalations[rung] = escalations.get(rung, 0) + 1
    return v, alive


def merge_breakpoints(points: Iterable[float], tol: float) -> List[float]:
    """Coalesce sorted breakpoints closer than ``tol`` into their first
    representative, bounding the number of ``dt_start`` restarts the
    merged schedule forces on the batch."""
    merged: List[float] = []
    for point in sorted(points):
        if not merged or point - merged[-1] > tol:
            merged.append(point)
    return merged


def batch_transient(
    batch: BatchCompiledCircuit,
    t_stop: float,
    t_start: float = 0.0,
    record: Optional[Iterable[str]] = None,
    initial: Optional[Sequence[Optional[Dict[str, float]]]] = None,
    options: Optional[TransientOptions] = None,
    resume_from: Optional[TransientCheckpoint] = None,
) -> BatchTransientResult:
    """Integrate every sample of ``batch`` in lockstep over
    ``[t_start, t_stop]``.

    Parameters
    ----------
    batch:
        Stacked circuits from :func:`~repro.batch.compile.compile_batch`.
    record:
        Node names whose voltages to keep; defaults to every node.
    initial:
        Per-sample initial-guess dicts for the operating point (length
        ``B``; entries may be ``None``).  Ignored with ``resume_from``.
    options:
        Scalar-engine knobs, shared by the batch; the in-batch ladder
        honours only the ``"step-halving"`` rung (see the module
        docstring's fallback contract).
    resume_from:
        A *scalar* :class:`~repro.analog.engine.TransientCheckpoint`
        broadcast over the whole stack: every sample starts from the
        same prefix state (``t_start`` is taken from the checkpoint, the
        per-sample operating-point solves are skipped) and the first
        step uses the backward-Euler-after-breakpoint restart, exactly
        like the scalar resume.  Legal because
        :func:`~repro.batch.compile.compile_batch` enforces an identical
        node ordering across samples - which is also checked here
        against the checkpoint's ``nodes`` guard.

    Unlike the scalar :func:`~repro.analog.engine.transient`, this never
    raises on a non-convergent sample: the sample is masked out
    (``ok[b] = False``, reason recorded) and the survivors continue.
    """
    options = options or TransientOptions()
    B = batch.batch_size
    n_free = batch.n_free

    record = list(record) if record is not None else sorted(batch.node_index)
    for node in record:
        if node not in batch.node_index:
            raise KeyError(f"cannot record unknown node {node!r}")

    if resume_from is not None:
        order = tuple(sorted(batch.node_index, key=batch.node_index.get))
        if resume_from.nodes != order:
            raise ValueError(
                "checkpoint node order does not match batch "
                f"(checkpoint {resume_from.nodes}, batch {order})"
            )
        t_start = resume_from.t
    if t_stop <= t_start:
        raise ValueError(f"need t_stop > t_start (got {t_start} .. {t_stop})")

    raw = [b for b in batch.breakpoints(t_start, t_stop) if b > t_start]
    raw.append(t_stop)
    breakpoints = merge_breakpoints(raw, BREAKPOINT_MERGE_TOL)

    escalations: Dict[str, int] = {}
    fallback_reasons: Dict[int, str] = {}
    if resume_from is not None:
        v = np.tile(resume_from.state, (B, 1))
        alive = np.ones(B, dtype=bool)
    else:
        v, alive = _batch_dcop(
            batch, t_start, initial, escalations, fallback_reasons
        )

    work = _BatchNewtonWork(batch, options)
    kernel, stats = work.kernel, work.stats

    times: List[float] = [t_start]
    states: List[np.ndarray] = [v.copy()]

    t = t_start
    h = options.dt_start
    eps_t = 64.0 * np.spacing(max(abs(t_stop), abs(t_start), 1e-12))
    bp_index = 0
    force_be = True
    if resume_from is not None:
        v_prev = np.tile(resume_from.state_prev, (B, 1))
        t_prev = resume_from.t_prev
    else:
        v_prev = v.copy()
        t_prev = t

    # Reusable step buffers, mirroring the scalar engine's workspaces:
    # sources, predictor, charge history and the LTE weight/error
    # scratch - the lockstep loop allocates only the accepted states it
    # records and the Newton iterate it hands back.
    n_total = batch.n_total
    v_sources = np.zeros((B, n_total))
    batch.source_voltages_into(t_start, v_sources)  # constants written once
    v_pred = np.empty((B, n_total))
    q_prev = np.empty((B, n_total))
    weight = np.empty((B, n_free))
    err_buf = np.empty((B, n_free))
    err_all = np.zeros(B)

    def _mask(samples: np.ndarray, reason: str) -> None:
        for b in np.flatnonzero(samples):
            alive[b] = False
            fallback_reasons[b] = reason

    while t < t_stop - eps_t and alive.any():
        while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + eps_t:
            bp_index += 1
        next_bp = breakpoints[bp_index] if bp_index < len(breakpoints) else t_stop
        h = min(h, options.dt_max, t_stop - t)
        hit_bp = False
        if t + h >= next_bp - eps_t:
            h = next_bp - t
            hit_bp = True
        if h < options.dt_min:
            _mask(alive.copy(), "step-underflow")
            break

        t_new = t + h
        batch.source_voltages_into(t_new, v_sources, dynamic_only=True)
        # Predictor: linear extrapolation of the last two accepted points
        # (same rounding order as the scalar engine's in-place form).
        if t > t_prev:
            np.subtract(v, v_prev, out=v_pred)
            v_pred /= t - t_prev
            v_pred *= h
            v_pred += v
        else:
            np.copyto(v_pred, v)

        alpha = 1.0 if force_be else 0.5
        f_hist = None
        if not force_be:
            f_hist, _ = kernel.eval(v, with_jacobian=False, stats=stats)
        c_einsum("bij,bj->bi", batch.C, v, out=q_prev)

        v_new, converged = _newton_step_batch(
            batch, v_pred, v_sources, q_prev, f_hist, h, alpha, options,
            alive, work=work,
        )
        blown = converged & ~np.isfinite(v_new).all(axis=1)
        converged &= ~blown
        stuck = alive & ~converged
        masked_now = False
        if stuck.any():
            if h * 0.25 >= options.dt_min and "step-halving" in options.escalation:
                # The whole batch retries at the failing samples' pace.
                escalations["step-halving"] = (
                    escalations.get("step-halving", 0) + 1
                )
                h *= 0.25
                force_be = True
                continue
            # Floor reached: mask the stragglers out, keep the rest.
            _mask(stuck, "non-finite" if blown.any() else "newton-floor")
            masked_now = True
            if not alive.any():
                break

        t_accept = perf_counter()
        # Per-sample LTE on the active samples, computed into the reused
        # buffers (rounding order matches the scalar expression exactly).
        if n_free:
            np.abs(v_new[:, :n_free], out=weight)
            np.maximum(weight, 1.0, out=weight)
            weight *= options.reltol
            weight += options.vabstol
            np.subtract(v_new[:, :n_free], v_pred[:, :n_free], out=err_buf)
            np.abs(err_buf, out=err_buf)
            err_buf /= weight
            np.maximum.reduce(err_buf, axis=1, out=err_all)
        else:
            err_all[:] = 0.0
        err_active = err_all[alive]
        err_worst = float(err_active.max()) if err_active.size else 0.0

        if (
            not masked_now
            and err_worst > options.lte_reject
            and not hit_bp
            and h > 4 * options.dt_min
        ):
            h *= 0.4  # any rejecting sample shrinks the shared step
            stats.accept_s += perf_counter() - t_accept
            continue

        # Accept: dead samples carry their last state forward frozen.
        np.copyto(v_new, v, where=~alive[:, None])
        v_prev, t_prev = v, t
        v, t = v_new, t_new
        times.append(t)
        states.append(v)  # _newton_step_batch returned a fresh array
        force_be = False
        if hit_bp or masked_now:
            h = options.dt_start
            force_be = True
        else:
            grow = 0.9 * (1.0 / max(err_worst, 1e-12)) ** (1.0 / 3.0)
            h *= float(np.clip(grow, 0.4, GROWTH_MAX))
        stats.accept_s += perf_counter() - t_accept

    time_array = np.asarray(times)
    state_array = np.asarray(states)  # (T, B, n)
    voltages = {
        node: state_array[:, :, batch.node_index[node]].copy() for node in record
    }
    return BatchTransientResult(
        times=time_array,
        voltages=voltages,
        ok=alive.copy(),
        escalations=escalations,
        fallback_reasons=fallback_reasons,
        kernel_stats=stats.as_dict(),
    )
