"""Batched twin of the scalar evaluation kernel.

:class:`BatchKernel` assembles the device residual and Jacobian of a
whole :class:`~repro.batch.compile.BatchCompiledCircuit` stack into
preallocated buffers, mirroring :class:`repro.analog.kernels.ScalarKernel`
*operation for operation*: the same fixed-target scatter plan, the same
sign-premultiplied gather, the same ``minimum``/``negative(where=)``
branchless forms, the same scratch-row evaluation order of the level-1
model.  Every elementwise operation keeps the scalar kernel's operand
order, and the flattened Jacobian scatter indexes sample-major with the
scalar's six-block stamp order inside each sample - so a batch of size
one adds its weights in exactly the scalar sequence.  That is what keeps
the ``B == 1`` batch bit-identical to the scalar engine (the white-box
equivalence tests pin it).

Model-card arrays (``m_vt``/``m_beta``/``m_lam``) are read from the
owning batch at every call, so post-compile parameter mutations (fault
poisoning in the mask-semantics tests) are honoured; only connectivity
is frozen into the scatter plan.  Buffers are reused across calls - a
kernel must not be shared across threads.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional, Tuple

import numpy as np

from repro.analog.kernels import (
    KernelStats,
    c_einsum,
    mosfet_scatter_plan,
)


class BatchKernel:
    """Reusable-buffer device evaluation for one compiled batch.

    Built lazily by :meth:`BatchCompiledCircuit.kernel`.  All scratch is
    sized ``(B, M)`` at construction; the evaluation itself allocates
    only what :func:`np.bincount` returns.
    """

    def __init__(self, batch: Any) -> None:
        self.batch = batch
        B = batch.batch_size
        n = batch.n_total
        m = batch.m_d.size
        self.B = B
        self.n = n
        self.m = m
        self.f_idx, self.j_idx, self.incidence = mosfet_scatter_plan(
            batch.m_d, batch.m_g, batch.m_s, n
        )
        #: Sample-major flattened Jacobian targets: sample ``b``'s block
        #: keeps the scalar six-stamp order, so the ``B == 1`` bincount
        #: accumulates in the scalar kernel's exact sequence.
        self._j_idx_all = (
            np.arange(B, dtype=np.intp)[:, None] * (n * n)
            + self.j_idx[None, :]
        ).ravel()
        # Reused output/scratch buffers (not thread-safe, by design).
        self.f = np.empty((B, n))
        self.j = np.empty((B, n, n))
        self._j_flat = self.j.reshape(-1)
        self._fs = np.empty((B, n))
        self._jw = np.empty((B, 6, m))
        self._jw_flat = self._jw.reshape(-1)
        self._nnB = B * n * n
        self._b = np.empty((10, B, m))
        self._swap = np.empty((B, m), dtype=bool)
        self._sv = np.empty((B, 3 * m))
        self._idx_all = np.concatenate(
            [np.asarray(batch.m_d, dtype=np.intp),
             np.asarray(batch.m_g, dtype=np.intp),
             np.asarray(batch.m_s, dtype=np.intp)]
        )
        self._sign3 = np.tile(np.asarray(batch.m_sign, dtype=float), 3)

    def eval(
        self,
        v: np.ndarray,
        with_jacobian: bool = True,
        stats: Optional[KernelStats] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Assemble ``(f, j)`` at ``v`` (``(B, n)``) into reused buffers.

        The returned arrays are owned by the kernel and overwritten by
        the next call; callers that keep them must copy (the public
        :meth:`BatchCompiledCircuit.device_currents` does).
        """
        t0 = perf_counter() if stats is not None else 0.0
        batch = self.batch
        f = c_einsum("bij,bj->bi", batch.G, v, out=self.f)
        j = None
        if with_jacobian:
            j = self.j
            j[...] = batch.G
        if self.m == 0:
            if stats is not None:
                stats.assembles += 1
                stats.assemble_s += perf_counter() - t0
            return f, j

        m = self.m
        sv = np.take(v, self._idx_all, axis=1, out=self._sv)
        sv *= self._sign3
        svd = sv[:, :m]
        svg = sv[:, m:2 * m]
        svs = sv[:, 2 * m:]
        b = self._b
        dv = np.subtract(svd, svs, out=b[0])
        swap = np.less(dv, 0.0, out=self._swap)
        vds = np.abs(dv, out=b[1])
        vmin = np.minimum(svd, svs, out=b[2])
        vgs = np.subtract(svg, vmin, out=b[2])
        vov = np.subtract(vgs, batch.m_vt, out=b[3])
        np.maximum(vov, 0.0, out=vov)
        x = np.minimum(vds, vov, out=b[4])
        clm = np.multiply(batch.m_lam, vds, out=b[5])
        clm += 1.0
        xx = np.multiply(x, x, out=b[6])
        xx *= 0.5
        core = np.multiply(vov, x, out=b[7])
        core -= xx
        ids = np.multiply(batch.m_beta, core, out=b[8])
        ids *= clm
        w = np.multiply(ids, batch.m_sign, out=b[9])
        np.negative(w, out=w, where=swap)
        f += c_einsum("nm,bm->bn", self.incidence, w, out=self._fs)

        if with_jacobian:
            gm = np.multiply(batch.m_beta, x, out=b[8])  # ids row is spent
            gm *= clm
            gds = np.subtract(vov, x, out=b[9])
            gds *= clm
            lamcore = core
            lamcore *= batch.m_lam
            gds += lamcore
            gds *= batch.m_beta
            jw = self._jw
            sg = np.multiply(swap, gm, out=b[1])
            sg2 = np.subtract(gm, sg, out=b[2])
            np.add(gds, sg, out=jw[:, 0])          # swap exchanges gds <-> gsum
            np.add(gds, sg2, out=jw[:, 5])
            jw1 = jw[:, 1]
            jw1[...] = gm
            np.negative(jw1, out=jw1, where=swap)
            np.negative(jw[:, 5], out=jw[:, 2])
            np.negative(jw[:, 0], out=jw[:, 3])
            np.negative(jw1, out=jw[:, 4])
            self._j_flat += np.bincount(
                self._j_idx_all, weights=self._jw_flat, minlength=self._nnB
            )
        if stats is not None:
            stats.assembles += 1
            stats.assemble_s += perf_counter() - t0
        return f, j
