"""Evaluating a stack of sensor jobs through the batch engine.

:func:`evaluate_jobs_batch` is the batched twin of
:func:`repro.runtime.jobs.evaluate_job`: it builds one netlist per job
(each with its own clock pair, loads, sizing and process corner),
compiles the stack, runs one lockstep transient over the shared
``[0, settle + period]`` horizon, and then applies the *exact*
per-sample measurement windows of
:func:`repro.core.response.simulate_sensor` - ``Vmin`` over
``[edge_start, fall_start]`` and the ``(y1, y2)`` code sampled at the
same ``t_sample`` formula - so a batch result is the scalar result up to
integration-grid differences (bounded by the engine's LTE control; the
equivalence suite pins it below 1 mV on ``Vmin``).

Jobs in one call must share the horizon-defining and engine-defining
fields (``period``, ``settle``, ``full_swing``, ``parasitics``,
``options``) - that is what
:func:`repro.batch.dispatch.batch_signature` groups by.  Samples the
engine masked out come back as ``None`` results for the caller to
re-dispatch to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analog.waveform import Waveform
from repro.batch.compile import compile_batch
from repro.batch.engine import BatchTransientResult, batch_transient
from repro.core.response import measurement_windows
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.runtime.jobs import JobResult, SensorJob

#: Nodes recorded for the paper's response measurement.
RECORD_NODES = ("phi1", "phi2", "y1", "y2")


@dataclass
class BatchEvaluation:
    """Outcome of one :func:`evaluate_jobs_batch` call.

    ``results[i]`` is the :class:`~repro.runtime.jobs.JobResult` of
    ``jobs[i]``, or ``None`` when the engine masked the sample out
    (``fallback_reasons[i]`` says why) and it must be re-evaluated by
    the scalar engine.
    """

    results: List[Optional[JobResult]]
    escalations: Dict[str, int] = field(default_factory=dict)
    fallback_reasons: Dict[int, str] = field(default_factory=dict)
    steps: int = 0
    #: Whole-stack hot-loop counters of the lockstep run
    #: (:meth:`repro.analog.kernels.KernelStats.as_dict`).  Kept at the
    #: stack level - the per-sample ``JobResult.kernel`` tallies stay
    #: empty for batch results so campaign telemetry never double-counts.
    kernel_stats: Dict[str, float] = field(default_factory=dict)
    #: Stack-level prefix warm-start accounting (``hits``/``builds``/
    #: ``build_s``/``saved_s``); empty when the stack ran cold.  Like
    #: ``kernel_stats``, kept at the stack level so telemetry never
    #: double-counts.
    prefix: Dict[str, float] = field(default_factory=dict)

    @property
    def fallbacks(self) -> int:
        """Number of samples needing scalar re-dispatch."""
        return sum(1 for r in self.results if r is None)


def _measure(
    result: BatchTransientResult, sample: int, job: SensorJob
) -> JobResult:
    """Apply ``simulate_sensor``'s measurement windows to one sample."""
    skew, slew1, slew2 = job.skew, job.slew1, job.slew2
    settle, period = job.settle, job.period
    edge_start, _, fall_start, t_sample = measurement_windows(
        skew, slew1, slew2, period, settle
    )

    y1 = result.wave("y1", sample)
    y2 = result.wave("y2", sample)
    vmin_y1 = y1.window_min(edge_start, fall_start)
    vmin_y2 = y2.window_min(edge_start, fall_start)

    code = (
        1 if y1.at(t_sample) > job.threshold else 0,
        1 if y2.at(t_sample) > job.threshold else 0,
    )
    return JobResult(
        skew=skew,
        vmin_y1=vmin_y1,
        vmin_y2=vmin_y2,
        code=code,
        steps=len(result),
        escalations=(),
    )


def evaluate_jobs_batch(jobs: Sequence[SensorJob]) -> BatchEvaluation:
    """Evaluate ``jobs`` as one lockstep batch.

    Every job is resolved, its sensor netlist built with its own clock
    pair, and the stack compiled and integrated once.  Jobs must agree
    on ``period``, ``settle``, ``full_swing``, ``parasitics`` and
    ``options`` (grouped upstream by
    :func:`repro.batch.dispatch.batch_signature`); a mismatch raises
    ``ValueError``.
    """
    if not jobs:
        return BatchEvaluation(results=[])
    resolved = [job.resolved() for job in jobs]
    head = resolved[0]
    for job in resolved[1:]:
        if (
            job.period != head.period
            or job.settle != head.settle
            or job.full_swing != head.full_swing
            or job.parasitics != head.parasitics
            or job.options != head.options
        ):
            raise ValueError(
                "jobs in one batch must share period/settle/full_swing/"
                "parasitics/options (group with batch_signature first)"
            )

    netlists = []
    initial = []
    for job in resolved:
        sensor = SkewSensor(
            process=job.process,
            sizing=job.sizing,
            load1=job.load1,
            load2=job.load2,
            full_swing=job.full_swing,
            parasitics=job.parasitics,
        )
        phi1, phi2 = clock_pair(
            period=job.period, slew1=job.slew1, slew2=job.slew2,
            skew=job.skew, delay=job.settle, vdd=sensor.vdd,
        )
        netlists.append(sensor.build(phi1=phi1, phi2=phi2))
        initial.append(sensor.dc_guess())

    batch = compile_batch(netlists)

    # Warm stack: when every sample shares one prefix key, the whole
    # stack forks from a single scalar checkpoint (broadcast by
    # batch_transient) and integrates only up to the latest sample's
    # fall_start - every measurement window lies inside that horizon.
    checkpoint = None
    prefix_stats: Dict[str, float] = {}
    t_stop = head.settle + head.period
    from repro.runtime.prefix import (
        prefix_checkpoint, prefix_key, warm_eligible,
    )

    if all(job.warm_start and warm_eligible(job) for job in resolved):
        keys = {prefix_key(job) for job in resolved}
        if len(keys) == 1:
            checkpoint, stats = prefix_checkpoint(resolved[0])
            # One build (or hit) serves the whole stack: count every
            # sample as a warm fork, minus the one that paid the build.
            B = len(resolved)
            prefix_stats = {
                "hits": float(B - int(stats.get("builds", 0))),
                "builds": float(stats.get("builds", 0.0)),
                "build_s": float(stats.get("build_s", 0.0)),
            }
            fork = checkpoint.t
            fall_stops = [
                measurement_windows(
                    job.skew, job.slew1, job.slew2, job.period, job.settle
                )[2]
                for job in resolved
            ]
            t_stop = max(fall_stops)
            saved_tail = sum(
                (head.settle + head.period) - fs for fs in fall_stops
            )
            prefix_stats["saved_s"] = (
                saved_tail + fork * float(prefix_stats["hits"])
            )

    if checkpoint is not None:
        result = batch_transient(
            batch,
            t_stop=t_stop,
            record=list(RECORD_NODES),
            options=head.options,
            resume_from=checkpoint,
        )
    else:
        result = batch_transient(
            batch,
            t_stop=t_stop,
            record=list(RECORD_NODES),
            initial=initial,
            options=head.options,
        )

    results: List[Optional[JobResult]] = []
    for index, job in enumerate(resolved):
        if not result.ok[index]:
            results.append(None)
            continue
        results.append(_measure(result, index, job))
    return BatchEvaluation(
        results=results,
        escalations=dict(result.escalations),
        fallback_reasons=dict(result.fallback_reasons),
        steps=len(result),
        kernel_stats=dict(result.kernel_stats),
        prefix=prefix_stats,
    )
