"""Netlist representation: nodes, device instances, composition, validation."""

from repro.circuit.compose import graft, prefixed_guess
from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.validate import NetlistError, validate

__all__ = [
    "Netlist",
    "GROUND",
    "validate",
    "NetlistError",
    "graft",
    "prefixed_guess",
]
