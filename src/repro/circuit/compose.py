"""Netlist composition: graft one netlist into another as a subcircuit.

The flat :class:`~repro.circuit.Netlist` is the simulation unit; larger
systems (clock-tree paths + sensor + indicator in one electrical run) are
built by *grafting*: every device of the source netlist is copied into the
target with a name prefix, its internal nodes are prefixed too, and the
caller maps the source's interface nodes (clock inputs, outputs, rails)
onto target nodes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.circuit.netlist import GROUND, Netlist
from repro.devices.mosfet import Mosfet
from repro.devices.passives import Capacitor, Resistor

#: Nodes shared by convention rather than prefixed: ground and the
#: positive rail.
SHARED_RAILS = (GROUND, "vdd")


def graft(
    target: Netlist,
    source: Netlist,
    prefix: str,
    connections: Optional[Dict[str, str]] = None,
    share_rails: bool = True,
) -> Dict[str, str]:
    """Copy every device of ``source`` into ``target``.

    Parameters
    ----------
    target:
        Netlist receiving the devices (modified in place).
    source:
        Netlist to graft (not modified).
    prefix:
        Prepended (with an underscore) to every device name and every
        non-interface node, so several instances can coexist.
    connections:
        Source-node -> target-node interface map (e.g. ``{"phi1":
        "n_sink3"}`` wires the sensor's clock pin to a tree node).
    share_rails:
        Keep ``0`` and ``vdd`` shared instead of prefixing them.

    Returns
    -------
    The complete node map (source node -> target node) actually used,
    including the generated prefixed names - callers use it to locate the
    grafted instance's outputs.

    Notes
    -----
    Driven nodes of the source that are not connected and not shared
    rails are an error: an ideal source cannot be meaningfully prefixed
    into the target without the caller deciding what drives it.
    """
    connections = dict(connections or {})
    mapping: Dict[str, str] = {}

    def rename(node: str) -> str:
        if node in mapping:
            return mapping[node]
        if node in connections:
            mapping[node] = connections[node]
        elif share_rails and node in SHARED_RAILS:
            mapping[node] = node
        else:
            mapping[node] = f"{prefix}_{node}"
        return mapping[node]

    for node in source.driven_nodes():
        if node in connections or (share_rails and node in SHARED_RAILS):
            continue
        raise ValueError(
            f"driven node {node!r} of {source.name!r} must be mapped via "
            "connections (an ideal source cannot be grafted implicitly)"
        )

    for m in source.mosfets:
        grafted = Mosfet(
            name=f"{prefix}_{m.name}",
            drain=rename(m.drain),
            gate=rename(m.gate),
            source=rename(m.source),
            mtype=m.mtype, w=m.w, l=m.l, card=m.card,
            stuck_open=m.stuck_open, stuck_on=m.stuck_on,
        )
        if target.find_mosfet(grafted.name) is not None:
            raise ValueError(f"duplicate grafted name {grafted.name!r}")
        target.mosfets.append(grafted)
    for r in source.resistors:
        target.resistors.append(
            Resistor(
                name=f"{prefix}_{r.name}",
                a=rename(r.a), b=rename(r.b), resistance=r.resistance,
            )
        )
    for c in source.capacitors:
        target.capacitors.append(
            Capacitor(
                name=f"{prefix}_{c.name}",
                a=rename(c.a), b=rename(c.b), capacitance=c.capacitance,
            )
        )
    return mapping


def prefixed_guess(
    guess: Dict[str, float], mapping: Dict[str, str]
) -> Dict[str, float]:
    """Translate a subcircuit's DC guess through a graft's node map."""
    return {
        mapping[node]: value
        for node, value in guess.items()
        if node in mapping
    }
