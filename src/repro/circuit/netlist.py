"""Flat transistor-level netlist.

A :class:`Netlist` is the unit the analog engine compiles and simulates.  It
holds MOSFETs, resistors, capacitors, and *driven nodes* (nodes attached to
an ideal voltage source - supplies and clock inputs).  The ground node
``"0"`` is always present and driven to 0 V.

Fault injection (stuck-at / stuck-open / stuck-on / bridging) works on a
:meth:`Netlist.copy` so the pristine design is never mutated.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.devices.mosfet import Mosfet, MosfetType
from repro.devices.passives import Capacitor, Resistor
from repro.devices.process import TransistorParams
from repro.devices.sources import DCSource

GROUND = "0"


@dataclass
class Netlist:
    """A flat circuit netlist.

    Attributes
    ----------
    name:
        Human-readable identifier (shows up in error messages).
    mosfets, resistors, capacitors:
        Device instance lists.
    sources:
        Mapping from driven node name to its voltage source object (any
        object with ``value(t)`` and ``breakpoints(t0, t1)``).
    """

    name: str = "netlist"
    mosfets: List[Mosfet] = field(default_factory=list)
    resistors: List[Resistor] = field(default_factory=list)
    capacitors: List[Capacitor] = field(default_factory=list)
    sources: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sources.setdefault(GROUND, DCSource(0.0))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        mtype: MosfetType,
        w: float,
        l: float,
        card: TransistorParams,
    ) -> Mosfet:
        """Add a MOSFET and return the instance."""
        if self.find_mosfet(name) is not None:
            raise ValueError(f"duplicate MOSFET name {name!r} in {self.name}")
        device = Mosfet(
            name=name, drain=drain, gate=gate, source=source,
            mtype=mtype, w=w, l=l, card=card,
        )
        self.mosfets.append(device)
        return device

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        """Add a resistor and return the instance."""
        device = Resistor(name=name, a=a, b=b, resistance=resistance)
        self.resistors.append(device)
        return device

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> Capacitor:
        """Add a capacitor and return the instance."""
        device = Capacitor(name=name, a=a, b=b, capacitance=capacitance)
        self.capacitors.append(device)
        return device

    def drive(self, node: str, source: object) -> None:
        """Attach an ideal voltage source to ``node``."""
        if node == GROUND and not isinstance(source, DCSource):
            raise ValueError("ground must stay at DC 0 V")
        self.sources[node] = source

    def drive_dc(self, node: str, voltage: float) -> None:
        """Attach a DC source to ``node`` (supplies, constant inputs)."""
        self.drive(node, DCSource(voltage))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> Set[str]:
        """All node names referenced anywhere in the netlist."""
        names: Set[str] = set(self.sources)
        for m in self.mosfets:
            names.update(m.nodes())
        for r in self.resistors:
            names.update(r.nodes())
        for c in self.capacitors:
            names.update(c.nodes())
        return names

    def free_nodes(self) -> List[str]:
        """Nodes whose voltage the simulator must solve for (sorted)."""
        return sorted(self.nodes() - set(self.sources))

    def driven_nodes(self) -> List[str]:
        """Nodes tied to ideal sources (sorted)."""
        return sorted(self.sources)

    def find_mosfet(self, name: str) -> Optional[Mosfet]:
        """Look up a MOSFET by instance name."""
        for m in self.mosfets:
            if m.name == name:
                return m
        return None

    def internal_nodes(self, exclude: Iterable[str] = ()) -> List[str]:
        """Free nodes not listed in ``exclude`` (sorted)."""
        skip = set(exclude)
        return [n for n in self.free_nodes() if n not in skip]

    # ------------------------------------------------------------------ #
    # Copy (fault injection works on copies)
    # ------------------------------------------------------------------ #
    def copy(self) -> "Netlist":
        """Deep copy of the netlist (sources are shared; they are immutable
        in practice and never mutated by fault injection)."""
        return Netlist(
            name=self.name,
            mosfets=[_copy.copy(m) for m in self.mosfets],
            resistors=[_copy.copy(r) for r in self.resistors],
            capacitors=[_copy.copy(c) for c in self.capacitors],
            sources=dict(self.sources),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}: {len(self.mosfets)} mosfets, "
            f"{len(self.resistors)} resistors, {len(self.capacitors)} capacitors, "
            f"{len(self.sources)} driven nodes)"
        )
