"""SPICE-format interchange for netlists.

Writes a :class:`~repro.circuit.Netlist` as a SPICE deck (level-1 model
cards, M/R/C devices, V sources with DC / PULSE / PWL waveforms) and parses
the same subset back.  Useful to cross-check circuits in an external
simulator and to keep golden netlists under version control in a standard
format.

Supported deck subset:

* ``.MODEL <name> NMOS|PMOS (VTO=... KP=... LAMBDA=...)``
* ``M<name> <d> <g> <s> <b> <model> W=... L=...`` (bulk is ignored;
  this library's level-1 model has no body effect)
* ``R<name> <a> <b> <value>`` / ``C<name> <a> <b> <value>``
* ``V<name> <node> 0 DC <v>`` / ``PULSE(...)`` / ``PWL(...)``
* ``*`` comments, ``.END``, engineering suffixes (f, p, n, u, m, k, meg).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.circuit.netlist import GROUND, Netlist
from repro.devices.mosfet import Mosfet, MosfetType
from repro.devices.process import TransistorParams
from repro.devices.sources import DCSource, PulseSource, PWLSource

_SUFFIXES = {
    "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
    "m": 1e-3, "k": 1e3, "meg": 1e6, "g": 1e9,
}


def format_value(value: float) -> str:
    """A number in plain exponent notation (unambiguous for SPICE)."""
    return f"{value:.6e}"


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    token = token.strip().lower()
    match = re.fullmatch(r"([-+]?[0-9]*\.?[0-9]+(?:e[-+]?[0-9]+)?)(meg|[fpnumkg])?",
                         token)
    if not match:
        raise ValueError(f"cannot parse SPICE value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES[suffix] if suffix else base


# --------------------------------------------------------------------- #
# Export
# --------------------------------------------------------------------- #

def _model_cards(netlist: Netlist) -> Dict[int, Tuple[str, TransistorParams, MosfetType]]:
    """Unique model cards used by the netlist, keyed by identity."""
    cards: Dict[int, Tuple[str, TransistorParams, MosfetType]] = {}
    for device in netlist.mosfets:
        key = id(device.card)
        if key not in cards:
            prefix = "nch" if device.mtype is MosfetType.NMOS else "pch"
            cards[key] = (f"{prefix}{len(cards)}", device.card, device.mtype)
    return cards


def to_spice(netlist: Netlist, title: str = "") -> str:
    """Serialise ``netlist`` as a SPICE deck string."""
    lines: List[str] = [f"* {title or netlist.name}"]

    cards = _model_cards(netlist)
    for name, card, mtype in cards.values():
        kind = "NMOS" if mtype is MosfetType.NMOS else "PMOS"
        lines.append(
            f".MODEL {name} {kind} (VTO={format_value(card.vt0)} "
            f"KP={format_value(card.kp)} LAMBDA={format_value(card.lam)})"
        )

    for m in netlist.mosfets:
        model_name = cards[id(m.card)][0]
        lines.append(
            f"M{m.name} {m.drain} {m.gate} {m.source} {m.source} "
            f"{model_name} W={format_value(m.w)} L={format_value(m.l)}"
        )
    for r in netlist.resistors:
        lines.append(f"R{r.name} {r.a} {r.b} {format_value(r.resistance)}")
    for c in netlist.capacitors:
        lines.append(f"C{c.name} {c.a} {c.b} {format_value(c.capacitance)}")

    index = 0
    for node in sorted(netlist.sources):
        if node == GROUND:
            continue
        source = netlist.sources[node]
        index += 1
        lines.append(f"V{index} {node} 0 {_source_spec(source)}")

    lines.append(".END")
    return "\n".join(lines) + "\n"


def _source_spec(source: object) -> str:
    if isinstance(source, DCSource):
        return f"DC {format_value(source.voltage)}"
    if isinstance(source, PulseSource):
        fields = (source.v0, source.v1, source.delay, source.rise,
                  source.fall, source.width, source.period)
        return "PULSE(" + " ".join(format_value(x) for x in fields) + ")"
    if isinstance(source, PWLSource):
        pairs = " ".join(
            f"{format_value(t)} {format_value(v)}"
            for t, v in zip(source.times, source.values)
        )
        return f"PWL({pairs})"
    if hasattr(source, "_pulse"):
        # ClockSource delegates to its internal pulse.
        return _source_spec(source._pulse)
    raise TypeError(f"cannot serialise source {type(source).__name__}")


# --------------------------------------------------------------------- #
# Import
# --------------------------------------------------------------------- #

def from_spice(text: str, name: str = "spice-import") -> Netlist:
    """Parse a SPICE deck (the documented subset) into a netlist."""
    netlist = Netlist(name=name)
    models: Dict[str, Tuple[TransistorParams, MosfetType]] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        upper = line.upper()
        if upper == ".END":
            break
        if upper.startswith(".MODEL"):
            _parse_model(line, models)
            continue
        prefix = upper[0]
        if prefix == "M":
            _parse_mosfet(line, models, netlist)
        elif prefix == "R":
            tokens = line.split()
            netlist.add_resistor(tokens[0][1:], tokens[1], tokens[2],
                                 parse_value(tokens[3]))
        elif prefix == "C":
            tokens = line.split()
            netlist.add_capacitor(tokens[0][1:], tokens[1], tokens[2],
                                  parse_value(tokens[3]))
        elif prefix == "V":
            _parse_source(line, netlist)
        else:
            raise ValueError(f"unsupported SPICE card: {line!r}")
    return netlist


def _parse_model(line: str, models: Dict) -> None:
    match = re.match(
        r"\.MODEL\s+(\S+)\s+(NMOS|PMOS)\s*\((.*)\)", line, re.IGNORECASE
    )
    if not match:
        raise ValueError(f"bad .MODEL card: {line!r}")
    model_name, kind, params = match.groups()
    values = dict(
        (k.upper(), parse_value(v))
        for k, v in re.findall(r"(\w+)\s*=\s*(\S+)", params)
    )
    card = TransistorParams(
        vt0=values.get("VTO", 0.7),
        kp=values.get("KP", 50e-6),
        lam=values.get("LAMBDA", 0.0),
    )
    mtype = MosfetType.NMOS if kind.upper() == "NMOS" else MosfetType.PMOS
    models[model_name] = (card, mtype)


def _parse_mosfet(line: str, models: Dict, netlist: Netlist) -> None:
    tokens = line.split()
    if len(tokens) < 6:
        raise ValueError(f"bad MOSFET card: {line!r}")
    inst = tokens[0][1:]
    drain, gate, source = tokens[1], tokens[2], tokens[3]
    # tokens[4] is the bulk node (ignored), tokens[5] the model.
    model_name = tokens[5]
    if model_name not in models:
        raise ValueError(f"unknown model {model_name!r} in {line!r}")
    card, mtype = models[model_name]
    geometry = dict(
        (k.upper(), parse_value(v))
        for k, v in re.findall(r"(\w+)\s*=\s*(\S+)", " ".join(tokens[6:]))
    )
    netlist.add_mosfet(
        inst, drain, gate, source, mtype,
        geometry.get("W", 1e-6), geometry.get("L", 1e-6), card,
    )


def _parse_source(line: str, netlist: Netlist) -> None:
    match = re.match(
        r"V\S*\s+(\S+)\s+0\s+(.*)", line, re.IGNORECASE
    )
    if not match:
        raise ValueError(f"bad V source card (only node-to-ground "
                         f"supported): {line!r}")
    node, spec = match.groups()
    spec = spec.strip()
    upper = spec.upper()
    if upper.startswith("DC"):
        netlist.drive_dc(node, parse_value(spec.split()[1]))
        return
    if upper.startswith("PULSE"):
        inner = spec[spec.index("(") + 1: spec.rindex(")")]
        v = [parse_value(x) for x in inner.replace(",", " ").split()]
        netlist.drive(node, PulseSource(
            v0=v[0], v1=v[1], delay=v[2], rise=v[3],
            fall=v[4], width=v[5], period=v[6],
        ))
        return
    if upper.startswith("PWL"):
        inner = spec[spec.index("(") + 1: spec.rindex(")")]
        flat = [parse_value(x) for x in inner.replace(",", " ").split()]
        netlist.drive(node, PWLSource(times=flat[0::2], values=flat[1::2]))
        return
    raise ValueError(f"unsupported source spec: {spec!r}")
