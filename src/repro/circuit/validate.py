"""Netlist sanity checks run before compilation.

The transient engine integrates ``C dv/dt = -i(v)``; a free node with no
capacitance to anywhere would make the system index-1 and the step equation
singular, so validation flags it (the engine also auto-adds a small parasitic
capacitance, but a *fully* floating node - no device at all - is a design
error worth failing loudly on).

Validation also rejects *numerically poisonous* parameters - NaN or Inf
device values, non-finite source voltages, and bridge/tie resistances
that are zero or negative - at netlist time with a clear
:class:`NetlistError`, instead of letting them surface hundreds of Newton
iterations later as an opaque mid-integration divergence.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List

from repro.circuit.netlist import Netlist


class NetlistError(ValueError):
    """Raised when a netlist fails structural validation."""


def _require_finite(netlist: Netlist, device: str, what: str, value: float) -> None:
    """Fail loudly on a NaN/Inf parameter (pre-empts solver divergence)."""
    if not math.isfinite(value):
        raise NetlistError(
            f"{netlist.name}: {device} has non-finite {what} ({value!r})"
        )


def validate(netlist: Netlist) -> List[str]:
    """Check a netlist for structural and numerical problems.

    Returns a list of human-readable warnings (non-fatal observations) and
    raises :class:`NetlistError` on fatal problems:

    * duplicate device names across all device kinds;
    * a free node touched by no device terminal at all;
    * a MOSFET whose drain and source are the same node;
    * NaN/Inf device parameters (R, C, MOSFET W/L) or source voltages;
    * resistances (bridges, stuck-at ties, interconnect) <= 0 and MOSFET
      W/L <= 0.
    """
    warnings: List[str] = []

    names = Counter(
        [m.name for m in netlist.mosfets]
        + [r.name for r in netlist.resistors]
        + [c.name for c in netlist.capacitors]
    )
    duplicates = [n for n, k in names.items() if k > 1]
    if duplicates:
        raise NetlistError(f"{netlist.name}: duplicate device names {duplicates}")

    touched = set()
    for m in netlist.mosfets:
        touched.update(m.nodes())
        if m.drain == m.source:
            raise NetlistError(
                f"{netlist.name}: MOSFET {m.name} has drain == source ({m.drain})"
            )
        _require_finite(netlist, f"MOSFET {m.name}", "width", m.w)
        _require_finite(netlist, f"MOSFET {m.name}", "length", m.l)
        if m.w <= 0 or m.l <= 0:
            raise NetlistError(
                f"{netlist.name}: MOSFET {m.name} has non-positive "
                f"geometry (W={m.w!r}, L={m.l!r})"
            )
    for r in netlist.resistors:
        touched.update(r.nodes())
        _require_finite(netlist, f"resistor {r.name}", "resistance", r.resistance)
        if r.resistance <= 0:
            raise NetlistError(
                f"{netlist.name}: resistor {r.name} has resistance "
                f"{r.resistance!r} <= 0 (bridges and stuck-at ties must be "
                "positive)"
            )
        if r.a == r.b:
            warnings.append(f"resistor {r.name} shorts node {r.a} to itself")
    for c in netlist.capacitors:
        touched.update(c.nodes())
        _require_finite(netlist, f"capacitor {c.name}", "capacitance",
                        c.capacitance)
        if c.capacitance < 0:
            raise NetlistError(
                f"{netlist.name}: capacitor {c.name} has negative "
                f"capacitance ({c.capacitance!r})"
            )

    for node, source in netlist.sources.items():
        try:
            probes = [0.0]
            probes.extend(float(b) for b in source.breakpoints(0.0, 1e-6)[:16])
        except Exception:
            probes = [0.0]
        for t in probes:
            value = float(source.value(t))
            if not math.isfinite(value):
                raise NetlistError(
                    f"{netlist.name}: source driving {node} yields "
                    f"non-finite voltage {value!r} at t = {t:.3e} s"
                )

    for node in netlist.free_nodes():
        if node not in touched:
            raise NetlistError(f"{netlist.name}: free node {node} touches no device")

    conductive = set(netlist.driven_nodes())
    for _ in range(len(netlist.free_nodes()) + 1):
        grew = False
        for m in netlist.mosfets:
            ends = {m.drain, m.source}
            if ends & conductive and not ends <= conductive:
                conductive |= ends
                grew = True
        for r in netlist.resistors:
            ends = {r.a, r.b}
            if ends & conductive and not ends <= conductive:
                conductive |= ends
                grew = True
        if not grew:
            break
    for node in netlist.free_nodes():
        if node not in conductive:
            warnings.append(
                f"node {node} has no conductive path to any driven node "
                "(purely capacitive; its voltage is set by initial conditions)"
            )
    return warnings
