"""Netlist sanity checks run before compilation.

The transient engine integrates ``C dv/dt = -i(v)``; a free node with no
capacitance to anywhere would make the system index-1 and the step equation
singular, so validation flags it (the engine also auto-adds a small parasitic
capacitance, but a *fully* floating node - no device at all - is a design
error worth failing loudly on).
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.circuit.netlist import Netlist


class NetlistError(ValueError):
    """Raised when a netlist fails structural validation."""


def validate(netlist: Netlist) -> List[str]:
    """Check a netlist for structural problems.

    Returns a list of human-readable warnings (non-fatal observations) and
    raises :class:`NetlistError` on fatal problems:

    * duplicate device names across all device kinds;
    * a free node touched by no device terminal at all;
    * a MOSFET whose drain and source are the same node.
    """
    warnings: List[str] = []

    names = Counter(
        [m.name for m in netlist.mosfets]
        + [r.name for r in netlist.resistors]
        + [c.name for c in netlist.capacitors]
    )
    duplicates = [n for n, k in names.items() if k > 1]
    if duplicates:
        raise NetlistError(f"{netlist.name}: duplicate device names {duplicates}")

    touched = set()
    for m in netlist.mosfets:
        touched.update(m.nodes())
        if m.drain == m.source:
            raise NetlistError(
                f"{netlist.name}: MOSFET {m.name} has drain == source ({m.drain})"
            )
    for r in netlist.resistors:
        touched.update(r.nodes())
        if r.a == r.b:
            warnings.append(f"resistor {r.name} shorts node {r.a} to itself")
    for c in netlist.capacitors:
        touched.update(c.nodes())

    for node in netlist.free_nodes():
        if node not in touched:
            raise NetlistError(f"{netlist.name}: free node {node} touches no device")

    conductive = set(netlist.driven_nodes())
    for _ in range(len(netlist.free_nodes()) + 1):
        grew = False
        for m in netlist.mosfets:
            ends = {m.drain, m.source}
            if ends & conductive and not ends <= conductive:
                conductive |= ends
                grew = True
        for r in netlist.resistors:
            ends = {r.a, r.b}
            if ends & conductive and not ends <= conductive:
                conductive |= ends
                grew = True
        if not grew:
            break
    for node in netlist.free_nodes():
        if node not in conductive:
            warnings.append(
                f"node {node} has no conductive path to any driven node "
                "(purely capacitive; its voltage is set by initial conditions)"
            )
    return warnings
