"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``waves``        Fig.-2/3 style waveform report for a chosen skew.
``sensitivity``  Fig.-4 style Vmin-vs-tau sweep and tau_min extraction.
``campaign``     Runtime-orchestrated sensitivity campaign: choice of
                 serial/thread/process/batch backend, cache reuse,
                 telemetry summary and JSON report.
``montecarlo``   Fig.-5 style Monte Carlo scatter with a seedable
                 population; ``--backend batch`` solves the whole
                 population in lockstep on the vectorised engine.
``cache``        Inspect or clear the content-addressed result cache.
``testability``  Sec.-3 fault-coverage analysis of the sensor.
``scheme``       Fig.-6 style campaign: sensors over an H-tree with an
                 injected fault, scan-path and checker readout.
``whole-tree``   Full-chip clock network (H-tree or TRIX-style grid)
                 with N sensing circuits, one transient on the sparse
                 MNA engine.
``export``       Write the sensor netlist as a SPICE deck.
``serve``        Run the campaign service (HTTP API + scheduler).
``submit``       Submit a campaign spec to a running service.
``status``       One campaign's lifecycle record.
``result``       A finished campaign's result payload.
``cancel``       Cancel a queued or running campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.units import VTH_INTERPRET, fF, ns, to_ns

# The service's spec compiler uses the same options, so a service
# campaign reproduces the CLI run bit-identically (same cache keys).
from repro.service.specs import FAST_OPTIONS as _FAST

#: Default service endpoint of the client subcommands.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"


def _cmd_waves(args: argparse.Namespace) -> int:
    from repro.core.response import simulate_sensor
    from repro.core.sensing import SkewSensor
    from repro.report import waveform_report

    sensor = SkewSensor(
        load1=fF(args.load), load2=fF(args.load), full_swing=args.full_swing
    )
    response = simulate_sensor(
        sensor, skew=ns(args.skew), slew1=ns(args.slew), slew2=ns(args.slew),
        options=_FAST,
    )
    print(waveform_report(response, t0=ns(1.0), t1=ns(14.0)))
    return 0


def _sensitivity_grid(args: argparse.Namespace):
    return [ns(args.tau_max) * k / (args.points - 1) for k in range(args.points)]


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sweep_skew
    from repro.report import sensitivity_report
    from repro.runtime import Telemetry

    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    skews = _sensitivity_grid(args)
    curves = [
        sweep_skew(
            fF(load), ns(args.slew), skews, options=_FAST,
            backend=args.backend, cache=cache, telemetry=telemetry,
            max_workers=args.workers,
            warm_start=False if args.no_warm_start else None,
        )
        for load in args.loads
    ]
    print(sensitivity_report(curves))
    if args.stats:
        print("--- runtime telemetry ---")
        print(telemetry.summary())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sensitivity_family
    from repro.runtime import Telemetry
    from repro.units import to_ns

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    skews = _sensitivity_grid(args)
    with telemetry.timer("campaign"):
        curves = sensitivity_family(
            loads=[fF(load) for load in args.loads],
            slews=[ns(slew) for slew in args.slews],
            skews=skews,
            options=_FAST,
            backend=args.backend,
            cache=cache,
            telemetry=telemetry,
            max_workers=args.workers,
            batch_workers=args.batch_workers,
            on_error=args.on_error,
            checkpoint=args.checkpoint,
            resume=args.resume,
            warm_start=False if args.no_warm_start else None,
        )
    print(f"campaign: {len(curves)} curves x {args.points} skew points "
          f"({args.backend} backend)")
    if telemetry.jobs_failed:
        print(f"  {telemetry.jobs_failed} job(s) failed and were collected "
              "as JobError records (see telemetry)")
    for curve in curves:
        tau = curve.tau_min
        tau_text = f"{to_ns(tau):.3f} ns" if tau is not None else "no crossing"
        print(f"  load {curve.load * 1e15:6.1f} fF  slew "
              f"{curve.slew * 1e9:4.2f} ns : tau_min = {tau_text}")
    print("--- runtime telemetry ---")
    print(telemetry.summary())
    if args.json:
        telemetry.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.montecarlo.parallel import scatter_analysis_parallel
    from repro.montecarlo.sampling import sample_population
    from repro.runtime import Telemetry

    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    samples = sample_population(args.samples, fF(args.load), seed=args.seed)
    skews = [ns(tau) for tau in args.skews]
    with telemetry.timer("montecarlo"):
        points = scatter_analysis_parallel(
            samples, skews, options=_FAST, backend=args.backend,
            n_workers=args.workers, batch_workers=args.batch_workers,
            cache=cache, telemetry=telemetry,
            warm_start=False if args.no_warm_start else None,
        )
    seed_text = args.seed if args.seed is not None else "none (fresh draws)"
    print(f"montecarlo: {args.samples} samples x {len(skews)} skews "
          f"({args.backend} backend, seed {seed_text})")
    print("  tau[ns]   Vmin: min    mean    max   flagged")
    for tau, tau_ns in zip(skews, args.skews):
        vmins = np.array([p.vmin for p in points if p.skew == tau])
        flagged = int((vmins > VTH_INTERPRET).sum())
        print(f"  {tau_ns:6.2f}   {vmins.min():9.2f} {vmins.mean():7.2f} "
              f"{vmins.max():6.2f}   {flagged}/{len(vmins)}")
    if args.stats:
        print("--- runtime telemetry ---")
        print(telemetry.summary())
    if args.json:
        telemetry.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import get_cache, get_checkpoint_cache, parse_size
    from repro.runtime.cache import (
        ENV_CACHE_DIR, ENV_CACHE_DISABLE, ENV_CACHE_MAX_BYTES,
    )

    if args.checkpoints:
        cache = get_checkpoint_cache()
        tier = "checkpoint (prefix warm-start)"
    else:
        cache = get_cache()
        tier = "result"
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from the {tier} cache at "
              f"{cache.disk_dir or 'memory (disk tier disabled)'}")
        return 0
    if args.prune or args.max_bytes is not None:
        budget = cache.max_disk_bytes
        if args.max_bytes is not None:
            try:
                budget = parse_size(args.max_bytes)
            except ValueError as error:
                print(f"error: --max-bytes: {error}", file=sys.stderr)
                return 2
        if budget is None:
            print("error: no budget to prune to (pass --max-bytes or set "
                  f"{ENV_CACHE_MAX_BYTES})", file=sys.stderr)
            return 2
        before = cache.disk_total_bytes()
        removed = cache.prune(max_bytes=budget)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({before / 1024:.1f} -> "
              f"{cache.disk_total_bytes() / 1024:.1f} KiB, budget "
              f"{budget / 1024:.1f} KiB)")
        return 0
    # info
    print(f"tier       : {tier}")
    print(f"version    : v{cache.version} (engine fingerprint)")
    if cache.disk_enabled:
        size = cache.disk_size_bytes()
        print(f"directory  : {cache.disk_dir}")
        print(f"entries    : {cache.disk_entries()} on disk "
              f"({size / 1024:.1f} KiB), {len(cache)} in memory")
        budget = cache.max_disk_bytes
        budget_text = (
            f"{budget / 1024:.1f} KiB" if budget is not None else "unbounded"
        )
        print(f"footprint  : {cache.disk_total_bytes() / 1024:.1f} KiB "
              f"across all namespaces (budget {budget_text})")
    else:
        print("directory  : disk tier disabled "
              f"(set {ENV_CACHE_DIR} or unset {ENV_CACHE_DISABLE})")
        print(f"entries    : {len(cache)} in memory")
    print(f"env        : {ENV_CACHE_DIR} overrides the directory, "
          f"{ENV_CACHE_DISABLE}=1 disables the disk tier, "
          f"{ENV_CACHE_MAX_BYTES} bounds it (LRU eviction)")
    return 0


def _cmd_testability(args: argparse.Namespace) -> int:
    from repro.report import testability_report_text
    from repro.testing.testability import analyze_sensor_testability

    report = analyze_sensor_testability(options=_FAST)
    print(testability_report_text(report))
    return 0


def _cmd_scheme(args: argparse.Namespace) -> int:
    from repro.clocktree import Buffer, ResistiveOpen, build_h_tree
    from repro.testing.scheme import ClockTestingScheme

    tree = build_h_tree(levels=args.levels, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(args.tau_min), max_distance=args.max_distance_mm * 1e-3,
        top_k=args.sensors,
    )
    print(f"tree: {len(tree.sinks())} sinks; monitoring "
          f"{len(scheme.placements)} pairs")
    state = None
    if args.open_node:
        fault = ResistiveOpen(
            node=args.open_node, extra_resistance=args.open_ohms
        )
        print(f"injected: {fault.describe()}")
        state = fault.apply(tree)
    observations = scheme.observe(state)
    for obs in observations:
        print(
            f"  {obs.placement.indicator.name:<12} "
            f"skew {to_ns(obs.skew):+8.3f} ns  code {obs.code}"
        )
    print(f"scan path : {scheme.scan_out()}")
    print(f"checker   : {'ALARM' if scheme.online_alarm() else 'ok'}")
    from repro.testing.diagnosis import diagnose, diagnosis_report

    print("diagnosis :")
    for line in diagnosis_report(diagnose(scheme)).splitlines():
        print(f"  {line}")
    return 0


def _cmd_whole_tree(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.clocktree import ResistiveOpen
    from repro.clocktree.whole_tree import simulate_whole_tree

    fault = None
    if args.open_node:
        fault = ResistiveOpen(
            node=args.open_node, extra_resistance=args.open_ohms
        )
    try:
        run = simulate_whole_tree(
            levels=args.levels,
            topology=args.topology,
            n_sensors=args.sensors,
            fault=fault,
            variation=args.variation,
            seed=args.seed,
            grid_shape=tuple(args.grid),
            dead_injections=tuple(
                tuple(p) for p in (args.dead_injection or [])
            ),
            segments_per_wire=args.segments,
            options=replace(_FAST, jacobian_policy="auto"),
        )
    except KeyError as exc:
        # e.g. --open-node naming a sink the tree does not have.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        if args.topology == "htree" and fault is not None:
            from repro.clocktree.htree import build_h_tree
            from repro.clocktree.tree import Buffer

            sinks = sorted(
                s.name for s in build_h_tree(args.levels, buffer=Buffer()).sinks()
            )
            print(f"sinks at --levels {args.levels}: {' '.join(sinks)}",
                  file=sys.stderr)
        return 2
    kernel = run.result.kernel_stats or {}
    if args.json:
        print(json.dumps({
            "topology": args.topology,
            "n_nodes": run.n_nodes,
            "skews_s": {k: (None if v != v or abs(v) == float("inf") else v)
                        for k, v in run.skews.items()},
            "codes": {k: list(v) for k, v in run.codes.items()},
            "flagged": run.flagged,
            "kernel": {k: v for k, v in kernel.items()},
        }, indent=2))
        return 0
    print(f"{args.topology}: {run.n_nodes} MNA nodes, "
          f"{len(run.placements)} sensors")
    if kernel.get("sparse_nnz"):
        print(f"sparse: nnz {kernel['sparse_nnz']}, "
              f"LU fill {kernel.get('sparse_fill_nnz', 0)}"
              + (" (numpy fallback)" if kernel.get("sparse_fallback") else ""))
    if fault is not None:
        print(f"injected: {fault.describe()}")
    for placement in run.placements:
        skew = run.skews[placement.label]
        shown = "   never" if skew != skew or abs(skew) == float("inf") \
            else f"{to_ns(skew):+8.3f}"
        print(f"  {placement.label:<16} skew {shown} ns  "
              f"code {run.codes[placement.label]}")
    print(f"checker   : {'ALARM' if run.flagged else 'ok'}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.circuit.spice import to_spice
    from repro.core.sensing import SkewSensor

    sensor = SkewSensor(
        load1=fF(args.load), load2=fF(args.load), full_swing=args.full_swing
    )
    netlist = sensor.build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive_dc("phi2", 0.0)
    deck = to_spice(netlist, title="skew sensing circuit (Favalli/Metra 1997)")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(deck)
        print(f"wrote {args.output}")
    else:
        print(deck, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import create_server, serve_forever

    server = create_server(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        quota=args.quota,
        access_log=args.access_log,
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.max_queue_depth,
        watchdog_s=args.watchdog,
    )
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(str(server.port))
    print(f"serving campaigns on http://{args.host}:{server.port} "
          f"(state: {server.scheduler.store.root})")
    serve_forever(server)
    return 0


def _load_spec(args: argparse.Namespace) -> dict:
    """The spec of a ``repro submit``: ``--spec JSON``, ``--spec @file``,
    or assembled from the kind's flags."""
    if args.spec:
        text = args.spec
        if text.startswith("@"):
            with open(text[1:]) as handle:
                text = handle.read()
        return json.loads(text)
    spec: dict = {"kind": args.kind}
    if args.kind == "sensitivity":
        spec.update(loads_ff=args.loads, slews_ns=args.slews,
                    tau_max_ns=args.tau_max, points=args.points)
    elif args.kind == "montecarlo":
        if args.seed is None:
            print("error: montecarlo specs need --seed (reproducibility)",
                  file=sys.stderr)
            raise SystemExit(2)
        spec.update(samples=args.samples, seed=args.seed,
                    load_ff=args.load, skews_ns=args.skews)
    if args.backend != "serial":
        spec["backend"] = args.backend
    if args.workers is not None:
        spec["workers"] = args.workers
    if args.batch_workers is not None:
        spec["batch_workers"] = args.batch_workers
    if args.tenant:
        spec["tenant"] = args.tenant
    if args.timeout is not None:
        spec["timeout_s"] = args.timeout
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        record = client.submit(
            _load_spec(args), client=args.client, priority=args.priority
        )
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    campaign_id = record["campaign_id"]
    print(f"submitted {campaign_id} "
          f"(priority {record['priority']}, state {record['state']})")
    if args.stream:
        for event in client.stream_events(campaign_id, timeout=args.wait):
            print(f"  {json.dumps(event)}")
    if args.stream or args.wait_done:
        final = client.wait(campaign_id, timeout=args.wait)
        print(f"final state: {final['state']} "
              f"({final['completed']}/{final['total']} jobs)")
        if final["state"] == "failed":
            print(f"error: {final['error']}", file=sys.stderr)
            return 1
        return 0 if final["state"] == "done" else 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.id:
            payload = client.status(args.id)
        else:
            # No id: the server's own health (scheduler liveness, last
            # heartbeat age, watchdog counters, quarantined lines).
            payload = client.health()
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_service_compact(args: argparse.Namespace) -> int:
    from repro.service.store import JobStore

    with JobStore(args.root) as store:
        stats = store.compact()
    print(f"compacted {store.journal_path}: "
          f"{stats['campaigns']} campaign(s), "
          f"{stats['bytes_before']} -> {stats['bytes_after']} bytes")
    if store.quarantined:
        print(f"quarantined {store.quarantined} corrupt line(s) "
              f"to {store.quarantine_file}")
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.result(args.id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        outcome = client.cancel(args.id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"cancelled: {outcome['cancelled']} (state {outcome['state']})")
    return 0 if outcome["cancelled"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.aggregate import build_report, write_report

    if args.output:
        path = write_report(args.out_dir, args.output)
        print(f"wrote {path}")
    else:
        print(build_report(args.out_dir))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clock-skew testing scheme reproduction "
        "(Favalli & Metra, ED&TC 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    waves = sub.add_parser("waves", help="waveform report for one skew")
    waves.add_argument("--skew", type=float, default=1.0, help="tau in ns")
    waves.add_argument("--load", type=float, default=160.0, help="load in fF")
    waves.add_argument("--slew", type=float, default=0.2, help="slew in ns")
    waves.add_argument("--full-swing", action="store_true")
    waves.set_defaults(func=_cmd_waves)

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend",
                       choices=["serial", "thread", "process", "batch"],
                       default="serial", help="campaign executor backend "
                       "(batch = lockstep vectorised engine)")
        p.add_argument("--workers", type=int, default=None,
                       help="pool width (default: REPRO_MAX_WORKERS or "
                            "half the CPUs)")
        p.add_argument("--batch-workers", type=int, default=None,
                       help="batch-backend shard workers: whole lockstep "
                            "stacks fan out over this many processes "
                            "(default: REPRO_BATCH_WORKERS, else the "
                            "--workers resolution; 1 = unsharded)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache")
        p.add_argument("--no-warm-start", action="store_true",
                       help="disable prefix warm-start (full cold "
                            "transients, bit-identical to the pre-prefix "
                            "behaviour; same as REPRO_WARM_START=0)")

    sens = sub.add_parser("sensitivity", help="Vmin vs tau sweep")
    sens.add_argument("--loads", type=float, nargs="+",
                      default=[80.0, 160.0, 240.0], help="loads in fF")
    sens.add_argument("--slew", type=float, default=0.2, help="slew in ns")
    sens.add_argument("--tau-max", type=float, default=0.5, help="sweep end, ns")
    sens.add_argument("--points", type=int, default=8)
    add_runtime_flags(sens)
    sens.add_argument("--stats", action="store_true",
                      help="print runtime telemetry (cache hits, timings)")
    sens.set_defaults(func=_cmd_sensitivity)

    camp = sub.add_parser(
        "campaign",
        help="runtime-orchestrated sensitivity campaign with telemetry",
    )
    camp.add_argument("--loads", type=float, nargs="+",
                      default=[80.0, 160.0, 240.0], help="loads in fF")
    camp.add_argument("--slews", type=float, nargs="+",
                      default=[0.1, 0.2, 0.3, 0.4], help="slews in ns")
    camp.add_argument("--tau-max", type=float, default=0.5, help="sweep end, ns")
    camp.add_argument("--points", type=int, default=8)
    add_runtime_flags(camp)
    camp.add_argument("--json", type=str, default=None,
                      help="write the telemetry report to this JSON file")
    camp.add_argument("--on-error", choices=["raise", "collect"],
                      default="raise",
                      help="abort on the first failed job (raise) or record "
                           "it as a JobError and keep going (collect)")
    camp.add_argument("--checkpoint", type=str, default=None,
                      help="journal completed jobs to this JSONL file "
                           "(append-only; enables --resume)")
    camp.add_argument("--resume", action="store_true",
                      help="skip jobs already completed in the --checkpoint "
                           "journal instead of re-running them")
    camp.set_defaults(func=_cmd_campaign)

    mc = sub.add_parser(
        "montecarlo",
        help="Fig.-5 style Monte Carlo scatter (seedable population)",
    )
    mc.add_argument("--samples", type=int, default=30,
                    help="population size")
    mc.add_argument("--seed", type=int, default=None,
                    help="population seed (same seed = same draws; "
                         "omit for fresh draws)")
    mc.add_argument("--load", type=float, default=160.0,
                    help="nominal load in fF")
    mc.add_argument("--skews", type=float, nargs="+",
                    default=[0.0, 0.05, 0.1, 0.15, 0.25, 0.4],
                    help="skew grid in ns")
    add_runtime_flags(mc)
    mc.add_argument("--stats", action="store_true",
                    help="print runtime telemetry (batch counters, timings)")
    mc.add_argument("--json", type=str, default=None,
                    help="write the telemetry report to this JSON file")
    mc.set_defaults(func=_cmd_montecarlo)

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache.add_argument("action", choices=["info", "clear"], nargs="?",
                       default="info")
    cache.add_argument("--checkpoints", action="store_true",
                       help="operate on the prefix-checkpoint tier instead "
                            "of the result cache")
    cache.add_argument("--prune", action="store_true",
                       help="LRU-evict disk entries down to the budget "
                            "(REPRO_CACHE_MAX_BYTES or --max-bytes)")
    cache.add_argument("--max-bytes", type=str, default=None,
                       help="prune budget, bytes (k/m/g suffixes accepted; "
                            "implies --prune)")
    cache.set_defaults(func=_cmd_cache)

    testa = sub.add_parser("testability", help="Sec.-3 fault coverage")
    testa.set_defaults(func=_cmd_testability)

    scheme = sub.add_parser("scheme", help="Fig.-6 campaign on an H-tree")
    scheme.add_argument("--levels", type=int, default=2)
    scheme.add_argument("--sensors", type=int, default=6)
    scheme.add_argument("--tau-min", type=float, default=0.12,
                        help="calibrated sensitivity, ns")
    scheme.add_argument("--max-distance-mm", type=float, default=8.0)
    scheme.add_argument("--open-node", type=str, default=None,
                        help="inject a resistive open at this tree node")
    scheme.add_argument("--open-ohms", type=float, default=8000.0)
    scheme.set_defaults(func=_cmd_scheme)

    wtree = sub.add_parser(
        "whole-tree",
        help="full-chip clock network with N sensors (sparse engine)",
    )
    wtree.add_argument("--topology", choices=("htree", "grid"),
                       default="htree")
    wtree.add_argument("--levels", type=int, default=2,
                       help="H-tree levels (4**levels sinks)")
    wtree.add_argument("--grid", type=int, nargs=2, default=(6, 6),
                       metavar=("ROWS", "COLS"),
                       help="grid topology shape")
    wtree.add_argument("--sensors", type=int, default=2)
    wtree.add_argument("--variation", type=float, default=0.0,
                       help="relative RC/buffer process variation")
    wtree.add_argument("--seed", type=int, default=0)
    wtree.add_argument("--open-node", type=str, default=None,
                       help="inject a resistive open at this tree node")
    wtree.add_argument("--open-ohms", type=float, default=8000.0)
    wtree.add_argument("--dead-injection", type=int, nargs=2,
                       action="append", default=None,
                       metavar=("ROW", "COL"),
                       help="kill a grid injection driver (repeatable)")
    wtree.add_argument("--segments", type=int, default=3,
                       help="RC segments per wire")
    wtree.add_argument("--json", action="store_true")
    wtree.set_defaults(func=_cmd_whole_tree)

    export = sub.add_parser("export", help="SPICE deck of the sensor")
    export.add_argument("--load", type=float, default=160.0, help="load in fF")
    export.add_argument("--full-swing", action="store_true")
    export.add_argument("-o", "--output", type=str, default=None)
    export.set_defaults(func=_cmd_export)

    serve = sub.add_parser(
        "serve", help="run the campaign service (HTTP API + scheduler)"
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = ephemeral; see --port-file)")
    serve.add_argument("--state-dir", type=str, default=None,
                       help="journal/result directory (default: "
                            "REPRO_SERVICE_DIR or ~/.cache/repro/service)")
    serve.add_argument("--quota", type=int, default=None,
                       help="max campaigns in flight per client")
    serve.add_argument("--port-file", type=str, default=None,
                       help="write the bound port to this file (for "
                            "scripts using --port 0)")
    serve.add_argument("--max-concurrent", type=int, default=None,
                       help="campaigns executed concurrently (default 1; "
                            "wider schedulers split the worker budget)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="bound on queued campaigns (503 + Retry-After "
                            "beyond it; default unbounded)")
    serve.add_argument("--watchdog", type=float, default=None,
                       help="fail a campaign with no heartbeat for this "
                            "many seconds (default off)")
    serve.add_argument("--access-log", action="store_true",
                       help="log every request to stderr")
    serve.set_defaults(func=_cmd_serve)

    def add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", type=str, default=DEFAULT_SERVICE_URL,
                       help="service endpoint")

    submit = sub.add_parser(
        "submit", help="submit a campaign spec to a running service"
    )
    add_client_flags(submit)
    submit.add_argument("--spec", type=str, default=None,
                        help="raw spec JSON (or @file); overrides the "
                             "kind flags below")
    submit.add_argument("--kind", choices=["sensitivity", "montecarlo"],
                        default="sensitivity")
    submit.add_argument("--loads", type=float, nargs="+",
                        default=[80.0, 160.0, 240.0], help="loads in fF")
    submit.add_argument("--slews", type=float, nargs="+", default=[0.2],
                        help="slews in ns")
    submit.add_argument("--tau-max", type=float, default=0.5,
                        help="sweep end, ns")
    submit.add_argument("--points", type=int, default=8)
    submit.add_argument("--samples", type=int, default=30,
                        help="montecarlo population size")
    submit.add_argument("--seed", type=int, default=None,
                        help="montecarlo population seed (required)")
    submit.add_argument("--load", type=float, default=160.0,
                        help="montecarlo nominal load, fF")
    submit.add_argument("--skews", type=float, nargs="+",
                        default=[0.0, 0.05, 0.1, 0.15, 0.25, 0.4],
                        help="montecarlo skew grid, ns")
    submit.add_argument("--backend",
                        choices=["serial", "thread", "process", "batch"],
                        default="serial")
    submit.add_argument("--workers", type=int, default=None)
    submit.add_argument("--batch-workers", type=int, default=None,
                        help="shard worker count for the batch backend "
                             "(default: REPRO_BATCH_WORKERS)")
    submit.add_argument("--tenant", type=str, default="",
                        help="cache namespace for this campaign")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-campaign wall budget, seconds")
    submit.add_argument("--client", type=str, default="",
                        help="client name (quota accounting)")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first")
    submit.add_argument("--stream", action="store_true",
                        help="stream progress events until the campaign "
                             "finishes")
    submit.add_argument("--wait-done", action="store_true",
                        help="block until the campaign is terminal")
    submit.add_argument("--wait", type=float, default=600.0,
                        help="--stream/--wait-done timeout, seconds")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status",
        help="one campaign's status record (no id: server health with "
             "scheduler liveness, heartbeat age and watchdog counters)",
    )
    add_client_flags(status)
    status.add_argument("id", type=str, nargs="?", default=None)
    status.set_defaults(func=_cmd_status)

    service = sub.add_parser(
        "service", help="offline maintenance of a service state directory"
    )
    service_sub = service.add_subparsers(dest="service_command",
                                         required=True)
    compact = service_sub.add_parser(
        "compact",
        help="atomically rewrite the lifecycle journal as its minimal "
             "snapshot (quarantining any corrupt lines found)",
    )
    compact.add_argument("root", type=str,
                         help="service state directory (the --state-dir "
                              "of the server that owns it; stop the "
                              "server first)")
    compact.set_defaults(func=_cmd_service_compact)

    result = sub.add_parser("result", help="a finished campaign's result")
    add_client_flags(result)
    result.add_argument("id", type=str)
    result.add_argument("-o", "--output", type=str, default=None)
    result.set_defaults(func=_cmd_result)

    cancel = sub.add_parser("cancel", help="cancel a campaign")
    add_client_flags(cancel)
    cancel.add_argument("id", type=str)
    cancel.set_defaults(func=_cmd_cancel)

    report = sub.add_parser(
        "report", help="aggregate benchmark outputs into REPORT.md"
    )
    report.add_argument(
        "--out-dir", type=str, default="benchmarks/out",
        help="directory holding the bench result blocks",
    )
    report.add_argument("-o", "--output", type=str, default=None)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
