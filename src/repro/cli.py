"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``waves``        Fig.-2/3 style waveform report for a chosen skew.
``sensitivity``  Fig.-4 style Vmin-vs-tau sweep and tau_min extraction.
``campaign``     Runtime-orchestrated sensitivity campaign: choice of
                 serial/thread/process/batch backend, cache reuse,
                 telemetry summary and JSON report.
``montecarlo``   Fig.-5 style Monte Carlo scatter with a seedable
                 population; ``--backend batch`` solves the whole
                 population in lockstep on the vectorised engine.
``cache``        Inspect or clear the content-addressed result cache.
``testability``  Sec.-3 fault-coverage analysis of the sensor.
``scheme``       Fig.-6 style campaign: sensors over an H-tree with an
                 injected fault, scan-path and checker readout.
``export``       Write the sensor netlist as a SPICE deck.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analog.engine import TransientOptions
from repro.units import VTH_INTERPRET, fF, ns, to_ns

_FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)


def _cmd_waves(args: argparse.Namespace) -> int:
    from repro.core.response import simulate_sensor
    from repro.core.sensing import SkewSensor
    from repro.report import waveform_report

    sensor = SkewSensor(
        load1=fF(args.load), load2=fF(args.load), full_swing=args.full_swing
    )
    response = simulate_sensor(
        sensor, skew=ns(args.skew), slew1=ns(args.slew), slew2=ns(args.slew),
        options=_FAST,
    )
    print(waveform_report(response, t0=ns(1.0), t1=ns(14.0)))
    return 0


def _sensitivity_grid(args: argparse.Namespace):
    return [ns(args.tau_max) * k / (args.points - 1) for k in range(args.points)]


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sweep_skew
    from repro.report import sensitivity_report
    from repro.runtime import Telemetry

    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    skews = _sensitivity_grid(args)
    curves = [
        sweep_skew(
            fF(load), ns(args.slew), skews, options=_FAST,
            backend=args.backend, cache=cache, telemetry=telemetry,
            max_workers=args.workers,
            warm_start=False if args.no_warm_start else None,
        )
        for load in args.loads
    ]
    print(sensitivity_report(curves))
    if args.stats:
        print("--- runtime telemetry ---")
        print(telemetry.summary())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sensitivity_family
    from repro.runtime import Telemetry
    from repro.units import to_ns

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    skews = _sensitivity_grid(args)
    with telemetry.timer("campaign"):
        curves = sensitivity_family(
            loads=[fF(load) for load in args.loads],
            slews=[ns(slew) for slew in args.slews],
            skews=skews,
            options=_FAST,
            backend=args.backend,
            cache=cache,
            telemetry=telemetry,
            max_workers=args.workers,
            on_error=args.on_error,
            checkpoint=args.checkpoint,
            resume=args.resume,
            warm_start=False if args.no_warm_start else None,
        )
    print(f"campaign: {len(curves)} curves x {args.points} skew points "
          f"({args.backend} backend)")
    if telemetry.jobs_failed:
        print(f"  {telemetry.jobs_failed} job(s) failed and were collected "
              "as JobError records (see telemetry)")
    for curve in curves:
        tau = curve.tau_min
        tau_text = f"{to_ns(tau):.3f} ns" if tau is not None else "no crossing"
        print(f"  load {curve.load * 1e15:6.1f} fF  slew "
              f"{curve.slew * 1e9:4.2f} ns : tau_min = {tau_text}")
    print("--- runtime telemetry ---")
    print(telemetry.summary())
    if args.json:
        telemetry.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.montecarlo.parallel import scatter_analysis_parallel
    from repro.montecarlo.sampling import sample_population
    from repro.runtime import Telemetry

    telemetry = Telemetry()
    cache = None if args.no_cache else "default"
    samples = sample_population(args.samples, fF(args.load), seed=args.seed)
    skews = [ns(tau) for tau in args.skews]
    with telemetry.timer("montecarlo"):
        points = scatter_analysis_parallel(
            samples, skews, options=_FAST, backend=args.backend,
            n_workers=args.workers, cache=cache, telemetry=telemetry,
            warm_start=False if args.no_warm_start else None,
        )
    seed_text = args.seed if args.seed is not None else "none (fresh draws)"
    print(f"montecarlo: {args.samples} samples x {len(skews)} skews "
          f"({args.backend} backend, seed {seed_text})")
    print("  tau[ns]   Vmin: min    mean    max   flagged")
    for tau, tau_ns in zip(skews, args.skews):
        vmins = np.array([p.vmin for p in points if p.skew == tau])
        flagged = int((vmins > VTH_INTERPRET).sum())
        print(f"  {tau_ns:6.2f}   {vmins.min():9.2f} {vmins.mean():7.2f} "
              f"{vmins.max():6.2f}   {flagged}/{len(vmins)}")
    if args.stats:
        print("--- runtime telemetry ---")
        print(telemetry.summary())
    if args.json:
        telemetry.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import get_cache, get_checkpoint_cache
    from repro.runtime.cache import ENV_CACHE_DIR, ENV_CACHE_DISABLE

    if args.checkpoints:
        cache = get_checkpoint_cache()
        tier = "checkpoint (prefix warm-start)"
    else:
        cache = get_cache()
        tier = "result"
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from the {tier} cache at "
              f"{cache.disk_dir or 'memory (disk tier disabled)'}")
        return 0
    # info
    print(f"tier       : {tier}")
    print(f"version    : v{cache.version} (engine fingerprint)")
    if cache.disk_enabled:
        size = cache.disk_size_bytes()
        print(f"directory  : {cache.disk_dir}")
        print(f"entries    : {cache.disk_entries()} on disk "
              f"({size / 1024:.1f} KiB), {len(cache)} in memory")
    else:
        print("directory  : disk tier disabled "
              f"(set {ENV_CACHE_DIR} or unset {ENV_CACHE_DISABLE})")
        print(f"entries    : {len(cache)} in memory")
    print(f"env        : {ENV_CACHE_DIR} overrides the directory, "
          f"{ENV_CACHE_DISABLE}=1 disables the disk tier")
    return 0


def _cmd_testability(args: argparse.Namespace) -> int:
    from repro.report import testability_report_text
    from repro.testing.testability import analyze_sensor_testability

    report = analyze_sensor_testability(options=_FAST)
    print(testability_report_text(report))
    return 0


def _cmd_scheme(args: argparse.Namespace) -> int:
    from repro.clocktree import Buffer, ResistiveOpen, build_h_tree
    from repro.testing.scheme import ClockTestingScheme

    tree = build_h_tree(levels=args.levels, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(args.tau_min), max_distance=args.max_distance_mm * 1e-3,
        top_k=args.sensors,
    )
    print(f"tree: {len(tree.sinks())} sinks; monitoring "
          f"{len(scheme.placements)} pairs")
    state = None
    if args.open_node:
        fault = ResistiveOpen(
            node=args.open_node, extra_resistance=args.open_ohms
        )
        print(f"injected: {fault.describe()}")
        state = fault.apply(tree)
    observations = scheme.observe(state)
    for obs in observations:
        print(
            f"  {obs.placement.indicator.name:<12} "
            f"skew {to_ns(obs.skew):+8.3f} ns  code {obs.code}"
        )
    print(f"scan path : {scheme.scan_out()}")
    print(f"checker   : {'ALARM' if scheme.online_alarm() else 'ok'}")
    from repro.testing.diagnosis import diagnose, diagnosis_report

    print("diagnosis :")
    for line in diagnosis_report(diagnose(scheme)).splitlines():
        print(f"  {line}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.circuit.spice import to_spice
    from repro.core.sensing import SkewSensor

    sensor = SkewSensor(
        load1=fF(args.load), load2=fF(args.load), full_swing=args.full_swing
    )
    netlist = sensor.build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive_dc("phi2", 0.0)
    deck = to_spice(netlist, title="skew sensing circuit (Favalli/Metra 1997)")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(deck)
        print(f"wrote {args.output}")
    else:
        print(deck, end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.aggregate import build_report, write_report

    if args.output:
        path = write_report(args.out_dir, args.output)
        print(f"wrote {path}")
    else:
        print(build_report(args.out_dir))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clock-skew testing scheme reproduction "
        "(Favalli & Metra, ED&TC 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    waves = sub.add_parser("waves", help="waveform report for one skew")
    waves.add_argument("--skew", type=float, default=1.0, help="tau in ns")
    waves.add_argument("--load", type=float, default=160.0, help="load in fF")
    waves.add_argument("--slew", type=float, default=0.2, help="slew in ns")
    waves.add_argument("--full-swing", action="store_true")
    waves.set_defaults(func=_cmd_waves)

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend",
                       choices=["serial", "thread", "process", "batch"],
                       default="serial", help="campaign executor backend "
                       "(batch = lockstep vectorised engine)")
        p.add_argument("--workers", type=int, default=None,
                       help="pool width (default: REPRO_MAX_WORKERS or "
                            "half the CPUs)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache")
        p.add_argument("--no-warm-start", action="store_true",
                       help="disable prefix warm-start (full cold "
                            "transients, bit-identical to the pre-prefix "
                            "behaviour; same as REPRO_WARM_START=0)")

    sens = sub.add_parser("sensitivity", help="Vmin vs tau sweep")
    sens.add_argument("--loads", type=float, nargs="+",
                      default=[80.0, 160.0, 240.0], help="loads in fF")
    sens.add_argument("--slew", type=float, default=0.2, help="slew in ns")
    sens.add_argument("--tau-max", type=float, default=0.5, help="sweep end, ns")
    sens.add_argument("--points", type=int, default=8)
    add_runtime_flags(sens)
    sens.add_argument("--stats", action="store_true",
                      help="print runtime telemetry (cache hits, timings)")
    sens.set_defaults(func=_cmd_sensitivity)

    camp = sub.add_parser(
        "campaign",
        help="runtime-orchestrated sensitivity campaign with telemetry",
    )
    camp.add_argument("--loads", type=float, nargs="+",
                      default=[80.0, 160.0, 240.0], help="loads in fF")
    camp.add_argument("--slews", type=float, nargs="+",
                      default=[0.1, 0.2, 0.3, 0.4], help="slews in ns")
    camp.add_argument("--tau-max", type=float, default=0.5, help="sweep end, ns")
    camp.add_argument("--points", type=int, default=8)
    add_runtime_flags(camp)
    camp.add_argument("--json", type=str, default=None,
                      help="write the telemetry report to this JSON file")
    camp.add_argument("--on-error", choices=["raise", "collect"],
                      default="raise",
                      help="abort on the first failed job (raise) or record "
                           "it as a JobError and keep going (collect)")
    camp.add_argument("--checkpoint", type=str, default=None,
                      help="journal completed jobs to this JSONL file "
                           "(append-only; enables --resume)")
    camp.add_argument("--resume", action="store_true",
                      help="skip jobs already completed in the --checkpoint "
                           "journal instead of re-running them")
    camp.set_defaults(func=_cmd_campaign)

    mc = sub.add_parser(
        "montecarlo",
        help="Fig.-5 style Monte Carlo scatter (seedable population)",
    )
    mc.add_argument("--samples", type=int, default=30,
                    help="population size")
    mc.add_argument("--seed", type=int, default=None,
                    help="population seed (same seed = same draws; "
                         "omit for fresh draws)")
    mc.add_argument("--load", type=float, default=160.0,
                    help="nominal load in fF")
    mc.add_argument("--skews", type=float, nargs="+",
                    default=[0.0, 0.05, 0.1, 0.15, 0.25, 0.4],
                    help="skew grid in ns")
    add_runtime_flags(mc)
    mc.add_argument("--stats", action="store_true",
                    help="print runtime telemetry (batch counters, timings)")
    mc.add_argument("--json", type=str, default=None,
                    help="write the telemetry report to this JSON file")
    mc.set_defaults(func=_cmd_montecarlo)

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache.add_argument("action", choices=["info", "clear"], nargs="?",
                       default="info")
    cache.add_argument("--checkpoints", action="store_true",
                       help="operate on the prefix-checkpoint tier instead "
                            "of the result cache")
    cache.set_defaults(func=_cmd_cache)

    testa = sub.add_parser("testability", help="Sec.-3 fault coverage")
    testa.set_defaults(func=_cmd_testability)

    scheme = sub.add_parser("scheme", help="Fig.-6 campaign on an H-tree")
    scheme.add_argument("--levels", type=int, default=2)
    scheme.add_argument("--sensors", type=int, default=6)
    scheme.add_argument("--tau-min", type=float, default=0.12,
                        help="calibrated sensitivity, ns")
    scheme.add_argument("--max-distance-mm", type=float, default=8.0)
    scheme.add_argument("--open-node", type=str, default=None,
                        help="inject a resistive open at this tree node")
    scheme.add_argument("--open-ohms", type=float, default=8000.0)
    scheme.set_defaults(func=_cmd_scheme)

    export = sub.add_parser("export", help="SPICE deck of the sensor")
    export.add_argument("--load", type=float, default=160.0, help="load in fF")
    export.add_argument("--full-swing", action="store_true")
    export.add_argument("-o", "--output", type=str, default=None)
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser(
        "report", help="aggregate benchmark outputs into REPORT.md"
    )
    report.add_argument(
        "--out-dir", type=str, default="benchmarks/out",
        help="directory holding the bench result blocks",
    )
    report.add_argument("-o", "--output", type=str, default=None)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
