"""Clock distribution network substrate.

The paper's scheme lives inside a chip's clock distribution (Fig. 6): a
hierarchically buffered tree whose balanced branches can be upset by
parameter fluctuations, delay-model inaccuracies, crosstalk and
environmental noise.  This package provides:

* a tree datastructure with RC wire segments and buffers;
* an H-tree generator (the symmetric scheme of Fig. 6);
* a zero-skew DME router (the Chao/Boese/Kahng family the paper cites as
  the conventional skew-minimisation baseline);
* Elmore-delay timing and skew analysis;
* critical-pair selection (the paper's two placement criteria);
* tree-level fault injection producing the abnormal skews the sensor must
  catch.
"""

from repro.clocktree.tree import Buffer, ClockTree, TreeNode, Wire
from repro.clocktree.htree import build_h_tree
from repro.clocktree.spine import build_spine, rib_stations
from repro.clocktree.rc import WireModel, elmore_delays, subtree_capacitance
from repro.clocktree.dme import build_zero_skew_tree
from repro.clocktree.skew import (
    CriticalPair,
    pairwise_skew,
    select_critical_pairs,
    sink_skew_table,
)
from repro.clocktree.faults import (
    BufferSlowdown,
    CrosstalkCoupling,
    ResistiveOpen,
    SupplyNoise,
    TreeFault,
    perturb_tree,
    skew_change,
)
from repro.clocktree.rc import sink_delays
from repro.clocktree.budget import (
    SkewBudget,
    recommend_sensitivity,
    skew_budget,
    tune_threshold,
)
from repro.clocktree.intermittent import (
    CampaignResult,
    IntermittentFault,
    monitoring_campaign,
)
from repro.clocktree.electrical import (
    TreeNetlistBuilder,
    cosimulate_pair_with_sensor,
    electrical_sink_arrivals,
)
from repro.clocktree.whole_tree import (
    GridNetlistBuilder,
    SensorPlacement,
    WholeTreeNetlistBuilder,
    WholeTreeRun,
    attach_sensors,
    select_sensor_pairs,
    simulate_whole_tree,
)

__all__ = [
    "ClockTree",
    "TreeNode",
    "Wire",
    "Buffer",
    "build_h_tree",
    "build_spine",
    "rib_stations",
    "build_zero_skew_tree",
    "WireModel",
    "elmore_delays",
    "subtree_capacitance",
    "pairwise_skew",
    "sink_skew_table",
    "select_critical_pairs",
    "CriticalPair",
    "TreeFault",
    "ResistiveOpen",
    "CrosstalkCoupling",
    "BufferSlowdown",
    "SupplyNoise",
    "perturb_tree",
    "skew_change",
    "sink_delays",
    "TreeNetlistBuilder",
    "electrical_sink_arrivals",
    "cosimulate_pair_with_sensor",
    "WholeTreeNetlistBuilder",
    "GridNetlistBuilder",
    "SensorPlacement",
    "WholeTreeRun",
    "attach_sensors",
    "select_sensor_pairs",
    "simulate_whole_tree",
    "IntermittentFault",
    "CampaignResult",
    "monitoring_campaign",
    "SkewBudget",
    "skew_budget",
    "recommend_sensitivity",
    "tune_threshold",
]
