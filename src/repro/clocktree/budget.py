"""Skew budgets and sensor-sensitivity tuning.

Sec. 2: "By acting on such a threshold voltage (Vth) and/or on the delay of
the sensing circuit blocks, it is possible to set a suitable tolerance
interval."  This module derives what *suitable* means for a synchronous
machine and tunes the sensor to it:

* :func:`skew_budget` - the classic setup/hold window on the skew between
  a launch flop's clock and a capture flop's clock::

      setup:  t_skew >= clk_to_q + comb_max + setup - period
      hold:   t_skew <= clk_to_q + comb_min - hold

  (``t_skew = t_capture - t_launch``; a skew inside the window is harmless
  by construction, one outside it can break the machine);

* :func:`recommend_sensitivity` - the largest ``tau_min`` that still
  catches every dangerous skew, with a safety margin;

* :func:`tune_threshold` - solve for the interpretation threshold ``Vth``
  that realises a requested ``tau_min`` on a given sensor (the paper's
  first knob), by bisection on the measured sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing
from repro.core.sensitivity import extract_tau_min
from repro.devices.process import ProcessParams
from repro.units import ns


@dataclass(frozen=True)
class SkewBudget:
    """Allowed skew window ``[min_skew, max_skew]`` for one timing path."""

    min_skew: float   # most negative tolerable skew (setup side)
    max_skew: float   # most positive tolerable skew (hold side)

    def __post_init__(self) -> None:
        if self.min_skew > self.max_skew:
            raise ValueError(
                "infeasible timing: setup bound exceeds hold bound "
                f"({self.min_skew} > {self.max_skew})"
            )

    @property
    def symmetric_tolerance(self) -> float:
        """Largest ``t`` such that any skew in ``[-t, t]`` is safe."""
        return max(0.0, min(-self.min_skew, self.max_skew))

    def contains(self, skew: float) -> bool:
        """Whether ``skew`` is harmless for this path."""
        return self.min_skew <= skew <= self.max_skew


def skew_budget(
    period: float,
    comb_min: float,
    comb_max: float,
    clk_to_q: float = 200e-12,
    setup: float = 100e-12,
    hold: float = 50e-12,
) -> SkewBudget:
    """Setup/hold skew window for a launch->capture path.

    Parameters mirror :class:`~repro.logicsim.flipflop.DFlipFlop`;
    ``comb_min`` / ``comb_max`` bound the combinational delay between the
    two flops.
    """
    if comb_min > comb_max:
        raise ValueError("comb_min exceeds comb_max")
    lower = clk_to_q + comb_max + setup - period
    upper = clk_to_q + comb_min - hold
    return SkewBudget(min_skew=lower, max_skew=upper)


def recommend_sensitivity(budget: SkewBudget, margin: float = 0.8) -> float:
    """The ``tau_min`` a monitoring sensor should be tuned to.

    The sensor must flag every skew the machine cannot tolerate, so its
    sensitivity must sit *inside* the budget; ``margin`` < 1 keeps a guard
    band for the sensor's own variability (Tab. 1's ``p_loose``).
    """
    if not 0.0 < margin <= 1.0:
        raise ValueError("margin must be in (0, 1]")
    tolerance = budget.symmetric_tolerance
    if tolerance <= 0.0:
        raise ValueError(
            "path has no symmetric skew tolerance; fix the timing first"
        )
    return tolerance * margin


def tune_threshold(
    target_tau_min: float,
    load: float,
    sizing: Optional[SensorSizing] = None,
    process: Optional[ProcessParams] = None,
    vth_lo: float = 1.2,
    vth_hi: float = 4.2,
    tolerance: float = ns(0.005),
    options: Optional[TransientOptions] = None,
) -> float:
    """Interpretation threshold realising ``target_tau_min``.

    ``tau_min`` grows monotonically with ``Vth`` (see the threshold
    ablation), so a bisection on measured sensitivity converges.  Raises
    ``ValueError`` when the target is outside the achievable range for
    this sizing/load.
    """
    def measured(vth: float) -> float:
        return extract_tau_min(
            load, sizing=sizing, process=process, threshold=vth,
            tolerance=tolerance, options=options,
        )

    lo_val = measured(vth_lo)
    hi_val = measured(vth_hi)
    if not lo_val <= target_tau_min <= hi_val:
        raise ValueError(
            f"target tau_min {target_tau_min:.3e} s outside achievable "
            f"range [{lo_val:.3e}, {hi_val:.3e}] for this sensor"
        )
    lo, hi = vth_lo, vth_hi
    for _ in range(20):
        mid = 0.5 * (lo + hi)
        if measured(mid) < target_tau_min:
            lo = mid
        else:
            hi = mid
        if hi - lo < 0.02:
            break
    return 0.5 * (lo + hi)
