"""Zero-skew clock routing (deferred-merge / balanced-tap construction).

This is the conventional skew-minimisation baseline the paper cites
([2] Boese & Kahng, [3] Chao, Hsu, Ho, Boese, Kahng): given the sink
positions and loads, build a binary merge tree whose every internal tap
point is placed so the Elmore delays of its two subtrees are *exactly*
equal, elongating (snaking) the shorter side's wire when balance is not
achievable on the direct connection.

The implementation merges greedily by nearest-neighbour pairing per round
(the practical variant of recursive matching) and places tap points on the
L-shaped Manhattan path between subtree roots.  The zero-skew property is
independent of the pairing choices: every merge re-balances its own two
subtrees, so the final root sees all sinks at one delay.

The result plugs into the same :mod:`repro.clocktree.rc` timing model, so
fault injection and sensor placement work identically on H-trees and
DME-routed trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.clocktree.rc import WireModel
from repro.clocktree.tree import Buffer, ClockTree, Point, TreeNode, Wire, manhattan


@dataclass
class _Subtree:
    """Bookkeeping for one partially merged subtree."""

    node: TreeNode
    delay: float       # root-point-to-sink Elmore delay (equal to all sinks)
    capacitance: float  # total downstream capacitance seen at the root point


def _point_along(a: Point, b: Point, distance: float) -> Point:
    """Point at ``distance`` from ``a`` along the L-path a -> (b.x, a.y) -> b."""
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    if distance <= abs(dx):
        step = math.copysign(distance, dx) if dx != 0.0 else 0.0
        return (a[0] + step, a[1])
    rest = min(distance - abs(dx), abs(dy))
    step = math.copysign(rest, dy) if dy != 0.0 else 0.0
    return (b[0], a[1] + step)


def _balance_tap(
    t1: float, c1: float, t2: float, c2: float, length: float, model: WireModel
) -> Tuple[float, float, float]:
    """Balanced tap on a wire of ``length`` joining subtrees 1 and 2.

    Returns ``(x1, len1, len2)`` where ``x1`` is the tap's distance from
    subtree 1 along the direct path (for geometric placement) and ``len1``
    / ``len2`` are the *electrical* wire lengths from the tap to each
    subtree root (``len != x`` only when snaking was needed).
    """
    r = model.resistance_per_length
    c = model.capacitance_per_length
    if length == 0.0:
        # Coincident roots: balance purely by elongation if needed.
        if t1 == t2:
            return 0.0, 0.0, 0.0
        if t1 > t2:
            return 0.0, 0.0, _elongation(t1 - t2, c2, model)
        return 0.0, _elongation(t2 - t1, c1, model), 0.0

    x = (t2 - t1 + r * length * c2 + 0.5 * r * c * length**2) / (
        r * (c * length + c1 + c2)
    )
    if 0.0 <= x <= length:
        return x, x, length - x
    if x < 0.0:
        # Subtree 1 is too slow even tapping at its root: snake side 2.
        extra = t1 - (t2 + r * length * (0.5 * c * length + c2))
        len2 = length + _elongation(extra, c2 + c * length, model)
        return 0.0, 0.0, len2
    # Symmetric case: snake side 1.
    extra = t2 - (t1 + r * length * (0.5 * c * length + c1))
    len1 = length + _elongation(extra, c1 + c * length, model)
    return length, len1, 0.0


def _elongation(delay_gap: float, load: float, model: WireModel) -> float:
    """Extra wire length whose Elmore delay into ``load`` equals
    ``delay_gap`` (the snaking solution of the balance quadratic)."""
    if delay_gap <= 0.0:
        return 0.0
    r = model.resistance_per_length
    c = model.capacitance_per_length
    disc = (r * load) ** 2 + 2.0 * r * c * delay_gap
    return (math.sqrt(disc) - r * load) / (r * c)


def _merge(
    a: _Subtree, b: _Subtree, name: str, model: WireModel
) -> _Subtree:
    """Merge two subtrees at a zero-skew tap point."""
    r = model.resistance_per_length
    c = model.capacitance_per_length
    pa, pb = a.node.position, b.node.position
    direct = manhattan(pa, pb)
    x, len_a, len_b = _balance_tap(
        a.delay, a.capacitance, b.delay, b.capacitance, direct, model
    )
    tap = TreeNode(name=name, position=_point_along(pa, pb, x))
    a.node.wire = Wire(length=len_a)
    b.node.wire = Wire(length=len_b)
    tap.add_child(a.node)
    tap.add_child(b.node)

    delay = a.delay + r * len_a * (0.5 * c * len_a + a.capacitance)
    capacitance = a.capacitance + b.capacitance + c * (len_a + len_b)
    return _Subtree(node=tap, delay=delay, capacitance=capacitance)


def _pair_greedy(items: List[_Subtree]) -> List[Tuple[_Subtree, Optional[_Subtree]]]:
    """Nearest-neighbour pairing; the odd leftover is carried unpaired."""
    remaining = list(items)
    pairs: List[Tuple[_Subtree, Optional[_Subtree]]] = []
    while len(remaining) > 1:
        base = remaining.pop(0)
        best_index = min(
            range(len(remaining)),
            key=lambda k: manhattan(
                base.node.position, remaining[k].node.position
            ),
        )
        pairs.append((base, remaining.pop(best_index)))
    if remaining:
        pairs.append((remaining[0], None))
    return pairs


def build_zero_skew_tree(
    sinks: Sequence[Tuple[str, Point, float]],
    model: Optional[WireModel] = None,
    root_buffer: Optional[Buffer] = None,
    name: str = "dme-tree",
) -> ClockTree:
    """Route a zero-skew tree over ``sinks``.

    Parameters
    ----------
    sinks:
        ``(name, (x, y), load_capacitance)`` triples.
    model:
        Wire parasitics; must match the model later used for timing.
    root_buffer:
        Optional buffer at the final root (a common-path buffer preserves
        zero skew exactly).

    Returns
    -------
    A :class:`ClockTree` whose sink Elmore delays are equal (to numerical
    precision) under the same ``model``.
    """
    if not sinks:
        raise ValueError("need at least one sink")
    model = model or WireModel()

    level: List[_Subtree] = [
        _Subtree(
            node=TreeNode(name=sink_name, position=pos, sink_capacitance=cap),
            delay=0.0,
            capacitance=cap,
        )
        for sink_name, pos, cap in sinks
    ]
    counter = 0
    while len(level) > 1:
        nxt: List[_Subtree] = []
        for a, b in _pair_greedy(level):
            if b is None:
                nxt.append(a)
                continue
            nxt.append(_merge(a, b, f"m{counter}", model))
            counter += 1
        level = nxt

    root = level[0].node
    if root_buffer is not None:
        root.buffer = Buffer(
            drive_resistance=root_buffer.drive_resistance,
            input_capacitance=root_buffer.input_capacitance,
            intrinsic_delay=root_buffer.intrinsic_delay,
        )
    return ClockTree(root=root, name=name)
