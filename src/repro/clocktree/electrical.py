"""Transistor/RC-level co-simulation of clock-tree paths.

The Elmore model in :mod:`repro.clocktree.rc` is the design-time view; this
module lowers selected root-to-sink paths into an electrical netlist -
distributed RC ladders for the wires, CMOS inverter pairs for the buffers,
lumped capacitances for the side branches - and simulates them with the
:mod:`repro.analog` engine.  Two uses:

* **validation** - electrical sink arrival times track the Elmore ordering
  (Elmore is a first-order upper-bound-flavoured estimate; crossovers
  between similar paths are possible, large skews agree);
* **full-stack demonstration** - the sensing circuit can be attached
  *directly* to two electrical sink nodes, closing the loop of Fig. 6 at
  transistor level: clock generator -> buffered RC tree (with an injected
  defect) -> sensing circuit -> error indication, in one netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analog.engine import TransientOptions, TransientResult, transient
from repro.circuit.compose import graft, prefixed_guess
from repro.circuit.netlist import Netlist
from repro.clocktree.rc import WireModel, subtree_capacitance
from repro.clocktree.tree import Buffer, ClockTree, TreeNode
from repro.core.sensing import SkewSensor
from repro.devices.mosfet import MosfetType
from repro.devices.process import ProcessParams, nominal_process
from repro.devices.sources import ClockSource
from repro.units import VTH_INTERPRET, ns


@dataclass(frozen=True)
class InverterSizing:
    """CMOS inverter geometry realising a buffer's drive strength."""

    w_n: float
    w_p: float
    length: float = 1.2e-6


def buffer_inverter_sizing(
    buffer: Buffer, process: ProcessParams
) -> InverterSizing:
    """Size an inverter whose effective pull resistance matches ``buffer``.

    First-order: a conducting MOSFET averaged over a rail-to-rail output
    transition presents ``R ~= 1 / (beta * (VDD - VT))``; solve for W.
    The PMOS is widened by the mobility ratio so rise and fall match.
    """
    vdd = process.vdd
    length = 1.2e-6
    overdrive_n = vdd - process.nmos.vt0
    w_n = length / (
        process.nmos.kp * overdrive_n * buffer.drive_resistance
    )
    ratio = process.nmos.kp / process.pmos.kp
    return InverterSizing(w_n=w_n, w_p=w_n * ratio, length=length)


class TreeNetlistBuilder:
    """Lower root-to-sink paths of a clock tree into a netlist.

    Only the nodes on the requested paths are expanded; every off-path
    branch is represented by its exact Elmore-equivalent lumped
    capacitance (wire + subtree), so the loading seen by the expanded
    paths matches the full tree.
    """

    def __init__(
        self,
        tree: ClockTree,
        sinks: List[str],
        process: Optional[ProcessParams] = None,
        model: Optional[WireModel] = None,
        segments_per_wire: int = 3,
        source_resistance: float = 100.0,
    ) -> None:
        self.tree = tree
        self.sink_names = list(sinks)
        self.process = process or nominal_process()
        self.model = model or WireModel()
        self.segments = max(1, segments_per_wire)
        self.source_resistance = source_resistance
        self.netlist = Netlist(name=f"{tree.name}-electrical")
        self.sink_nodes: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #
    def _name(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def _add_wire_ladder(self, a: str, b: str, node: TreeNode) -> None:
        """Distributed RC ladder for the wire feeding ``node``."""
        r_total = self.model.segment_r(node)
        c_total = self.model.segment_c(node)
        n = self.segments
        current = a
        for k in range(n):
            nxt = b if k == n - 1 else self._name("w")
            self.netlist.add_resistor(
                self._name("r"), current, nxt, max(r_total / n, 1e-3)
            )
            # pi-ish ladder: half-caps at both segment ends.
            self.netlist.add_capacitor(
                self._name("c"), current, "0", c_total / (2 * n)
            )
            self.netlist.add_capacitor(
                self._name("c"), nxt, "0", c_total / (2 * n)
            )
            current = nxt

    def _add_buffer(self, a: str, b: str, buffer: Buffer) -> None:
        """Non-inverting buffer: two cascaded CMOS inverters."""
        sizing = buffer_inverter_sizing(buffer, self.process)
        mid = self._name("bufmid")
        for stage_in, stage_out in ((a, mid), (mid, b)):
            self.netlist.add_mosfet(
                self._name("mp"), stage_out, stage_in, "vdd",
                MosfetType.PMOS, sizing.w_p, sizing.length, self.process.pmos,
            )
            self.netlist.add_mosfet(
                self._name("mn"), stage_out, stage_in, "0",
                MosfetType.NMOS, sizing.w_n, sizing.length, self.process.nmos,
            )

    # ------------------------------------------------------------------ #
    def build(self, clock: ClockSource) -> Netlist:
        """Expand the paths and return the netlist.

        ``clock`` drives the generator node through the source resistance.
        Sink electrical nodes are recorded in :attr:`sink_nodes`.
        """
        self.netlist.drive_dc("vdd", self.process.vdd)
        self.netlist.drive("clkgen", clock)

        wanted = {name: self.tree.node(name) for name in self.sink_names}
        on_path: set = set()
        for node in wanted.values():
            for step in self.tree.path_to(node):
                on_path.add(id(step))

        root_node = self._name("n_root")
        self.netlist.add_resistor(
            self._name("r"), "clkgen", root_node, self.source_resistance
        )

        self._expand(self.tree.root, root_node, on_path)
        return self.netlist

    def _expand(self, node: TreeNode, electrical: str, on_path: set) -> None:
        """Recursively expand ``node`` whose input point is ``electrical``."""
        if node.buffer is not None:
            out = self._name("n_buf")
            self._add_buffer(electrical, out, node.buffer)
            electrical = out
        if node.sink_capacitance > 0:
            self.netlist.add_capacitor(
                self._name("c"), electrical, "0", node.sink_capacitance
            )
        if node.name in self.sink_names:
            self.sink_nodes[node.name] = electrical

        for child in node.children:
            if id(child) in on_path:
                child_node = self._name("n_" + child.name)
                self._add_wire_ladder(electrical, child_node, child)
                self._expand(child, child_node, on_path)
            else:
                # Off-path branch: exact lumped load at the tap point.
                lumped = self.model.segment_c(child) + subtree_capacitance(
                    child, self.model
                )
                if lumped > 0:
                    self.netlist.add_capacitor(
                        self._name("c"), electrical, "0", lumped
                    )


def electrical_sink_arrivals(
    tree: ClockTree,
    sinks: List[str],
    process: Optional[ProcessParams] = None,
    model: Optional[WireModel] = None,
    period: float = ns(20.0),
    slew: float = ns(0.2),
    settle: float = ns(2.0),
    level: Optional[float] = None,
    segments_per_wire: int = 3,
    source_resistance: float = 100.0,
    options: Optional[TransientOptions] = None,
) -> Dict[str, float]:
    """Electrically measured arrival time of the first rising edge.

    Returns, per sink, the time its waveform first crosses ``level``
    (default VDD/2) minus the generator edge start - directly comparable
    to the Elmore insertion delays of :func:`repro.clocktree.rc.sink_delays`
    up to the model-order difference.
    """
    process = process or nominal_process()
    clock = ClockSource(period=period, slew=slew, delay=settle, vdd=process.vdd)
    builder = TreeNetlistBuilder(
        tree, sinks, process=process, model=model,
        segments_per_wire=segments_per_wire,
        source_resistance=source_resistance,
    )
    netlist = builder.build(clock)
    result = transient(
        netlist,
        t_stop=settle + period / 2.0,
        record=list(builder.sink_nodes.values()),
        options=options,
    )
    level = process.vdd / 2.0 if level is None else level
    arrivals: Dict[str, float] = {}
    for sink, node in builder.sink_nodes.items():
        crossing = result.wave(node).first_crossing(level, rising=True)
        if crossing is None:
            raise RuntimeError(f"sink {sink} never crossed {level} V")
        arrivals[sink] = crossing - settle
    return arrivals


def cosimulate_pair_with_sensor(
    tree: ClockTree,
    sink_a: str,
    sink_b: str,
    sensor: Optional[SkewSensor] = None,
    process: Optional[ProcessParams] = None,
    model: Optional[WireModel] = None,
    period: float = ns(20.0),
    slew: float = ns(0.2),
    settle: float = ns(2.0),
    threshold: float = VTH_INTERPRET,
    segments_per_wire: int = 3,
    source_resistance: float = 100.0,
    options: Optional[TransientOptions] = None,
) -> Tuple[Tuple[int, int], TransientResult, Dict[str, str]]:
    """Full-stack Fig. 6 at transistor level.

    Builds ONE netlist containing the clock generator, the buffered RC
    paths to ``sink_a`` and ``sink_b`` (side branches lumped), and the
    sensing circuit wired to those two electrical nodes (``sink_a`` ->
    ``phi1``, ``sink_b`` -> ``phi2``), then simulates a full clock period.

    Returns ``(code, result, node_map)`` where ``code`` is the sensor's
    threshold-interpreted ``(y1, y2)`` pair sampled mid-high-phase and
    ``node_map`` maps logical names (sinks, sensor outputs) to netlist
    node names.
    """
    process = process or nominal_process()
    sensor = sensor or SkewSensor(process=process)
    clock = ClockSource(period=period, slew=slew, delay=settle, vdd=process.vdd)

    builder = TreeNetlistBuilder(
        tree, [sink_a, sink_b], process=process, model=model,
        segments_per_wire=segments_per_wire,
        source_resistance=source_resistance,
    )
    netlist = builder.build(clock)
    node_a = builder.sink_nodes[sink_a]
    node_b = builder.sink_nodes[sink_b]

    # Graft the sensor onto the tree nodes: its clock inputs are the
    # electrical sink nodes themselves (the "balanced connection").
    mapping = graft(
        netlist, sensor.build(), prefix="sens",
        connections={"phi1": node_a, "phi2": node_b},
    )
    y1, y2 = mapping["y1"], mapping["y2"]
    initial = prefixed_guess(sensor.dc_guess(), mapping)
    result = transient(
        netlist,
        t_stop=settle + period,
        record=[node_a, node_b, y1, y2],
        initial=initial,
        options=options,
    )

    t_sample = settle + 0.4 * period
    code = (
        1 if result.wave(y1).at(t_sample) > threshold else 0,
        1 if result.wave(y2).at(t_sample) > threshold else 0,
    )
    node_map = {
        sink_a: node_a, sink_b: node_b, "y1": y1, "y2": y2,
    }
    return code, result, node_map

