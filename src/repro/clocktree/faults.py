"""Tree-level fault injection.

Sec. 1 lists the failure mechanisms conventional clock-tree design cannot
rule out: "circuit parameter fluctuations, inaccuracies in the delay models
used to drive the clock routing process, crosstalk faults and environmental
failures (typically due to wire coupling with off-chip sources of noise)".
Each fault here perturbs a *copy* of a clock tree; re-running the Elmore
timing then yields the abnormal skews presented to the sensing circuits.

Faults are small and composable; a scenario is just a list of them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.clocktree.tree import Buffer, ClockTree, TreeNode


def _copy_tree(tree: ClockTree) -> ClockTree:
    """Deep copy with parent links rebuilt."""

    def clone(node: TreeNode) -> TreeNode:
        fresh = TreeNode(
            name=node.name,
            position=node.position,
            wire=copy.copy(node.wire) if node.wire is not None else None,
            buffer=copy.copy(node.buffer) if node.buffer is not None else None,
            sink_capacitance=node.sink_capacitance,
        )
        for child in node.children:
            cloned = clone(child)
            cloned.parent = fresh
            fresh.children.append(cloned)
        return fresh

    return ClockTree(root=clone(tree.root), name=tree.name)


class TreeFault:
    """Base class: a perturbation of a clock tree."""

    def apply(self, tree: ClockTree) -> ClockTree:
        """Return a faulty copy of ``tree``."""
        faulty = _copy_tree(tree)
        self._mutate(faulty)
        return faulty

    def _mutate(self, tree: ClockTree) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class ResistiveOpen(TreeFault):
    """Partial open (resistive crack / via defect) in the wire feeding a
    node: adds series resistance, delaying everything behind it."""

    node: str
    extra_resistance: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"resistive open at {self.node} (+{self.extra_resistance:.0f} ohm)"

    def _mutate(self, tree: ClockTree) -> None:
        node = tree.node(self.node)
        if node.wire is None:
            raise ValueError(f"node {self.node} has no feeding wire (root?)")
        node.wire.extra_resistance += self.extra_resistance


@dataclass(frozen=True)
class CrosstalkCoupling(TreeFault):
    """Coupling to an aggressor net modelled as extra load capacitance on
    the victim segment (the Miller-factor worst case slows the victim)."""

    node: str
    coupling_capacitance: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"crosstalk on {self.node} "
            f"(+{self.coupling_capacitance * 1e15:.0f} fF)"
        )

    def _mutate(self, tree: ClockTree) -> None:
        node = tree.node(self.node)
        if node.wire is None:
            raise ValueError(f"node {self.node} has no feeding wire (root?)")
        node.wire.extra_capacitance += self.coupling_capacitance


@dataclass(frozen=True)
class BufferSlowdown(TreeFault):
    """Degraded buffer (parameter fluctuation, supply droop, ageing):
    drive resistance and intrinsic delay scaled by ``factor`` > 1."""

    node: str
    factor: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"buffer slowdown at {self.node} (x{self.factor:.2f})"

    def _mutate(self, tree: ClockTree) -> None:
        node = tree.node(self.node)
        if node.buffer is None:
            raise ValueError(f"node {self.node} carries no buffer")
        node.buffer = node.buffer.scaled(self.factor)


@dataclass(frozen=True)
class SupplyNoise(TreeFault):
    """Environmental / supply noise: every buffer in the subtree under
    ``node`` slows by ``factor`` (regional disturbance)."""

    node: str
    factor: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"supply noise under {self.node} (x{self.factor:.2f})"

    def _mutate(self, tree: ClockTree) -> None:
        start = tree.node(self.node)
        stack = [start]
        touched = 0
        while stack:
            current = stack.pop()
            if current.buffer is not None:
                current.buffer = current.buffer.scaled(self.factor)
                touched += 1
            stack.extend(current.children)
        if touched == 0:
            raise ValueError(f"no buffers under {self.node}")


def perturb_tree(
    tree: ClockTree,
    rng: np.random.Generator,
    relative_variation: float = 0.15,
) -> ClockTree:
    """Random per-segment parameter fluctuation (process variation).

    Every wire's length-equivalent parasitics and every buffer's drive
    strength fluctuate independently and uniformly by
    ``+/- relative_variation`` - the mechanism behind criterion-1 skew
    criticality and the source of "unbalanced paths" in Sec. 1.
    """
    faulty = _copy_tree(tree)
    for node in faulty.walk():
        if node.wire is not None:
            factor = 1.0 + rng.uniform(-relative_variation, relative_variation)
            node.wire = replace(node.wire, length=node.wire.length * factor)
        if node.buffer is not None:
            factor = 1.0 + rng.uniform(-relative_variation, relative_variation)
            node.buffer = Buffer(
                drive_resistance=node.buffer.drive_resistance * factor,
                input_capacitance=node.buffer.input_capacitance,
                intrinsic_delay=node.buffer.intrinsic_delay * factor,
            )
    return faulty


def skew_change(
    nominal: Dict[str, float], faulty: Dict[str, float], sink_a: str, sink_b: str
) -> float:
    """Change in pair skew between two delay maps (seconds)."""
    before = nominal[sink_b] - nominal[sink_a]
    after = faulty[sink_b] - faulty[sink_a]
    return after - before
