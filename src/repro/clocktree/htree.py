"""Symmetric H-tree generator.

The H-tree is the canonical symmetric clock distribution scheme - the one
sketched in the paper's Fig. 6.  Level ``k`` splits the die into 4^k
congruent quadrants; every root-to-sink path has identical wire length, so
the nominal skew is zero by construction and any *observed* skew comes from
injected faults or parameter fluctuations - exactly the situation the
sensing circuit targets.
"""

from __future__ import annotations

from typing import Optional

from repro.clocktree.tree import Buffer, ClockTree, TreeNode, Wire


def build_h_tree(
    levels: int,
    chip_size: float = 10e-3,
    sink_capacitance: float = 50e-15,
    buffer: Optional[Buffer] = None,
    buffer_every: int = 1,
    name: str = "h-tree",
) -> ClockTree:
    """Build an H-tree with ``4 ** levels`` sinks.

    Parameters
    ----------
    levels:
        Number of H recursion levels (>= 1).
    chip_size:
        Die edge, metres; the root sits at the centre.
    sink_capacitance:
        Clock-pin load at each sink, farads.
    buffer:
        Template buffer inserted at branch points; ``None`` for an
        unbuffered tree.
    buffer_every:
        Insert buffers only at every ``buffer_every``-th level (hierarchical
        buffering, "buffers driving optimized interconnection networks").
    """
    if levels < 1:
        raise ValueError("an H-tree needs at least one level")
    if buffer_every < 1:
        raise ValueError("buffer_every must be >= 1")

    centre = chip_size / 2.0
    root = TreeNode(name="root", position=(centre, centre))
    if buffer is not None:
        root.buffer = Buffer(
            drive_resistance=buffer.drive_resistance,
            input_capacitance=buffer.input_capacitance,
            intrinsic_delay=buffer.intrinsic_delay,
        )
    counter = {"n": 0}

    def grow(node: TreeNode, half_span: float, level: int) -> None:
        """Add one H: two horizontal arms, each splitting vertically."""
        if level > levels:
            return
        x, y = node.position
        arm = half_span
        for dx in (-arm, arm):
            mid_name = f"b{counter['n']}"
            counter["n"] += 1
            mid = TreeNode(
                name=mid_name,
                position=(x + dx, y),
                wire=Wire(length=abs(dx)),
            )
            if buffer is not None and level % buffer_every == 0:
                mid.buffer = Buffer(
                    drive_resistance=buffer.drive_resistance,
                    input_capacitance=buffer.input_capacitance,
                    intrinsic_delay=buffer.intrinsic_delay,
                )
            node.add_child(mid)
            for dy in (-arm, arm):
                leaf_name = (
                    f"s{counter['n']}" if level == levels else f"n{counter['n']}"
                )
                counter["n"] += 1
                end = TreeNode(
                    name=leaf_name,
                    position=(x + dx, y + dy),
                    wire=Wire(length=abs(dy)),
                    sink_capacitance=sink_capacitance if level == levels else 0.0,
                )
                mid.add_child(end)
                grow(end, half_span / 2.0, level + 1)

    grow(root, chip_size / 4.0, 1)
    return ClockTree(root=root, name=name)
