"""Intermittent and transient clock-distribution faults.

Sec. 1 of the paper: "a small fraction of them can be classified as
permanent, while the others have to be considered (intrinsically or
practically) as transient" - and this is precisely why the scheme offers an
*on-line* mode: a transient fault active between off-line test sessions is
invisible to conventional testing, while a concurrently operating sensor
latches it the cycle it strikes.

:class:`IntermittentFault` wraps any :class:`~repro.clocktree.faults
.TreeFault` with an activation process (deterministic duty window or a
Bernoulli per-cycle process); :func:`monitoring_campaign` runs a testing
scheme cycle by cycle against it and records when each observation mode
first sees the fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.clocktree.faults import TreeFault
from repro.clocktree.tree import ClockTree
from repro.testing.scheme import ClockTestingScheme


@dataclass(frozen=True)
class IntermittentFault:
    """A tree fault that is only sometimes active.

    Attributes
    ----------
    fault:
        The underlying perturbation when active.
    activation_probability:
        Per-cycle Bernoulli probability of being active (ignored when
        ``active_cycles`` is given).
    active_cycles:
        Explicit set of active cycle indices (deterministic schedule).
    """

    fault: TreeFault
    activation_probability: float = 0.2
    active_cycles: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.activation_probability <= 1.0:
            raise ValueError("activation probability must be in [0, 1]")

    def is_active(self, cycle: int, rng: Optional[np.random.Generator] = None) -> bool:
        """Whether the fault is active in ``cycle``."""
        if self.active_cycles is not None:
            return cycle in self.active_cycles
        rng = rng or np.random.default_rng()
        return bool(rng.random() < self.activation_probability)

    def describe(self) -> str:
        """Human-readable one-liner."""
        if self.active_cycles is not None:
            return (
                f"intermittent {self.fault.describe()} "
                f"(cycles {sorted(self.active_cycles)})"
            )
        return (
            f"intermittent {self.fault.describe()} "
            f"(p = {self.activation_probability})"
        )


@dataclass
class CampaignResult:
    """Outcome of a cycle-by-cycle monitoring campaign."""

    cycles: int
    active_cycles: List[int]
    online_first_detection: Optional[int]
    online_alarm_cycles: List[int]
    latched_at_end: bool
    offline_session_detects: bool

    @property
    def online_detects(self) -> bool:
        """Whether on-line monitoring saw the fault at least once."""
        return self.online_first_detection is not None


def monitoring_campaign(
    scheme: ClockTestingScheme,
    fault: IntermittentFault,
    cycles: int,
    offline_test_cycle: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> CampaignResult:
    """Run ``cycles`` clock cycles of on-line monitoring against ``fault``.

    Per cycle: decide activation, evaluate every monitored pair, update
    the latching indicators, record the checker alarm.  The *off-line*
    comparison is a single test session at ``offline_test_cycle``: it sees
    the fault only if the fault happens to be active in that very cycle -
    the paper's argument for the on-line mode.

    The scheme's indicators are reset first; afterwards they hold the
    latched union of everything seen (scan-out diagnoses the event).
    """
    if cycles < 1:
        raise ValueError("campaign needs at least one cycle")
    rng = rng or np.random.default_rng()
    scheme.reset()
    faulty_tree: ClockTree = fault.fault.apply(scheme.tree)

    active_list: List[int] = []
    alarms: List[int] = []
    first: Optional[int] = None
    offline_detects = False

    for cycle in range(cycles):
        active = fault.is_active(cycle, rng)
        if active:
            active_list.append(cycle)
        observations = scheme.observe(faulty_tree if active else None)
        flagged_now = any(obs.flagged for obs in observations)
        if flagged_now:
            alarms.append(cycle)
            if first is None:
                first = cycle
        if cycle == offline_test_cycle:
            # The off-line session measures the tree state *now*.
            offline_detects = active and flagged_now

    return CampaignResult(
        cycles=cycles,
        active_cycles=active_list,
        online_first_detection=first,
        online_alarm_cycles=alarms,
        latched_at_end=bool(scheme.flagged_pairs()),
        offline_session_detects=offline_detects,
    )
