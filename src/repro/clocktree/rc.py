"""Elmore-delay timing of a buffered RC clock tree.

Each wire segment is a distributed RC line, represented for Elmore purposes
by its total resistance with half its capacitance at each end (pi model):
resistance ``r * L + extra_r``, capacitance ``c * L + extra_c``.  Buffers
partition the tree into *stages*: a buffer presents its input capacitance
to the upstream stage and re-drives the downstream stage from its own drive
resistance, adding its intrinsic delay.

The incremental Elmore identity used here: within a stage,

``t(child) = t(parent) + r_wire * (c_wire / 2 + C_subtree(child))``

because every resistance upstream of the shared parent contributes equally
to both arrival times; and at a stage root (driver or buffer output),

``t = t(input) + t_intrinsic + R_drive * C_stage``.

This is the first-order model used by the zero-skew routing literature the
paper cites ([2], [3]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.clocktree.tree import ClockTree, TreeNode


@dataclass(frozen=True)
class WireModel:
    """Per-unit-length wire parasitics (typical of a 1.2 um metal layer).

    Attributes
    ----------
    resistance_per_length:
        ohm / m.
    capacitance_per_length:
        F / m.
    """

    resistance_per_length: float = 70e3       # 0.07 ohm/um
    capacitance_per_length: float = 150e-12   # 0.15 fF/um

    def segment_r(self, node: TreeNode) -> float:
        """Total resistance of the wire feeding ``node``."""
        wire = node.wire
        if wire is None:
            return 0.0
        return self.resistance_per_length * wire.length + wire.extra_resistance

    def segment_c(self, node: TreeNode) -> float:
        """Total capacitance of the wire feeding ``node``."""
        wire = node.wire
        if wire is None:
            return 0.0
        return self.capacitance_per_length * wire.length + wire.extra_capacitance


def stage_load(
    node: TreeNode, model: WireModel, cache: Optional[Dict[int, float]] = None
) -> float:
    """Capacitance the driver *at* ``node`` must charge.

    Ignores any buffer sitting at ``node`` itself (this is what that buffer
    drives); downstream buffers isolate their subtrees and contribute only
    their input capacitance.
    """
    total = node.sink_capacitance
    for child in node.children:
        total += model.segment_c(child) + subtree_capacitance(child, model, cache)
    return total


def subtree_capacitance(
    node: TreeNode, model: WireModel, cache: Optional[Dict[int, float]] = None
) -> float:
    """Capacitance seen looking into ``node`` from its feeding wire.

    A buffered node contributes only its buffer input capacitance (the
    buffer isolates everything behind it); otherwise the node's sink load
    plus all child segments and their subtrees.
    """
    if cache is not None and id(node) in cache:
        return cache[id(node)]
    if node.buffer is not None:
        total = node.buffer.input_capacitance
    else:
        total = stage_load(node, model, cache)
    if cache is not None:
        cache[id(node)] = total
    return total


def elmore_delays(
    tree: ClockTree,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
) -> Dict[str, float]:
    """Elmore delay from the clock generator to every node, by name.

    Parameters
    ----------
    source_resistance:
        Drive resistance of the clock generator at the root.
    """
    model = model or WireModel()
    cache: Dict[int, float] = {}
    delays: Dict[str, float] = {}

    def visit(node: TreeNode, arrival: float) -> None:
        """``arrival`` is the Elmore time at ``node``'s input point."""
        if node.buffer is not None:
            arrival += node.buffer.intrinsic_delay
            arrival += node.buffer.drive_resistance * stage_load(node, model, cache)
        delays[node.name] = arrival
        for child in node.children:
            r = model.segment_r(child)
            c = model.segment_c(child)
            step = r * (0.5 * c + subtree_capacitance(child, model, cache))
            visit(child, arrival + step)

    root = tree.root
    visit(root, source_resistance * subtree_capacitance(root, model, cache))
    return delays


def sink_delays(
    tree: ClockTree,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
) -> Dict[str, float]:
    """Elmore delays restricted to the sinks."""
    all_delays = elmore_delays(tree, model, source_resistance)
    return {s.name: all_delays[s.name] for s in tree.sinks()}
