"""Skew analysis and critical-pair selection.

Sec. 2 gives the two criteria for choosing which couples of clock wires to
monitor:

1. *the skew between them must be critical* - timing analysis flags pairs
   whose skew under parameter fluctuation has the highest spread;
2. *they must be close enough to each other* to allow a balanced connection
   to the sensing circuit.

:func:`select_critical_pairs` implements both: it estimates each pair's
skew variability with a perturbation analysis of the Elmore delays (every
wire segment's parasitics fluctuate independently, so the variance of a
pair's skew grows with the amount of *unshared* path between the two
sinks) and filters by physical distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.clocktree.rc import WireModel, elmore_delays
from repro.clocktree.tree import ClockTree, TreeNode, manhattan


def pairwise_skew(
    tree: ClockTree,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
) -> Dict[Tuple[str, str], float]:
    """Nominal skew ``t(b) - t(a)`` for every unordered sink pair ``(a, b)``
    with ``a < b`` lexicographically."""
    delays = elmore_delays(tree, model, source_resistance)
    sinks = sorted(s.name for s in tree.sinks())
    return {
        (a, b): delays[b] - delays[a] for a, b in combinations(sinks, 2)
    }


def sink_skew_table(
    tree: ClockTree,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
) -> Tuple[List[str], np.ndarray]:
    """Sink names and the antisymmetric skew matrix ``S[i, j] = t_j - t_i``."""
    delays = elmore_delays(tree, model, source_resistance)
    names = sorted(s.name for s in tree.sinks())
    t = np.array([delays[n] for n in names])
    return names, t[None, :] - t[:, None]


def _unshared_wire(tree: ClockTree, a: TreeNode, b: TreeNode) -> float:
    """Total wire length on the two root paths outside the shared prefix.

    The larger this is, the less correlated the two arrival times are
    under independent per-segment parameter fluctuation - the first-order
    proxy for skew criticality used by criterion 1.
    """
    path_a = tree.path_to(a)
    path_b = tree.path_to(b)
    shared: Set[int] = set()
    for x, y in zip(path_a, path_b):
        if x is y:
            shared.add(id(x))
        else:
            break
    total = 0.0
    for path in (path_a, path_b):
        for node in path:
            if id(node) not in shared and node.wire is not None:
                total += node.wire.length
    return total


@dataclass(frozen=True)
class CriticalPair:
    """A monitored couple of clock wires.

    Attributes
    ----------
    sink_a, sink_b:
        Sink names (lexicographic order).
    distance:
        Physical Manhattan distance between the sinks, metres.
    criticality:
        Unshared-path wire length (skew-variance proxy), metres.
    nominal_skew:
        Design skew ``t_b - t_a``, seconds.
    """

    sink_a: str
    sink_b: str
    distance: float
    criticality: float
    nominal_skew: float


def select_critical_pairs(
    tree: ClockTree,
    max_distance: float,
    top_k: Optional[int] = None,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
    max_nominal_skew: Optional[float] = None,
) -> List[CriticalPair]:
    """Choose sensor placements per the paper's two criteria.

    Parameters
    ----------
    max_distance:
        Criterion 2: only pairs within this Manhattan distance can be wired
        to a sensor with balanced lines.
    top_k:
        Keep only the ``top_k`` most critical pairs (all, when ``None``).
    max_nominal_skew:
        Exclude pairs whose *design* skew exceeds this value (seconds).
        Symmetric trees (H-tree, zero-skew routed) do not need it; comb/
        spine distributions do, since the sensor flags absolute skew and a
        pair with large nominal skew would alarm on a healthy chip.

    Returns
    -------
    Pairs sorted by decreasing criticality.
    """
    if max_distance <= 0:
        raise ValueError("max_distance must be positive")
    delays = elmore_delays(tree, model, source_resistance)
    sinks = sorted(tree.sinks(), key=lambda s: s.name)
    pairs: List[CriticalPair] = []
    for a, b in combinations(sinks, 2):
        distance = manhattan(a.position, b.position)
        if distance > max_distance:
            continue
        if max_nominal_skew is not None and abs(
            delays[b.name] - delays[a.name]
        ) > max_nominal_skew:
            continue
        pairs.append(
            CriticalPair(
                sink_a=a.name,
                sink_b=b.name,
                distance=distance,
                criticality=_unshared_wire(tree, a, b),
                nominal_skew=delays[b.name] - delays[a.name],
            )
        )
    pairs.sort(key=lambda p: (-p.criticality, p.distance, p.sink_a, p.sink_b))
    if top_k is not None:
        pairs = pairs[:top_k]
    return pairs
