"""Clock spine (comb) distribution.

The third classic distribution style next to the H-tree and the routed
zero-skew tree: a central vertical *spine* driven at one end, with
horizontal *ribs* branching off to the sinks.  Spines are cheap in wire
but inherently *unbalanced* - sinks near the driver lead those at the far
end - so they exercise the part of the scheme the symmetric topologies
cannot: monitored pairs must be chosen (or tolerances set) with the
*design* skew in mind, which is why
:func:`repro.clocktree.skew.select_critical_pairs` accepts a
``max_nominal_skew`` filter.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clocktree.tree import Buffer, ClockTree, TreeNode, Wire


def build_spine(
    n_ribs: int,
    sinks_per_rib: int = 2,
    spine_pitch: float = 1e-3,
    rib_length: float = 2e-3,
    sink_capacitance: float = 50e-15,
    buffer: Optional[Buffer] = None,
    name: str = "spine",
) -> ClockTree:
    """Build a comb: driver at the spine's south end, ribs going east/west.

    Parameters
    ----------
    n_ribs:
        Number of rib pairs along the spine (>= 1).
    sinks_per_rib:
        Sinks distributed evenly along each rib (>= 1).
    spine_pitch:
        Vertical distance between consecutive rib stations, metres.
    rib_length:
        Length of each rib, metres.
    buffer:
        Optional repeater inserted at every spine station.
    """
    if n_ribs < 1 or sinks_per_rib < 1:
        raise ValueError("need at least one rib and one sink per rib")

    root = TreeNode(name="root", position=(0.0, 0.0))
    if buffer is not None:
        root.buffer = Buffer(
            drive_resistance=buffer.drive_resistance,
            input_capacitance=buffer.input_capacitance,
            intrinsic_delay=buffer.intrinsic_delay,
        )
    current = root
    sink_index = 0
    for station in range(n_ribs):
        y = (station + 1) * spine_pitch
        stop = TreeNode(
            name=f"sp{station}",
            position=(0.0, y),
            wire=Wire(length=spine_pitch),
        )
        if buffer is not None:
            stop.buffer = Buffer(
                drive_resistance=buffer.drive_resistance,
                input_capacitance=buffer.input_capacitance,
                intrinsic_delay=buffer.intrinsic_delay,
            )
        current.add_child(stop)
        for side, direction in (("w", -1.0), ("e", 1.0)):
            previous = stop
            for k in range(sinks_per_rib):
                x = direction * rib_length * (k + 1) / sinks_per_rib
                tap = TreeNode(
                    name=f"rb{station}{side}{k}",
                    position=(x, y),
                    wire=Wire(length=rib_length / sinks_per_rib),
                )
                previous.add_child(tap)
                # The register cluster hangs off the tap with a short stub
                # so every sink is a leaf of the tree.
                stub = 50e-6
                tap.add_child(
                    TreeNode(
                        name=f"s{sink_index}",
                        position=(x, y + stub),
                        wire=Wire(length=stub),
                        sink_capacitance=sink_capacitance,
                    )
                )
                previous = tap
                sink_index += 1
        current = stop
    return ClockTree(root=root, name=name)


def rib_stations(tree: ClockTree) -> Sequence[str]:
    """Names of the spine stations (internal comb nodes), root to tip."""
    stations = [n.name for n in tree.walk() if n.name.startswith("sp")]
    return sorted(stations, key=lambda s: int(s[2:]))
