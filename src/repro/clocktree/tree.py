"""Clock tree datastructure.

A tree is a set of nodes (the root is the clock generator); each non-root
node hangs from its parent through a :class:`Wire` and may carry a
:class:`Buffer` at its input.  Sinks (leaves) have a load capacitance -
the clock pins of the flip-flops in that region.

Geometry is 2-D; wire electrical length defaults to the Manhattan distance
between endpoints but can be elongated (wire snaking, as used by zero-skew
routers to balance delays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

Point = Tuple[float, float]


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points (metres)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


@dataclass
class Buffer:
    """A clock buffer: ideal restoring stage with RC driving behaviour.

    Attributes
    ----------
    drive_resistance:
        Output resistance, ohms.
    input_capacitance:
        Load presented to the upstream net, farads.
    intrinsic_delay:
        Input-to-output delay at zero load, seconds.
    """

    drive_resistance: float = 400.0
    input_capacitance: float = 30e-15
    intrinsic_delay: float = 150e-12

    def scaled(self, factor: float) -> "Buffer":
        """A copy whose resistance and delay are multiplied by ``factor``
        (used by the buffer-slowdown fault)."""
        return Buffer(
            drive_resistance=self.drive_resistance * factor,
            input_capacitance=self.input_capacitance,
            intrinsic_delay=self.intrinsic_delay * factor,
        )


@dataclass
class Wire:
    """The wire segment connecting a node to its parent.

    ``length`` is the electrical length; ``extra_resistance`` and
    ``extra_capacitance`` model injected defects (resistive opens,
    crosstalk coupling load).
    """

    length: float
    extra_resistance: float = 0.0
    extra_capacitance: float = 0.0


@dataclass
class TreeNode:
    """One node of the clock tree."""

    name: str
    position: Point
    wire: Optional[Wire] = None          # None only for the root.
    buffer: Optional[Buffer] = None
    sink_capacitance: float = 0.0
    children: List["TreeNode"] = field(default_factory=list)
    parent: Optional["TreeNode"] = field(default=None, repr=False)

    @property
    def is_sink(self) -> bool:
        """Leaves of the tree are the monitored clock endpoints."""
        return not self.children

    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Attach ``child`` (its ``wire`` must be set)."""
        if child.wire is None:
            raise ValueError(f"child {child.name} needs a wire to its parent")
        child.parent = self
        self.children.append(child)
        return child


@dataclass
class ClockTree:
    """A rooted clock distribution tree."""

    root: TreeNode
    name: str = "clock-tree"

    def walk(self) -> Iterator[TreeNode]:
        """Depth-first iteration over all nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def sinks(self) -> List[TreeNode]:
        """All leaves, in depth-first order."""
        return [n for n in self.walk() if n.is_sink]

    def node(self, name: str) -> TreeNode:
        """Look up a node by name."""
        for n in self.walk():
            if n.name == name:
                return n
        raise KeyError(f"no node named {name!r} in {self.name}")

    def nodes_by_name(self) -> Dict[str, TreeNode]:
        """Name -> node mapping."""
        return {n.name: n for n in self.walk()}

    def path_to(self, node: TreeNode) -> List[TreeNode]:
        """Nodes from the root down to ``node`` inclusive."""
        path = [node]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        return list(reversed(path))

    def depth(self) -> int:
        """Longest root-to-leaf node count."""
        return max(len(self.path_to(s)) for s in self.sinks())

    def total_wire_length(self) -> float:
        """Sum of all wire electrical lengths (a router quality metric)."""
        return sum(n.wire.length for n in self.walk() if n.wire is not None)
