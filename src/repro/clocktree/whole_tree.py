"""Whole-chip clock distribution with N sensing circuits, one netlist.

The per-pair co-simulation of :mod:`repro.clocktree.electrical` expands
only the two monitored root-to-sink paths and lumps every side branch.
This module drops that approximation: the **entire** buffered tree is
lowered to transistor/RC level (every sink expanded - requesting all
sinks makes :class:`~repro.clocktree.electrical.TreeNetlistBuilder`'s
off-path lumping vacuous) and ``N`` sensing circuits are grafted onto
symmetric sink pairs chosen by the paper's placement criteria.  The
result is the paper's Fig. 6 at full-chip scale: one netlist, thousands
of nodes, clock generator through distribution network through sensors,
integrated by the sparse MNA path of :mod:`repro.sparse`.

Two topologies:

* :class:`WholeTreeNetlistBuilder` - the buffered H-tree (or any
  :class:`~repro.clocktree.tree.ClockTree`), fully expanded;
* :class:`GridNetlistBuilder` - a TRIX-style redundant clock *grid*
  (Wiederhake & Lenzen, see PAPERS.md): a rows x cols wire mesh fed by
  several buffered injection drivers, so every sink is reached over
  multiple paths and a dead driver degrades skew instead of killing a
  region - the setting where skew-sensing placement is genuinely
  interesting because faults shift skews without opening the network.

:func:`simulate_whole_tree` is the end-to-end driver (also behind the
``repro whole-tree`` CLI subcommand and the ``whole_tree`` campaign
kind): build, inject faults/variation, integrate, and read back per-pair
electrical skews plus per-sensor error codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analog.engine import TransientOptions, TransientResult, transient
from repro.circuit.compose import graft, prefixed_guess
from repro.circuit.netlist import Netlist
from repro.clocktree.electrical import TreeNetlistBuilder, buffer_inverter_sizing
from repro.clocktree.faults import TreeFault, perturb_tree
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import WireModel
from repro.clocktree.skew import CriticalPair, select_critical_pairs
from repro.clocktree.tree import Buffer, ClockTree, manhattan
from repro.core.sensing import SkewSensor
from repro.devices.mosfet import MosfetType
from repro.devices.process import ProcessParams, nominal_process
from repro.devices.sources import ClockSource
from repro.units import VTH_INTERPRET, ns


@dataclass(frozen=True)
class SensorPlacement:
    """One grafted sensing circuit and where to find it.

    ``sink_a``/``sink_b`` are the logical (tree or grid) names of the
    monitored pair; ``node_a``/``node_b`` the electrical nodes the
    sensor's ``phi1``/``phi2`` are wired to; ``y1``/``y2`` the grafted
    output nodes; ``prefix`` the graft namespace.
    """

    sink_a: str
    sink_b: str
    node_a: str
    node_b: str
    y1: str
    y2: str
    prefix: str

    @property
    def label(self) -> str:
        """Stable ``"a|b"`` key used in result dictionaries."""
        return f"{self.sink_a}|{self.sink_b}"


def select_sensor_pairs(
    tree: ClockTree,
    n_sensors: int,
    max_distance: Optional[float] = None,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
    max_nominal_skew: Optional[float] = None,
) -> List[CriticalPair]:
    """The ``n_sensors`` most critical *disjoint* sink pairs.

    :func:`~repro.clocktree.skew.select_critical_pairs` applies the
    paper's two placement criteria; on top, a greedy filter keeps each
    sink monitored by at most one sensor (a sink wired into two sensing
    circuits would see double clock-pin load, unbalancing the tree the
    scheme is supposed to watch).  ``max_distance`` defaults to the full
    die span, i.e. unconstrained.
    """
    if n_sensors < 1:
        raise ValueError("need at least one sensor")
    if max_distance is None:
        sinks = tree.sinks()
        max_distance = max(
            (manhattan(a.position, b.position)
             for a in sinks for b in sinks),
            default=1.0,
        ) + 1e-9
    ranked = select_critical_pairs(
        tree, max_distance=max_distance, model=model,
        source_resistance=source_resistance,
        max_nominal_skew=max_nominal_skew,
    )
    chosen: List[CriticalPair] = []
    used: set = set()
    for pair in ranked:
        if pair.sink_a in used or pair.sink_b in used:
            continue
        chosen.append(pair)
        used.add(pair.sink_a)
        used.add(pair.sink_b)
        if len(chosen) == n_sensors:
            return chosen
    raise ValueError(
        f"tree offers only {len(chosen)} disjoint sensor pairs "
        f"({n_sensors} requested)"
    )


def attach_sensors(
    netlist: Netlist,
    pairs: Sequence[Tuple[str, str, str, str]],
    process: Optional[ProcessParams] = None,
    sensor: Optional[SkewSensor] = None,
) -> Tuple[List[SensorPlacement], Dict[str, float]]:
    """Graft one sensing circuit per ``(name_a, node_a, name_b, node_b)``.

    Each sensor's clock inputs are wired directly to the two electrical
    nodes (the balanced connection of Fig. 6); instances live in
    ``sens<k>`` namespaces.  Returns the placements and the merged DC
    initial-guess dict for the grafted internals (the sensor latch is
    bistable - without the guess the operating point can land on the
    wrong branch).
    """
    sensor = sensor or SkewSensor(process=process or nominal_process())
    placements: List[SensorPlacement] = []
    initial: Dict[str, float] = {}
    for k, (name_a, node_a, name_b, node_b) in enumerate(pairs):
        prefix = f"sens{k}"
        mapping = graft(
            netlist, sensor.build(), prefix=prefix,
            connections={"phi1": node_a, "phi2": node_b},
        )
        initial.update(prefixed_guess(sensor.dc_guess(), mapping))
        placements.append(SensorPlacement(
            sink_a=name_a, sink_b=name_b, node_a=node_a, node_b=node_b,
            y1=mapping["y1"], y2=mapping["y2"], prefix=prefix,
        ))
    return placements, initial


class WholeTreeNetlistBuilder(TreeNetlistBuilder):
    """Lower the *entire* clock tree - every sink expanded.

    A thin specialisation of
    :class:`~repro.clocktree.electrical.TreeNetlistBuilder`: requesting
    all sinks puts every branch on-path, so nothing is lumped and the
    netlist is the full distribution network.  :meth:`attach_sensors`
    then grafts the monitoring plane on top.
    """

    def __init__(
        self,
        tree: ClockTree,
        process: Optional[ProcessParams] = None,
        model: Optional[WireModel] = None,
        segments_per_wire: int = 3,
        source_resistance: float = 100.0,
    ) -> None:
        super().__init__(
            tree, sorted(s.name for s in tree.sinks()),
            process=process, model=model,
            segments_per_wire=segments_per_wire,
            source_resistance=source_resistance,
        )
        self.placements: List[SensorPlacement] = []
        self.initial_guess: Dict[str, float] = {}

    def attach_sensors(
        self,
        pairs: Sequence[CriticalPair],
        sensor: Optional[SkewSensor] = None,
    ) -> List[SensorPlacement]:
        """Graft one sensing circuit per critical pair (post-:meth:`build`)."""
        specs = [
            (p.sink_a, self.sink_nodes[p.sink_a],
             p.sink_b, self.sink_nodes[p.sink_b])
            for p in pairs
        ]
        placements, initial = attach_sensors(
            self.netlist, specs, process=self.process, sensor=sensor,
        )
        self.placements.extend(placements)
        self.initial_guess.update(initial)
        return placements


class GridNetlistBuilder:
    """TRIX-style redundant clock grid, lowered to RC mesh + drivers.

    A ``rows x cols`` mesh of wire segments covers the die; the clock is
    injected through buffered drivers at several symmetric points
    (default: the four corners), so every grid node is reached over
    multiple paths.  Unlike a tree, a single dead driver or resistive
    segment does not disconnect anything - it *shifts skews*, which is
    exactly the failure mode the sensing circuits are placed to catch.

    Grid nodes are named ``g<row>_<col>`` in :attr:`sink_nodes`; mirrored
    pairs across the vertical axis have zero nominal skew by symmetry
    (the grid analogue of the H-tree's balanced paths).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        chip_size: float = 10e-3,
        process: Optional[ProcessParams] = None,
        model: Optional[WireModel] = None,
        sink_capacitance: float = 50e-15,
        buffer: Optional[Buffer] = None,
        source_resistance: float = 100.0,
        injections: Sequence[Tuple[int, int]] = (),
    ) -> None:
        if rows < 2 or cols < 2:
            raise ValueError("grid needs at least 2 x 2 nodes")
        self.rows = rows
        self.cols = cols
        self.chip_size = chip_size
        self.process = process or nominal_process()
        self.model = model or WireModel()
        self.sink_capacitance = sink_capacitance
        self.buffer = buffer or Buffer()
        self.source_resistance = source_resistance
        self.injections: List[Tuple[int, int]] = list(injections) or [
            (0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1),
        ]
        self.netlist = Netlist(name=f"clock-grid-{rows}x{cols}")
        self.sink_nodes: Dict[str, str] = {}
        #: Per-injection-point transistor names (fault hooks: marking
        #: them ``stuck_open`` kills that driver, leaving the mesh to
        #: the surviving ones - the TRIX redundancy experiment).
        self.driver_devices: Dict[Tuple[int, int], List[str]] = {}
        self._counter = 0

    def _name(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def node_name(self, row: int, col: int) -> str:
        """Canonical mesh-node name."""
        return f"g{row}_{col}"

    def build(
        self,
        clock: ClockSource,
        dead_injections: Sequence[Tuple[int, int]] = (),
    ) -> Netlist:
        """Assemble the mesh, the injection drivers and the supplies.

        ``dead_injections`` names injection points whose driver
        transistors are compiled as ``stuck_open`` (a completely failed
        driver); the mesh stays connected through the others.
        """
        net = self.netlist
        net.drive_dc("vdd", self.process.vdd)
        net.drive("clkgen", clock)
        root = "n_root"
        net.add_resistor(self._name("r"), "clkgen", root,
                         self.source_resistance)

        pitch_x = self.chip_size / (self.cols - 1)
        pitch_y = self.chip_size / (self.rows - 1)
        r_per = self.model.resistance_per_length
        c_per = self.model.capacitance_per_length

        for row in range(self.rows):
            for col in range(self.cols):
                node = self.node_name(row, col)
                self.sink_nodes[node] = node
                net.add_capacitor(self._name("c"), node, "0",
                                  self.sink_capacitance)

        def mesh_edge(a: str, b: str, length: float) -> None:
            net.add_resistor(self._name("r"), a, b,
                             max(r_per * length, 1e-3))
            half = c_per * length / 2.0
            net.add_capacitor(self._name("c"), a, "0", half)
            net.add_capacitor(self._name("c"), b, "0", half)

        for row in range(self.rows):
            for col in range(self.cols):
                here = self.node_name(row, col)
                if col + 1 < self.cols:
                    mesh_edge(here, self.node_name(row, col + 1), pitch_x)
                if row + 1 < self.rows:
                    mesh_edge(here, self.node_name(row + 1, col), pitch_y)

        dead = {tuple(p) for p in dead_injections}
        sizing = buffer_inverter_sizing(self.buffer, self.process)
        for point in self.injections:
            row, col = point
            out = self.node_name(row, col)
            mid = self._name("drvmid")
            devices: List[str] = []
            for stage_in, stage_out in (("n_root", mid), (mid, out)):
                mp = self._name("mp")
                mn = self._name("mn")
                net.add_mosfet(mp, stage_out, stage_in, "vdd",
                               MosfetType.PMOS, sizing.w_p, sizing.length,
                               self.process.pmos)
                net.add_mosfet(mn, stage_out, stage_in, "0",
                               MosfetType.NMOS, sizing.w_n, sizing.length,
                               self.process.nmos)
                devices.extend((mp, mn))
            self.driver_devices[point] = devices
            if tuple(point) in dead:
                for name in devices:
                    net.find_mosfet(name).stuck_open = True
        return net

    def mirrored_pairs(
        self, n_sensors: int
    ) -> List[Tuple[str, str, str, str]]:
        """``n_sensors`` sensor specs on column-mirrored grid nodes.

        Rows are spread evenly over the grid; each pair couples column 0
        with column ``cols - 1`` of its row - maximal unshared path,
        zero nominal skew when the injection points are symmetric.
        """
        if n_sensors < 1 or n_sensors > self.rows:
            raise ValueError(
                f"grid of {self.rows} rows supports 1..{self.rows} sensors"
            )
        picks = np.linspace(0, self.rows - 1, n_sensors)
        pairs: List[Tuple[str, str, str, str]] = []
        for row in sorted({int(round(r)) for r in picks}):
            a = self.node_name(row, 0)
            b = self.node_name(row, self.cols - 1)
            pairs.append((a, a, b, b))
        return pairs


@dataclass
class WholeTreeRun:
    """One end-to-end whole-chip simulation and its readouts.

    ``skews`` maps each placement label (``"a|b"``) to the electrically
    measured skew ``t(b) - t(a)`` in seconds (``inf`` when a monitored
    sink never crosses vdd/2 inside the window); ``codes`` to the sensor's
    threshold-interpreted ``(y1, y2)`` pair (``(0, 0)`` healthy,
    anything else an error indication); ``arrivals`` holds the absolute
    arrival per monitored sink.  ``n_nodes`` is the MNA system size -
    the scaling observable of the sparse path.
    """

    result: TransientResult
    placements: List[SensorPlacement]
    skews: Dict[str, float] = field(default_factory=dict)
    codes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    arrivals: Dict[str, float] = field(default_factory=dict)
    n_nodes: int = 0
    #: Time the sensor outputs were threshold-sampled at (mid high phase).
    t_sample: float = 0.0

    @property
    def worst_skew(self) -> float:
        """Largest absolute monitored skew, seconds."""
        return max((abs(s) for s in self.skews.values()), default=0.0)

    @property
    def flagged(self) -> bool:
        """True when any sensor raised an error indication."""
        return any(code != (0, 0) for code in self.codes.values())


def simulate_whole_tree(
    levels: int = 2,
    topology: str = "htree",
    n_sensors: int = 2,
    tree: Optional[ClockTree] = None,
    fault: Optional[TreeFault] = None,
    variation: float = 0.0,
    seed: int = 0,
    grid_shape: Tuple[int, int] = (6, 6),
    dead_injections: Sequence[Tuple[int, int]] = (),
    period: float = ns(20.0),
    slew: float = ns(0.2),
    settle: float = ns(2.0),
    segments_per_wire: int = 3,
    process: Optional[ProcessParams] = None,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
) -> WholeTreeRun:
    """Build, integrate and read out one whole-chip clock network.

    ``topology="htree"`` lowers a fully buffered H-tree of ``levels``
    (``4**levels`` sinks; pass ``tree`` to supply any other
    :class:`~repro.clocktree.tree.ClockTree`), applies process
    ``variation`` (:func:`~repro.clocktree.faults.perturb_tree` with
    ``seed``) and an optional tree ``fault``, and attaches ``n_sensors``
    sensing circuits on the most critical disjoint pairs.
    ``topology="grid"`` builds the TRIX-style mesh of ``grid_shape``
    with column-mirrored sensor pairs; ``dead_injections`` kills
    drivers.  The default engine options select the Jacobian policy by
    node count (``"auto"``), so whole-chip instances run sparse.

    The run simulates one settle interval plus one full clock period and
    samples each sensor mid-high-phase, exactly like the per-pair
    co-simulation it supersedes.
    """
    process = process or nominal_process()
    clock = ClockSource(period=period, slew=slew, delay=settle,
                        vdd=process.vdd)
    if options is None:
        options = TransientOptions(
            dt_max=200e-12, reltol=5e-3, jacobian_policy="auto"
        )

    if topology == "htree":
        tree = tree or build_h_tree(levels, buffer=Buffer())
        if variation:
            tree = perturb_tree(
                tree, np.random.default_rng(seed),
                relative_variation=variation,
            )
        if fault is not None:
            tree = fault.apply(tree)
        builder = WholeTreeNetlistBuilder(
            tree, process=process, model=model,
            segments_per_wire=segments_per_wire,
            source_resistance=source_resistance,
        )
        netlist = builder.build(clock)
        pairs = select_sensor_pairs(tree, n_sensors, model=model,
                                    source_resistance=source_resistance)
        placements = builder.attach_sensors(pairs)
        initial = builder.initial_guess
    elif topology == "grid":
        rows, cols = grid_shape
        grid = GridNetlistBuilder(
            rows, cols, process=process, model=model,
            source_resistance=source_resistance,
        )
        netlist = grid.build(clock, dead_injections=dead_injections)
        placements, initial = attach_sensors(
            netlist, grid.mirrored_pairs(n_sensors), process=process,
        )
    else:
        raise ValueError(f"unknown topology {topology!r} (htree/grid)")

    record: List[str] = []
    for placement in placements:
        record.extend((placement.node_a, placement.node_b,
                       placement.y1, placement.y2))
    result = transient(
        netlist,
        t_stop=settle + period,
        record=sorted(set(record)),
        initial=initial,
        options=options,
    )

    level = process.vdd / 2.0
    run = WholeTreeRun(
        result=result, placements=placements,
        n_nodes=len(netlist.nodes()),
    )
    t_sample = settle + 0.4 * period
    run.t_sample = t_sample
    for placement in placements:
        label = placement.label
        arrivals: Dict[str, float] = {}
        for sink, node in ((placement.sink_a, placement.node_a),
                           (placement.sink_b, placement.node_b)):
            crossing = result.wave(node).first_crossing(level, rising=True)
            # A sink that never reaches vdd/2 (e.g. behind a severe
            # resistive open) has effectively infinite arrival - report
            # it rather than fail, so fault campaigns stay total.
            arrivals[sink] = (
                np.inf if crossing is None else crossing - settle
            )
            run.arrivals[sink] = arrivals[sink]
        skew = arrivals[placement.sink_b] - arrivals[placement.sink_a]
        run.skews[label] = skew if np.isfinite(skew) else np.inf
        run.codes[label] = (
            1 if result.wave(placement.y1).at(t_sample) > threshold else 0,
            1 if result.wave(placement.y2).at(t_sample) > threshold else 0,
        )
    return run


# --------------------------------------------------------------------- #
# Campaign job layer (the ``whole_tree`` service kind).
# --------------------------------------------------------------------- #

#: Cache/checkpoint namespace of whole-tree jobs (never collides with the
#: per-sensor ``sensor-response`` family).
WHOLE_TREE_NAMESPACE = "whole-tree"


@dataclass(frozen=True)
class WholeTreeJob:
    """One whole-chip simulation, fully specified and hashable.

    The campaign unit of the ``whole_tree`` service kind: one seed of a
    variation population (or one fault scenario) per job, so a campaign
    sweeps a seed list exactly like the Monte-Carlo kind sweeps samples.
    ``fault`` is a hashable ``("resistive_open", node, extra_ohms)``
    description rather than a fault object so the job survives
    :func:`~repro.runtime.cache.stable_key` and checkpoint journals.
    """

    topology: str = "htree"
    levels: int = 2
    rows: int = 6
    cols: int = 6
    n_sensors: int = 2
    variation: float = 0.0
    seed: int = 0
    fault: Optional[Tuple[str, str, float]] = None
    dead_injections: Tuple[Tuple[int, int], ...] = ()
    segments_per_wire: int = 3
    period: float = ns(20.0)
    slew: float = ns(0.2)
    settle: float = ns(2.0)
    options: Optional[TransientOptions] = None

    def key(self) -> str:
        """Content-address of this job (checkpoint/journal identity)."""
        from repro.runtime.cache import stable_key

        return stable_key(self, namespace=WHOLE_TREE_NAMESPACE)


def evaluate_whole_tree_job(job: WholeTreeJob) -> "JobResult":  # noqa: F821
    """Run one :class:`WholeTreeJob` and fold it into a ``JobResult``.

    The compact result reuses the campaign record shape of the per-sensor
    jobs so the scheduler, checkpoint journal and telemetry need no new
    cases: ``skew`` is the monitored skew of largest magnitude (sign
    kept, magnitude clamped to one period so a never-arriving sink stays
    JSON-finite), ``vmin_y1``/``vmin_y2`` the strongest sensor-output
    indication at the sample instant, and ``code`` the OR over all
    sensing circuits - ``(0, 0)`` means the whole monitoring plane stayed
    quiet.
    """
    from repro.runtime.jobs import JobResult

    fault: Optional[TreeFault] = None
    if job.fault is not None:
        kind, node, value = job.fault
        if kind != "resistive_open":
            raise ValueError(f"unknown whole-tree fault kind {kind!r}")
        from repro.clocktree.faults import ResistiveOpen

        fault = ResistiveOpen(node=node, extra_resistance=float(value))

    run = simulate_whole_tree(
        levels=job.levels,
        topology=job.topology,
        n_sensors=job.n_sensors,
        fault=fault,
        variation=job.variation,
        seed=job.seed,
        grid_shape=(job.rows, job.cols),
        dead_injections=job.dead_injections,
        period=job.period,
        slew=job.slew,
        settle=job.settle,
        segments_per_wire=job.segments_per_wire,
        options=job.options,
    )

    worst_label = max(run.skews, key=lambda k: abs(run.skews[k]))
    worst = run.skews[worst_label]
    if not np.isfinite(worst):
        worst = job.period
    elif abs(worst) > job.period:
        worst = np.sign(worst) * job.period
    y1 = max(
        run.result.wave(p.y1).at(run.t_sample) for p in run.placements
    )
    y2 = max(
        run.result.wave(p.y2).at(run.t_sample) for p in run.placements
    )
    code = (
        max(c[0] for c in run.codes.values()),
        max(c[1] for c in run.codes.values()),
    )
    return JobResult(
        skew=float(worst),
        vmin_y1=float(y1),
        vmin_y2=float(y2),
        code=code,
        steps=len(run.result),
        escalations=tuple(sorted(run.result.escalations.items())),
        kernel=tuple(sorted((run.result.kernel_stats or {}).items())),
    )
