"""The paper's primary contribution: the clock-skew sensing circuit.

``repro.core`` builds the 10-transistor sensor of Fig. 1, evaluates its
response to a pair of (possibly skewed) clocks, and runs the sensitivity
analysis of Fig. 4 (``Vmin`` vs skew, ``tau_min`` extraction).
"""

from repro.core.sensing import SensorSizing, SkewSensor
from repro.core.response import (
    ERROR_NONE,
    ERROR_PHI1_LATE,
    ERROR_PHI2_LATE,
    SensorResponse,
    evaluate_response,
    simulate_sensor,
)
from repro.core.sensitivity import (
    SensitivityCurve,
    extract_tau_min,
    sensitivity_family,
    sweep_skew,
    vmin_for_skew,
)
from repro.core.dual import DualSkewSensor, simulate_dual_sensor
from repro.core.model import (
    effective_output_capacitance,
    estimate_fall_current,
    estimate_tau_min,
)
from repro.core.overhead import (
    SchemeOverhead,
    SensorOverhead,
    scheme_overhead,
    sensor_overhead,
)

__all__ = [
    "SkewSensor",
    "SensorSizing",
    "SensorResponse",
    "simulate_sensor",
    "evaluate_response",
    "ERROR_NONE",
    "ERROR_PHI1_LATE",
    "ERROR_PHI2_LATE",
    "SensitivityCurve",
    "sweep_skew",
    "vmin_for_skew",
    "extract_tau_min",
    "sensitivity_family",
    "DualSkewSensor",
    "simulate_dual_sensor",
    "SensorOverhead",
    "SchemeOverhead",
    "sensor_overhead",
    "scheme_overhead",
    "estimate_tau_min",
    "estimate_fall_current",
    "effective_output_capacitance",
]
