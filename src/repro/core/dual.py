"""The dual (falling-edge) sensing circuit.

Footnote 1 of the paper: "This circuit can be used if flip-flops sample on
the rising edge, otherwise a dual circuit should be used."  The dual is
the exact complement of Fig. 1: every PMOS becomes NMOS and vice versa,
VDD and ground swap, and the circuit monitors the *falling* edges - the
outputs idle low, rise together to a clamp near ``VDD - |VTp|`` on
simultaneous falling edges, and a late clock leaves its block's output low
(error codes ``01``/``10`` with inverted polarity: a *low* output among a
high pair flags the late clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analog.engine import TransientOptions, transient
from repro.circuit.netlist import Netlist
from repro.core.response import SensorResponse
from repro.core.sensing import SensorSizing, SkewSensor
from repro.devices.mosfet import MosfetType
from repro.devices.sources import clock_pair
from repro.units import VTH_INTERPRET, ns


@dataclass
class DualSkewSensor(SkewSensor):
    """Complementary sensor monitoring falling clock edges.

    Shares all parameters with :class:`SkewSensor`; only the transistor
    polarities, rails and idle state differ.
    """

    def transistor_specs(self) -> List[Tuple[str, str, str, str, MosfetType]]:
        """The ten devices of the complementary circuit."""
        p, n = MosfetType.PMOS, MosfetType.NMOS
        return [
            # Block A (output y1): pull-DOWN network is the gated one.
            ("a", "nA", "phi2", "0", n),
            ("b", "y1", "phi1", "nA", n),
            ("c", "y1", "y2", "nA", n),
            ("d", "y1", "phi1", "pA", p),
            ("e", "pA", "y2", "vdd", p),
            # Block B (output y2).
            ("f", "nB", "phi1", "0", n),
            ("g", "y2", "phi2", "nB", n),
            ("h", "y2", "y1", "nB", n),
            ("i", "y2", "phi2", "pB", p),
            ("l", "pB", "y1", "vdd", p),
        ]

    def build(self, phi1: object = None, phi2: object = None) -> Netlist:
        """Build the dual netlist (widths swap polarity roles too)."""
        netlist = Netlist(name="dual-skew-sensor")
        netlist.drive_dc("vdd", self.vdd)
        if phi1 is not None:
            netlist.drive("phi1", phi1)
        if phi2 is not None:
            netlist.drive("phi2", phi2)

        for name, drain, gate, source, mtype in self.transistor_specs():
            card = self.process.polarity(mtype is MosfetType.PMOS)
            width = self.sizing.w_p if mtype is MosfetType.PMOS else self.sizing.w_n
            netlist.add_mosfet(
                name, drain, gate, source, mtype, width, self.sizing.length, card
            )

        if self.load1 > 0:
            netlist.add_capacitor("cload1", "y1", "0", self.load1)
        if self.load2 > 0:
            netlist.add_capacitor("cload2", "y2", "0", self.load2)
        if self.full_swing:
            raise NotImplementedError(
                "the dual keeper (weak pull-UP) is not implemented"
            )
        if self.parasitics:
            self._add_parasitics(netlist)
        return netlist

    def dc_guess(self) -> Dict[str, float]:
        """Idle state with both clocks *high*: pull-downs on, outputs low."""
        return {
            "y1": 0.0, "y2": 0.0,
            "nA": 0.0, "nB": 0.0,
            "pA": self.vdd, "pB": self.vdd,
        }


def simulate_dual_sensor(
    sensor: DualSkewSensor,
    skew: float,
    slew1: float = ns(0.2),
    slew2: float = ns(0.2),
    period: float = ns(20.0),
    settle: float = ns(2.0),
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
) -> SensorResponse:
    """Drive the dual sensor across a *falling* edge pair.

    The clocks start high (the dual idles with clocks high) by beginning
    the stimulus half a period early, so the first monitored event is the
    falling edge at ``settle + period/2``.  ``skew > 0`` delays ``phi2``'s
    falling edge; the error indication is then ``(y1, y2)`` with ``y2``
    stuck *low* while ``y1`` completed its rise - reported through the
    same :class:`SensorResponse` with ``vmax`` semantics mapped onto the
    ``vmin`` fields as ``vdd - v`` so downstream tooling (threshold logic,
    indicators) is reused unchanged.
    """
    # Start the clocks half a period early so they are HIGH at t = 0 (the
    # dual's idle state) and the first monitored *falling* edge begins at
    # ``settle``.
    phi1, phi2 = clock_pair(
        period=period, slew1=slew1, slew2=slew2, skew=skew,
        delay=settle - period / 2.0, vdd=sensor.vdd,
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)

    edge_start = settle + min(0.0, skew)
    late_edge_end = settle + max(0.0, skew) + max(slew1, slew2)
    rise_start = settle + period / 2.0 + min(0.0, skew)
    t_stop = settle + period

    result = transient(
        netlist,
        t_stop=t_stop,
        record=["phi1", "phi2", "y1", "y2"],
        initial=sensor.dc_guess(),
        options=options,
    )
    y1 = result.wave("y1")
    y2 = result.wave("y2")
    # Dual semantics: the outputs RISE; the late one fails to rise.  Map
    # onto the rising-edge response by complementing against VDD.
    vmax_y1 = y1.window_max(edge_start, rise_start)
    vmax_y2 = y2.window_max(edge_start, rise_start)

    t_sample = min(late_edge_end + (rise_start - late_edge_end) * 0.75, rise_start)
    code = (
        1 if (sensor.vdd - y1.at(t_sample)) > threshold else 0,
        1 if (sensor.vdd - y2.at(t_sample)) > threshold else 0,
    )
    return SensorResponse(
        vmin_y1=sensor.vdd - vmax_y1,
        vmin_y2=sensor.vdd - vmax_y2,
        code=code,
        skew=skew,
        result=result,
    )
