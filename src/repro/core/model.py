"""First-order analytic model of the sensor's sensitivity.

Sec. 2 defines the mechanism: the skew is detected when it exceeds "the
delay (d) required by the output signal y1 to reach a low value" - low
enough that the feedback transistor ``l`` stops block B's discharge before
``y2`` falls through the interpretation threshold.

A hand calculation of that delay:

* while ``phi1`` is high and ``phi2`` still low, ``y1`` discharges through
  the series stack ``d``/``e``.  Both are initially in saturation with
  full overdrive ``Vov = VDD - VTn``; a two-transistor series stack
  conducts roughly half a single device's saturation current, so

  ``I_fall ~= 0.25 * beta_n * (VDD - VTn)^2``

  (``0.25 = 0.5`` from the square-law times ``0.5`` for the stack);

* while ``y1`` is still above ``VTn`` the feedback transistor ``l``
  conducts and ``y2`` keeps dipping even after the overlap ends; the
  dip is cut short once ``y1`` crosses ``l``'s cutoff.  Setting the
  allowed dip (``VDD - Vth``) against ``y1``'s total excursion
  (``VDD - VTn``) leaves the *effective* race swing

  ``Delta V ~= Vth - VTn``

  - larger skews eat into it linearly, which also gives the correct
  direction for the paper's Vth knob (lower threshold, finer
  sensitivity);

* the capacitance being discharged is the external load plus the lumped
  junction/gate parasitics on ``y1``.

Hence ``tau_min ~= C_total * (VDD - Vth) / I_fall``.  The model is
validated against the transistor-level simulator across loads and sizings
(see ``tests/test_analytic_model.py``); it is the designer's back-of-the-
envelope for picking W and Vth before running any simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.sensing import SensorSizing, SkewSensor
from repro.devices.process import ProcessParams, nominal_process
from repro.units import VTH_INTERPRET

#: Series-stack current derating: two stacked devices carry about half a
#: single device's saturation current during the fall.
STACK_FACTOR = 0.5

#: Post-overlap conduction correction.  The single-interval picture above
#: pretends y2 stops discharging the instant phi2's edge ends the overlap;
#: in reality ``l`` keeps conducting (weakening) until ``y1`` is well
#: below VTn, so a much smaller skew already produces the threshold-deep
#: dip in ``y2``.  Calibrated once against the transistor-level simulator;
#: remarkably constant (within 4 %) across the paper's full load and
#: sizing sweep because it multiplies the same RC/I expression.
RACE_FACTOR = 1.0 / 5.24


def effective_output_capacitance(
    load: float,
    sizing: Optional[SensorSizing] = None,
    process: Optional[ProcessParams] = None,
) -> float:
    """Total capacitance discharged at an output node.

    External load plus the junction/gate parasitics the sensor itself
    hangs on ``y1``: drains of ``b``, ``c``, ``d`` and the gates of ``h``
    and ``l`` (the cross-coupled inputs of the other block).
    """
    sensor = SkewSensor(
        process=process, sizing=sizing or SensorSizing(),
        load1=load, load2=load,
    )
    netlist = sensor.build()
    total = load
    for m in netlist.mosfets:
        if m.drain == "y1" or m.source == "y1":
            total += m.junction_capacitance
        if m.gate == "y1":
            total += m.gate_capacitance
    return total


def estimate_fall_current(
    sizing: Optional[SensorSizing] = None,
    process: Optional[ProcessParams] = None,
) -> float:
    """First-order discharge current of the series NMOS stack, amperes."""
    sizing = sizing or SensorSizing()
    process = process or nominal_process()
    beta = process.nmos.kp * sizing.w_n / sizing.length
    overdrive = process.vdd - process.nmos.vt0
    return STACK_FACTOR * 0.5 * beta * overdrive**2


def estimate_tau_min(
    load: float,
    sizing: Optional[SensorSizing] = None,
    process: Optional[ProcessParams] = None,
    threshold: float = VTH_INTERPRET,
) -> float:
    """Closed-form sensitivity estimate, seconds.

    ``tau_min ~= RACE_FACTOR * C_total * (Vth - VTn) / I_fall`` - compare
    against :func:`repro.core.sensitivity.extract_tau_min` for the
    measured value.  Validity: within ~10 % across the paper's load
    (80-240 fF) and sizing (1.2-8 um) sweeps at the nominal threshold;
    the Vth *direction* is correct but its slope is underpredicted (the
    effective stack current varies along the dip), so use the threshold
    ablation bench for quantitative Vth tuning.
    """
    process = process or nominal_process()
    c_total = effective_output_capacitance(load, sizing, process)
    current = estimate_fall_current(sizing, process)
    swing = threshold - process.nmos.vt0
    if swing <= 0:
        raise ValueError("threshold at or below VTn leaves no race swing")
    return RACE_FACTOR * c_total * swing / current
