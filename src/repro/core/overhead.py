"""Cost model of the testing scheme: area, clock loading, induced skew.

A DFT scheme is only adoptable if its own overhead is accounted for.  The
sensor loads each monitored clock wire with three transistor gates (phi1
drives ``b``, ``d``, ``f``; phi2 drives ``a``, ``g``, ``i``), and a
placement that monitors some sinks but not others *unbalances* the very
tree it guards.  This module quantifies:

* per-sensor transistor count, active-area estimate, and input
  capacitance per clock pin;
* per-scheme totals, the added load per monitored sink, and the skew the
  instrumented tree acquires relative to the pristine design (to be
  compared against the sensor's own ``tau_min`` - the instrumentation
  must not trigger itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.clocktree.faults import _copy_tree
from repro.clocktree.rc import WireModel, elmore_delays
from repro.core.sensing import SkewSensor

#: Layout factor: drawn-gate area to full active area (diffusion,
#: contacts, spacing) for a compact 1.2 um standard-cell style layout.
AREA_FACTOR = 12.0


@dataclass(frozen=True)
class SensorOverhead:
    """Cost of one sensing circuit."""

    transistor_count: int
    gate_area: float            # m^2, sum of W*L
    active_area: float          # m^2, layout estimate
    input_capacitance_phi1: float
    input_capacitance_phi2: float


def sensor_overhead(sensor: Optional[SkewSensor] = None) -> SensorOverhead:
    """Compute the per-sensor costs from the actual netlist."""
    sensor = sensor or SkewSensor()
    netlist = sensor.build()
    gate_area = sum(m.w * m.l for m in netlist.mosfets)
    cap1 = sum(
        m.gate_capacitance for m in netlist.mosfets if m.gate == "phi1"
    )
    cap2 = sum(
        m.gate_capacitance for m in netlist.mosfets if m.gate == "phi2"
    )
    return SensorOverhead(
        transistor_count=len(netlist.mosfets),
        gate_area=gate_area,
        active_area=gate_area * AREA_FACTOR,
        input_capacitance_phi1=cap1,
        input_capacitance_phi2=cap2,
    )


@dataclass(frozen=True)
class SchemeOverhead:
    """Cost of a full placement over a clock tree."""

    n_sensors: int
    total_transistors: int
    total_active_area: float
    added_load_per_sink: Dict[str, float]
    pristine_delays: Dict[str, float]
    instrumented_delays: Dict[str, float]
    induced_skew: float

    @property
    def worst_added_load(self) -> float:
        """Largest capacitance added to any single sink, farads."""
        if not self.added_load_per_sink:
            return 0.0
        return max(self.added_load_per_sink.values())


def scheme_overhead(
    scheme,
    model: Optional[WireModel] = None,
    source_resistance: float = 100.0,
) -> SchemeOverhead:
    """Quantify the cost of a :class:`~repro.testing.scheme
    .ClockTestingScheme` placement.

    The instrumented tree is the design tree with each monitored sink's
    load increased by the sensor input capacitance (one clock pin per
    attachment); ``induced_skew`` is the spread the instrumentation alone
    creates across all sinks - compare it against ``tau_min``.
    """
    model = model or WireModel()
    added: Dict[str, float] = {}
    transistors = 0
    area = 0.0
    for placement in scheme.placements:
        cost = sensor_overhead(placement.sensor)
        transistors += cost.transistor_count
        area += cost.active_area
        added[placement.pair.sink_a] = (
            added.get(placement.pair.sink_a, 0.0) + cost.input_capacitance_phi1
        )
        added[placement.pair.sink_b] = (
            added.get(placement.pair.sink_b, 0.0) + cost.input_capacitance_phi2
        )

    pristine = elmore_delays(scheme.tree, model, source_resistance)
    instrumented_tree = _copy_tree(scheme.tree)
    for node in instrumented_tree.walk():
        if node.name in added:
            node.sink_capacitance += added[node.name]
    instrumented = elmore_delays(instrumented_tree, model, source_resistance)

    sinks = [s.name for s in scheme.tree.sinks()]
    shifts = [instrumented[s] - pristine[s] for s in sinks]
    induced = max(shifts) - min(shifts) if shifts else 0.0
    return SchemeOverhead(
        n_sensors=len(scheme.placements),
        total_transistors=transistors,
        total_active_area=area,
        added_load_per_sink=added,
        pristine_delays={s: pristine[s] for s in sinks},
        instrumented_delays={s: instrumented[s] for s in sinks},
        induced_skew=induced,
    )
