"""Simulation and logic interpretation of the sensor response.

The paper interprets the sensor outputs through a gate with logic threshold
``VDD/2`` derated 10 % for parameter variation (2.75 V at 5 V supply):
after the monitored rising edges, ``(y1, y2)`` equal to ``11`` (both held
high by an undischarged block) never occurs in fault-free operation, ``00``
(well, the sub-threshold clamp) is the no-error response, and ``01`` / ``10``
flag a late ``phi2`` / late ``phi1`` respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analog.engine import TransientOptions, TransientResult, transient
from repro.analog.waveform import Waveform
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.units import VTH_INTERPRET, ns

#: Error codes as (y1, y2) logic pairs.
ERROR_NONE = (0, 0)
ERROR_PHI2_LATE = (0, 1)
ERROR_PHI1_LATE = (1, 0)


def measurement_windows(
    skew: float, slew1: float, slew2: float, period: float, settle: float
) -> Tuple[float, float, float, float]:
    """The evaluation-window times of one sensor cycle.

    Returns ``(edge_start, late_edge_end, fall_start, t_sample)``:
    ``Vmin`` is taken over ``[edge_start, fall_start]`` (first rising
    edge to the start of the falling edge - the half period during which
    the paper says the error indication holds) and the logic code is
    sampled at ``t_sample``.  Single source of truth for the scalar,
    batch and prefix warm-start measurement paths - the expressions must
    stay bit-identical across them.
    """
    edge_start = settle + min(0.0, skew)
    late_edge_end = settle + max(0.0, skew) + max(slew1, slew2)
    fall_start = settle + period / 2.0 - max(slew1, slew2) + min(0.0, skew)
    t_sample = min(late_edge_end + (fall_start - late_edge_end) * 0.75, fall_start)
    return edge_start, late_edge_end, fall_start, t_sample


@dataclass(frozen=True)
class SensorResponse:
    """Measured response of one sensor simulation.

    Attributes
    ----------
    vmin_y1, vmin_y2:
        Minimum output voltages over the evaluation window following the
        monitored rising edges (the paper's ``Vmin`` is the one on the
        *late* output).
    code:
        ``(y1, y2)`` logic pair sampled at threshold mid-way through the
        high phase of the clocks.
    skew:
        The applied skew ``tau`` (positive = ``phi2`` late).
    result:
        The raw transient result, for waveform inspection.
    """

    vmin_y1: float
    vmin_y2: float
    code: Tuple[int, int]
    skew: float
    result: TransientResult

    @property
    def error_detected(self) -> bool:
        """True when the sensor flags an abnormal skew."""
        return self.code != ERROR_NONE

    @property
    def vmin_late(self) -> float:
        """``Vmin`` of the output associated with the later clock edge.

        For ``tau >= 0`` (``phi2`` late) that is ``y2``; the paper's Fig. 4
        and Fig. 5 plot this quantity.
        """
        return self.vmin_y2 if self.skew >= 0 else self.vmin_y1

    def wave(self, node: str) -> Waveform:
        """Waveform of a recorded node."""
        return self.result.wave(node)


def simulate_sensor(
    sensor: SkewSensor,
    skew: float,
    slew1: float = ns(0.2),
    slew2: float = ns(0.2),
    period: float = ns(20.0),
    settle: float = ns(2.0),
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
    record_currents: bool = False,
) -> SensorResponse:
    """Drive the sensor with one clock cycle carrying skew ``tau``.

    The clocks rise at ``settle`` (plus ``skew`` for ``phi2``); the run
    covers one full period so the evaluation window (rising edge to the
    start of the falling edge - the half period during which the paper says
    the error indication holds) is fully observed.

    Parameters
    ----------
    sensor:
        Circuit builder (carries process, sizing, loads).
    skew:
        ``tau`` in seconds; positive delays ``phi2``.
    slew1, slew2:
        Clock edge durations (the paper sweeps 0.1-0.4 ns, independently
        per input in the Monte Carlo analysis).
    period:
        Clock period.
    settle:
        Quiet time before the first rising edge, letting the operating
        point hold visibly.
    threshold:
        Logic interpretation threshold for the error code.
    """
    phi1, phi2 = clock_pair(
        period=period, slew1=slew1, slew2=slew2, skew=skew,
        delay=settle, vdd=sensor.vdd,
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)

    edge_start, late_edge_end, fall_start, t_sample = measurement_windows(
        skew, slew1, slew2, period, settle
    )
    t_stop = settle + period

    # Idle state with both clocks low: the guess steers the operating
    # point away from the metastable mid-rail equilibrium of the
    # output/keeper feedback loops.
    idle = sensor.dc_guess()
    result = transient(
        netlist,
        t_stop=t_stop,
        record=["phi1", "phi2", "y1", "y2"],
        record_currents=["vdd"] if record_currents else None,
        initial=idle,
        options=options,
    )

    y1 = result.wave("y1")
    y2 = result.wave("y2")
    vmin_y1 = y1.window_min(edge_start, fall_start)
    vmin_y2 = y2.window_min(edge_start, fall_start)

    # Sample the persistent indication after the late edge has fully
    # propagated, comfortably inside the high phase.
    code = (
        1 if y1.at(t_sample) > threshold else 0,
        1 if y2.at(t_sample) > threshold else 0,
    )
    return SensorResponse(
        vmin_y1=vmin_y1, vmin_y2=vmin_y2, code=code, skew=skew, result=result
    )


def evaluate_response(
    vmin_late: float, threshold: float = VTH_INTERPRET
) -> bool:
    """The paper's detection criterion on the analog measurement.

    An abnormal skew is flagged when the late output's minimum voltage
    stays *above* the interpretation threshold (its falling transition was
    incomplete or absent).
    """
    return vmin_late > threshold
