"""The Fig.-1 skew sensing circuit.

Two symmetric CMOS blocks in a feedback loop monitor the clocks ``phi1`` and
``phi2``.  Transistor roles (reconstructed from the behavioural description
in Sec. 2; see DESIGN.md for the consistency argument):

Block A (output ``y1``)::

    vdd --[ a: PMOS, gate phi2 ]-- nA --[ b: PMOS, gate phi1 ]-- y1
                                   nA --[ c: PMOS, gate y2   ]-- y1
    y1  --[ d: NMOS, gate phi1 ]-- pA --[ e: NMOS, gate y2   ]-- gnd

Block B (output ``y2``) is the mirror image::

    vdd --[ f: PMOS, gate phi1 ]-- nB --[ g: PMOS, gate phi2 ]-- y2
                                   nB --[ h: PMOS, gate y1   ]-- y2
    y2  --[ i: NMOS, gate phi2 ]-- pB --[ l: NMOS, gate y1   ]-- gnd

Behaviour:

* both clocks low: ``a, b`` (and ``f, g``) conduct, outputs high;
* simultaneous rising edges: both pull-downs conduct, the outputs fall
  together and clamp near the NMOS threshold because each block's bottom
  pull-down transistor is gated by the other block's falling output;
* ``phi2`` late by more than the block delay: ``y1`` completes its fall
  first, turning ``l`` off, so ``y2`` cannot discharge and the pair reads
  ``(y1, y2) = (0, 1)`` - the error indication - for half a clock period;
* the optional *full-swing* variant adds, per block, a feedback inverter
  driving a weak pull-down NMOS, exactly as suggested in the paper for
  applications that cannot accept the threshold clamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Netlist
from repro.devices.mosfet import MosfetType
from repro.devices.process import ProcessParams, nominal_process
from repro.units import fF, um

#: Instance names of the ten sensor transistors, in paper order.
SENSOR_TRANSISTORS = ("a", "b", "c", "d", "e", "f", "g", "h", "i", "l")

#: The four parallel pull-up transistors called out in Sec. 3 as the
#: stuck-on escapes.
PARALLEL_PULLUPS = ("b", "c", "g", "h")


@dataclass(frozen=True)
class SensorSizing:
    """Transistor sizing of the sensor.

    The defaults give a 1.2 um implementation whose sensitivity lands in
    the paper's 0.1-0.2 ns band for the 80-240 fF load sweep.
    """

    w_n: float = um(1.8)
    w_p: float = um(3.6)
    length: float = um(1.2)
    #: Width of the weak full-swing keeper NMOS (used only when enabled).
    w_keeper: float = um(1.6)
    #: Sizing of the keeper's feedback inverter.
    w_inv_n: float = um(2.4)
    w_inv_p: float = um(4.8)


@dataclass
class SkewSensor:
    """Builder for the sensing-circuit netlist.

    Parameters
    ----------
    process:
        Model cards; defaults to the nominal 1.2 um corner.
    sizing:
        Transistor sizes.
    load1, load2:
        External load capacitance on ``y1`` / ``y2`` (the paper sweeps a
        common value over 80 / 160 / 240 fF).
    full_swing:
        Add the feedback-inverter + weak-pull-down keeper per block.
    parasitics:
        Lump gate-oxide and junction capacitance estimates onto the nodes
        (recommended; the paper's electrical simulations include layout
        parasitics implicitly).
    """

    process: Optional[ProcessParams] = None
    sizing: SensorSizing = SensorSizing()
    load1: float = fF(160)
    load2: float = fF(160)
    full_swing: bool = False
    parasitics: bool = True

    def __post_init__(self) -> None:
        if self.process is None:
            self.process = nominal_process()
        if self.load1 < 0 or self.load2 < 0:
            raise ValueError("load capacitances must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def vdd(self) -> float:
        """Supply voltage of the chosen process."""
        return self.process.vdd

    def transistor_specs(self) -> List[Tuple[str, str, str, str, MosfetType]]:
        """The ten (name, drain, gate, source, type) tuples of Fig. 1."""
        p, n = MosfetType.PMOS, MosfetType.NMOS
        return [
            # Block A.
            ("a", "nA", "phi2", "vdd", p),
            ("b", "y1", "phi1", "nA", p),
            ("c", "y1", "y2", "nA", p),
            ("d", "y1", "phi1", "pA", n),
            ("e", "pA", "y2", "0", n),
            # Block B.
            ("f", "nB", "phi1", "vdd", p),
            ("g", "y2", "phi2", "nB", p),
            ("h", "y2", "y1", "nB", p),
            ("i", "y2", "phi2", "pB", n),
            ("l", "pB", "y1", "0", n),
        ]

    def build(self, phi1: object = None, phi2: object = None) -> Netlist:
        """Build the sensor netlist, optionally attaching clock sources.

        When ``phi1`` / ``phi2`` are omitted the clock nodes are left as
        free inputs and must be driven before simulation.
        """
        netlist = Netlist(name="skew-sensor")
        netlist.drive_dc("vdd", self.vdd)
        if phi1 is not None:
            netlist.drive("phi1", phi1)
        if phi2 is not None:
            netlist.drive("phi2", phi2)

        for name, drain, gate, source, mtype in self.transistor_specs():
            card = self.process.polarity(mtype is MosfetType.PMOS)
            width = self.sizing.w_p if mtype is MosfetType.PMOS else self.sizing.w_n
            netlist.add_mosfet(
                name, drain, gate, source, mtype, width, self.sizing.length, card
            )

        if self.load1 > 0:
            netlist.add_capacitor("cload1", "y1", "0", self.load1)
        if self.load2 > 0:
            netlist.add_capacitor("cload2", "y2", "0", self.load2)

        if self.full_swing:
            self._add_keeper(netlist, "1", "y1")
            self._add_keeper(netlist, "2", "y2")

        if self.parasitics:
            self._add_parasitics(netlist)
        return netlist

    def dc_guess(self) -> Dict[str, float]:
        """Idle-state voltages (both clocks low) for every circuit node.

        Seeds the operating-point solve: with the clocks low the pull-ups
        conduct, so the outputs and internal pull-up nodes sit at VDD, the
        pull-down stack internals at ground, and the keeper inverters (if
        present) at their consistent values.  Without this seed, Newton
        can settle on the metastable mid-rail equilibrium of the
        output/keeper feedback loops.
        """
        guess = {
            "y1": self.vdd, "y2": self.vdd,
            "nA": self.vdd, "nB": self.vdd,
            "pA": 0.0, "pB": 0.0,
        }
        if self.full_swing:
            guess["z1"] = 0.0
            guess["z2"] = 0.0
        return guess

    # ------------------------------------------------------------------ #
    def _add_keeper(self, netlist: Netlist, suffix: str, output: str) -> None:
        """Full-swing keeper: inverter from ``output`` drives a weak NMOS
        that finishes pulling ``output`` to ground."""
        inv_out = f"z{suffix}"
        netlist.add_mosfet(
            f"kp{suffix}", inv_out, output, "vdd",
            MosfetType.PMOS, self.sizing.w_inv_p, self.sizing.length,
            self.process.pmos,
        )
        netlist.add_mosfet(
            f"kn{suffix}", inv_out, output, "0",
            MosfetType.NMOS, self.sizing.w_inv_n, self.sizing.length,
            self.process.nmos,
        )
        netlist.add_mosfet(
            f"kw{suffix}", output, inv_out, "0",
            MosfetType.NMOS, self.sizing.w_keeper, self.sizing.length,
            self.process.nmos,
        )

    def _add_parasitics(self, netlist: Netlist) -> None:
        """Lump gate and junction capacitance estimates onto circuit nodes.

        Clock input loading is deliberately *not* added to ``phi1/phi2``
        (they are driven by ideal sources), matching the paper's framing
        where the explicit load capacitor represents "different loading
        conditions" at the outputs.
        """
        accumulated: Dict[str, float] = {}

        def lump(node: str, value: float) -> None:
            if node in ("vdd", "0", "phi1", "phi2"):
                return
            accumulated[node] = accumulated.get(node, 0.0) + value

        for m in netlist.mosfets:
            lump(m.gate, m.gate_capacitance)
            lump(m.drain, m.junction_capacitance)
            lump(m.source, m.junction_capacitance)
        for node, value in sorted(accumulated.items()):
            netlist.add_capacitor(f"cpar_{node}", node, "0", value)
