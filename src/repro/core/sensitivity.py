"""Sensitivity analysis: the ``Vmin(tau)`` curves of Fig. 4.

For each load capacitance and clock slew, the skew ``tau`` is swept and the
minimum voltage reached by the late output is recorded.  The *sensitivity*
``tau_min`` is the skew at which ``Vmin`` crosses the interpretation
threshold: larger skews are flagged, smaller ones tolerated.  The paper
observes ``tau_min`` growing with load capacitance and nearly independent of
clock slew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.engine import TransientOptions
from repro.core.response import simulate_sensor
from repro.core.sensing import SensorSizing, SkewSensor
from repro.devices.process import ProcessParams
from repro.units import VTH_INTERPRET, ns


@dataclass
class SensitivityCurve:
    """One ``Vmin`` vs ``tau`` curve (fixed load and slew)."""

    load: float
    slew: float
    skews: np.ndarray
    vmins: np.ndarray
    threshold: float = VTH_INTERPRET

    @property
    def tau_min(self) -> Optional[float]:
        """Skew at which ``Vmin`` first exceeds the threshold.

        Linear interpolation between sweep points; ``None`` when the curve
        never crosses (sweep range too small).
        """
        above = self.vmins > self.threshold
        if not above.any():
            return None
        first = int(np.argmax(above))
        if first == 0:
            return float(self.skews[0])
        v0, v1 = self.vmins[first - 1], self.vmins[first]
        t0, t1 = self.skews[first - 1], self.skews[first]
        if v1 == v0:
            return float(t1)
        return float(t0 + (self.threshold - v0) * (t1 - t0) / (v1 - v0))


def vmin_for_skew(
    skew: float,
    load: float,
    slew: float,
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    slew2: Optional[float] = None,
    load2: Optional[float] = None,
) -> float:
    """``Vmin`` of the late output for a single operating point.

    ``slew2`` / ``load2`` default to the symmetric values; the Monte Carlo
    analysis passes independent ones ("both the input slews and the load
    have been considered independent, in order to account for asymmetric
    conditions").
    """
    sensor = SkewSensor(
        process=process,
        sizing=sizing or SensorSizing(),
        load1=load,
        load2=load if load2 is None else load2,
    )
    response = simulate_sensor(
        sensor,
        skew=skew,
        slew1=slew,
        slew2=slew if slew2 is None else slew2,
        options=options,
    )
    return response.vmin_late


def sweep_skew(
    load: float,
    slew: float,
    skews: Sequence[float],
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
) -> SensitivityCurve:
    """Sweep ``tau`` and collect the ``Vmin`` curve for one (load, slew)."""
    skew_array = np.asarray(list(skews), dtype=float)
    vmins = np.array(
        [
            vmin_for_skew(
                tau, load, slew, process=process, sizing=sizing, options=options
            )
            for tau in skew_array
        ]
    )
    return SensitivityCurve(
        load=load, slew=slew, skews=skew_array, vmins=vmins, threshold=threshold
    )


def extract_tau_min(
    load: float,
    slew: float = ns(0.2),
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    tau_hi: float = ns(2.0),
    tolerance: float = ns(0.002),
    options: Optional[TransientOptions] = None,
) -> float:
    """Sensitivity ``tau_min`` by bisection on the ``Vmin`` crossing.

    More precise than reading it off a coarse sweep; used wherever a single
    number per load is needed (Tab. 1 classification, ablations).
    """
    def vmin(tau: float) -> float:
        return vmin_for_skew(
            tau, load, slew, process=process, sizing=sizing, options=options
        )

    lo, hi = 0.0, tau_hi
    v_hi = vmin(hi)
    if v_hi <= threshold:
        raise ValueError(
            f"Vmin at tau = {hi:.3e} s is {v_hi:.3f} V <= threshold; "
            "increase tau_hi"
        )
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if vmin(mid) > threshold:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def sensitivity_family(
    loads: Sequence[float],
    slews: Sequence[float],
    skews: Sequence[float],
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
) -> List[SensitivityCurve]:
    """The full Fig.-4 family: one curve per (load, slew) combination."""
    curves: List[SensitivityCurve] = []
    for load in loads:
        for slew in slews:
            curves.append(
                sweep_skew(
                    load, slew, skews,
                    process=process, sizing=sizing,
                    threshold=threshold, options=options,
                )
            )
    return curves
