"""Sensitivity analysis: the ``Vmin(tau)`` curves of Fig. 4.

For each load capacitance and clock slew, the skew ``tau`` is swept and the
minimum voltage reached by the late output is recorded.  The *sensitivity*
``tau_min`` is the skew at which ``Vmin`` crosses the interpretation
threshold: larger skews are flagged, smaller ones tolerated.  The paper
observes ``tau_min`` growing with load capacitance and nearly independent of
clock slew.

All evaluations route through :mod:`repro.runtime`: every operating point
is content-addressed in the result cache (so a repeated sweep or a
bisection revisiting a point costs a lookup, not a transient), and
:func:`sweep_skew` / :func:`sensitivity_family` accept a ``backend`` to
fan the independent points out over threads or processes.  The runtime
imports happen lazily inside the functions - ``repro.runtime`` itself
imports from ``repro.core``, and the package initialisers would otherwise
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing  # noqa: F401 (re-exported legacy name)
from repro.devices.process import ProcessParams
from repro.units import VTH_INTERPRET, ns


@dataclass
class SensitivityCurve:
    """One ``Vmin`` vs ``tau`` curve (fixed load and slew)."""

    load: float
    slew: float
    skews: np.ndarray
    vmins: np.ndarray
    threshold: float = VTH_INTERPRET

    @property
    def tau_min(self) -> Optional[float]:
        """Skew at which ``Vmin`` first exceeds the threshold.

        Linear interpolation between sweep points; ``None`` when the curve
        never crosses (sweep range too small).
        """
        above = self.vmins > self.threshold
        if not above.any():
            return None
        first = int(np.argmax(above))
        if first == 0:
            return float(self.skews[0])
        v0, v1 = self.vmins[first - 1], self.vmins[first]
        t0, t1 = self.skews[first - 1], self.skews[first]
        if v1 == v0:
            return float(t1)
        return float(t0 + (self.threshold - v0) * (t1 - t0) / (v1 - v0))


def vmin_for_skew(
    skew: float,
    load: float,
    slew: float,
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    slew2: Optional[float] = None,
    load2: Optional[float] = None,
    cache: Any = "default",
    telemetry: Any = None,
    warm_start: Optional[bool] = None,
) -> float:
    """``Vmin`` of the late output for a single operating point.

    ``slew2`` / ``load2`` default to the symmetric values; the Monte Carlo
    analysis passes independent ones ("both the input slews and the load
    have been considered independent, in order to account for asymmetric
    conditions").  The point is content-addressed in the runtime cache;
    pass ``cache=None`` to force a fresh transient.

    ``warm_start=None`` resolves from ``REPRO_WARM_START`` (default on):
    the evaluation forks a cached pre-skew prefix checkpoint and
    integrates only the measurement suffix (see
    :mod:`repro.runtime.prefix`); ``False`` forces the cold full-horizon
    path, bit-identical to the pre-warm-start behaviour.
    """
    from repro.runtime import evaluate_cached, sensitivity_job

    job = sensitivity_job(
        load, slew, skew,
        process=process, sizing=sizing, options=options,
        slew2=slew2, load2=load2, warm_start=warm_start,
    )
    return evaluate_cached(job, cache=cache, telemetry=telemetry).vmin_late


def sweep_skew(
    load: float,
    slew: float,
    skews: Sequence[float],
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
    backend: str = "serial",
    cache: Any = "default",
    telemetry: Any = None,
    max_workers: Optional[int] = None,
    batch_workers: Optional[int] = None,
    warm_start: Optional[bool] = None,
) -> SensitivityCurve:
    """Sweep ``tau`` and collect the ``Vmin`` curve for one (load, slew).

    The sweep runs as a runtime campaign: cached points are replayed
    without re-integration, fresh ones can be fanned out with
    ``backend="thread"`` / ``"process"`` or solved in lockstep with
    ``backend="batch"`` (all sweep points share the sensor topology, so
    the vectorised engine stacks them into one batched transient), and a
    ``telemetry`` accumulator (see :class:`repro.runtime.Telemetry`)
    receives per-point timings and hit/miss counts.
    """
    from repro.runtime import run_campaign, sensitivity_job

    skew_array = np.asarray(list(skews), dtype=float)
    jobs = [
        sensitivity_job(
            load, slew, float(tau),
            process=process, sizing=sizing, options=options,
            warm_start=warm_start,
        )
        for tau in skew_array
    ]
    campaign = run_campaign(
        jobs, backend=backend, cache=cache, telemetry=telemetry,
        max_workers=max_workers, batch_workers=batch_workers,
    )
    vmins = np.array([result.vmin_late for result in campaign])
    return SensitivityCurve(
        load=load, slew=slew, skews=skew_array, vmins=vmins, threshold=threshold
    )


def extract_tau_min(
    load: float,
    slew: float = ns(0.2),
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    tau_hi: float = ns(2.0),
    tolerance: float = ns(0.002),
    options: Optional[TransientOptions] = None,
    cache: Any = "default",
    telemetry: Any = None,
    warm_start: Optional[bool] = None,
) -> float:
    """Sensitivity ``tau_min`` by bisection on the ``Vmin`` crossing.

    More precise than reading it off a coarse sweep; used wherever a single
    number per load is needed (Tab. 1 classification, ablations).  Each
    bisection point is cached, so repeated extractions (and overlapping
    brackets) replay instead of re-integrating.
    """
    def vmin(tau: float) -> float:
        return vmin_for_skew(
            tau, load, slew, process=process, sizing=sizing, options=options,
            cache=cache, telemetry=telemetry, warm_start=warm_start,
        )

    lo, hi = 0.0, tau_hi
    v_hi = vmin(hi)
    if v_hi <= threshold:
        raise ValueError(
            f"Vmin at tau = {hi:.3e} s is {v_hi:.3f} V <= threshold; "
            "increase tau_hi"
        )
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if vmin(mid) > threshold:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def sensitivity_family(
    loads: Sequence[float],
    slews: Sequence[float],
    skews: Sequence[float],
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
    backend: str = "serial",
    cache: Any = "default",
    telemetry: Any = None,
    max_workers: Optional[int] = None,
    batch_workers: Optional[int] = None,
    on_error: str = "raise",
    checkpoint: Optional[str] = None,
    resume: bool = False,
    warm_start: Optional[bool] = None,
) -> List[SensitivityCurve]:
    """The full Fig.-4 family: one curve per (load, slew) combination.

    The whole (load, slew, skew) grid is submitted as *one* campaign so a
    parallel backend sees every independent point at once (with
    ``backend="batch"`` the lockstep engine stacks the entire grid into
    batched transients), then the flat results are folded back into
    per-(load, slew) curves.

    The robustness knobs of :func:`repro.runtime.run_campaign` pass
    through: ``on_error="collect"`` fills failed grid points with NaN
    instead of aborting the family, and ``checkpoint``/``resume``
    journal completed points so an interrupted campaign restarts where
    it died.
    """
    from repro.runtime import run_campaign, sensitivity_job

    skew_array = np.asarray(list(skews), dtype=float)
    pairs = [(load, slew) for load in loads for slew in slews]
    jobs = [
        sensitivity_job(
            load, slew, float(tau),
            process=process, sizing=sizing, options=options,
            warm_start=warm_start,
        )
        for load, slew in pairs
        for tau in skew_array
    ]
    campaign = run_campaign(
        jobs, backend=backend, cache=cache, telemetry=telemetry,
        max_workers=max_workers, batch_workers=batch_workers,
        on_error=on_error, checkpoint=checkpoint, resume=resume,
    )
    curves: List[SensitivityCurve] = []
    for block, (load, slew) in enumerate(pairs):
        chunk = campaign.results[block * len(skew_array):(block + 1) * len(skew_array)]
        curves.append(
            SensitivityCurve(
                load=load, slew=slew, skews=skew_array,
                vmins=np.array([
                    getattr(result, "vmin_late", float("nan"))
                    for result in chunk
                ]),
                threshold=threshold,
            )
        )
    return curves
