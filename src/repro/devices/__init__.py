"""Device models: level-1 MOSFETs, passives, independent sources, process data.

These models are the electrical substrate replacing the foundry SPICE decks
used in the paper.  The level-1 (Shichman-Hodges) MOSFET equations capture
every first-order effect the sensing circuit relies on: ratioed conduction,
threshold clamping, channel-length modulation, and series-stack division.
"""

from repro.devices.process import (
    ProcessParams,
    TransistorParams,
    corner_process,
    nominal_process,
    perturbed_process,
)
from repro.devices.mosfet import Mosfet, MosfetType
from repro.devices.passives import Capacitor, Resistor
from repro.devices.sources import (
    ClockSource,
    DCSource,
    PulseSource,
    PWLSource,
    clock_pair,
)

__all__ = [
    "ProcessParams",
    "TransistorParams",
    "nominal_process",
    "perturbed_process",
    "corner_process",
    "Mosfet",
    "MosfetType",
    "Capacitor",
    "Resistor",
    "DCSource",
    "PWLSource",
    "PulseSource",
    "ClockSource",
    "clock_pair",
]
