"""Level-1 (Shichman-Hodges) MOSFET model with analytic derivatives.

The model is evaluated in *model space*: for a PMOS all terminal voltages are
negated so the same equations serve both polarities, and drain/source are
swapped when ``vds < 0`` so the equations only ever see ``vds >= 0``.  The
transformation bookkeeping lives in the analog engine; this module provides
the raw I/V surface and the device description object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.devices.process import TransistorParams


class MosfetType(enum.Enum):
    """Device polarity."""

    NMOS = "nmos"
    PMOS = "pmos"

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS (voltage-space transform factor)."""
        return 1 if self is MosfetType.NMOS else -1


def level1_ids(
    vgs: np.ndarray,
    vds: np.ndarray,
    vt: np.ndarray,
    beta: np.ndarray,
    lam: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drain current and small-signal derivatives of the level-1 model.

    All arguments are model-space quantities (``vds >= 0`` expected, ``vt``
    positive).  Works elementwise on arrays of any matching shape.

    Returns
    -------
    (ids, gm, gds):
        Drain-to-source current, ``d ids / d vgs`` and ``d ids / d vds``.

    Notes
    -----
    The channel-length-modulation factor ``(1 + lam * vds)`` is applied in
    both the triode and saturation regions so the current and its first
    derivative are continuous across the ``vds = vgs - vt`` boundary, which
    keeps Newton iterations well behaved.

    The three operating regions share one closed form: with
    ``vov = max(vgs - vt, 0)`` and ``x = min(vds, vov)``, the quantity
    ``core = vov * x - x^2 / 2`` equals the triode core for ``vds < vov``,
    ``vov^2 / 2`` in saturation, and ``0`` for an off device (``vds >= 0``
    forces ``x = 0``).  The branchless form cuts the evaluation to roughly
    half the numpy calls of the three-branch original - this is the single
    hottest function of the repository - while producing bit-identical
    currents (``gds`` may differ by one ulp in saturation, where the
    summation order changed).
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vov = np.maximum(vgs - vt, 0.0)
    x = np.minimum(vds, vov)

    clm = 1.0 + lam * vds
    core = vov * x - 0.5 * x * x
    ids = beta * core * clm
    gm = beta * x * clm
    gds = beta * ((vov - x) * clm + core * lam)
    return ids, gm, gds


@dataclass
class Mosfet:
    """A MOSFET instance in a netlist.

    The electrical parameters are resolved against a
    :class:`~repro.devices.process.TransistorParams` card at construction
    time, so a netlist built for a Monte Carlo sample carries its perturbed
    parameters with it.

    Attributes
    ----------
    name:
        Instance name, unique within a netlist (e.g. ``"a"`` .. ``"l"`` for
        the sensing circuit of Fig. 1).
    drain, gate, source:
        Node names.
    mtype:
        :class:`MosfetType` polarity.
    w, l:
        Drawn width and length in metres.
    card:
        Model card providing ``vt0``, ``kp``, ``lam``.
    stuck_open:
        Fault flag - the device never conducts (broken channel).
    stuck_on:
        Fault flag - the gate behaves as if tied to the turn-on rail.
    """

    name: str
    drain: str
    gate: str
    source: str
    mtype: MosfetType
    w: float
    l: float
    card: TransistorParams
    stuck_open: bool = False
    stuck_on: bool = False

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"MOSFET {self.name}: W and L must be positive")
        if self.stuck_open and self.stuck_on:
            raise ValueError(f"MOSFET {self.name}: cannot be both stuck-open and stuck-on")

    @property
    def beta(self) -> float:
        """Effective transconductance factor ``kp * W / L`` in A/V^2."""
        return self.card.kp * self.w / self.l

    @property
    def vt_magnitude(self) -> float:
        """Threshold magnitude ``|vt0|`` (model space uses positive vt)."""
        return abs(self.card.vt0)

    @property
    def gate_capacitance(self) -> float:
        """Lumped gate-oxide capacitance estimate, farads."""
        return self.card.cox_per_area * self.w * self.l

    @property
    def junction_capacitance(self) -> float:
        """Lumped drain/source junction capacitance estimate, farads."""
        return self.card.cj_per_width * self.w

    def nodes(self) -> Tuple[str, str, str]:
        """Terminal node names ``(drain, gate, source)``."""
        return (self.drain, self.gate, self.source)
