"""Level-1 (Shichman-Hodges) MOSFET model with analytic derivatives.

The model is evaluated in *model space*: for a PMOS all terminal voltages are
negated so the same equations serve both polarities, and drain/source are
swapped when ``vds < 0`` so the equations only ever see ``vds >= 0``.  The
transformation bookkeeping lives in the analog engine; this module provides
the raw I/V surface and the device description object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.devices.process import TransistorParams


class MosfetType(enum.Enum):
    """Device polarity."""

    NMOS = "nmos"
    PMOS = "pmos"

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS (voltage-space transform factor)."""
        return 1 if self is MosfetType.NMOS else -1


def level1_ids(
    vgs: np.ndarray,
    vds: np.ndarray,
    vt: np.ndarray,
    beta: np.ndarray,
    lam: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drain current and small-signal derivatives of the level-1 model.

    All arguments are model-space quantities (``vds >= 0`` expected, ``vt``
    positive).  Works elementwise on arrays of any matching shape.

    Returns
    -------
    (ids, gm, gds):
        Drain-to-source current, ``d ids / d vgs`` and ``d ids / d vds``.

    Notes
    -----
    The channel-length-modulation factor ``(1 + lam * vds)`` is applied in
    both the triode and saturation regions so the current and its first
    derivative are continuous across the ``vds = vgs - vt`` boundary, which
    keeps Newton iterations well behaved.
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vov = vgs - vt
    on = vov > 0.0
    triode = on & (vds < vov)

    clm = 1.0 + lam * vds
    vov_on = np.where(on, vov, 0.0)

    # Saturation expressions (used wherever the device is on and not triode).
    ids_sat = 0.5 * beta * vov_on**2 * clm
    gm_sat = beta * vov_on * clm
    gds_sat = 0.5 * beta * vov_on**2 * lam

    # Triode expressions.
    core = vov_on * vds - 0.5 * vds**2
    ids_tri = beta * core * clm
    gm_tri = beta * vds * clm
    gds_tri = beta * ((vov_on - vds) * clm + core * lam)

    ids = np.where(on, np.where(triode, ids_tri, ids_sat), 0.0)
    gm = np.where(on, np.where(triode, gm_tri, gm_sat), 0.0)
    gds = np.where(on, np.where(triode, gds_tri, gds_sat), 0.0)
    return ids, gm, gds


@dataclass
class Mosfet:
    """A MOSFET instance in a netlist.

    The electrical parameters are resolved against a
    :class:`~repro.devices.process.TransistorParams` card at construction
    time, so a netlist built for a Monte Carlo sample carries its perturbed
    parameters with it.

    Attributes
    ----------
    name:
        Instance name, unique within a netlist (e.g. ``"a"`` .. ``"l"`` for
        the sensing circuit of Fig. 1).
    drain, gate, source:
        Node names.
    mtype:
        :class:`MosfetType` polarity.
    w, l:
        Drawn width and length in metres.
    card:
        Model card providing ``vt0``, ``kp``, ``lam``.
    stuck_open:
        Fault flag - the device never conducts (broken channel).
    stuck_on:
        Fault flag - the gate behaves as if tied to the turn-on rail.
    """

    name: str
    drain: str
    gate: str
    source: str
    mtype: MosfetType
    w: float
    l: float
    card: TransistorParams
    stuck_open: bool = False
    stuck_on: bool = False

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"MOSFET {self.name}: W and L must be positive")
        if self.stuck_open and self.stuck_on:
            raise ValueError(f"MOSFET {self.name}: cannot be both stuck-open and stuck-on")

    @property
    def beta(self) -> float:
        """Effective transconductance factor ``kp * W / L`` in A/V^2."""
        return self.card.kp * self.w / self.l

    @property
    def vt_magnitude(self) -> float:
        """Threshold magnitude ``|vt0|`` (model space uses positive vt)."""
        return abs(self.card.vt0)

    @property
    def gate_capacitance(self) -> float:
        """Lumped gate-oxide capacitance estimate, farads."""
        return self.card.cox_per_area * self.w * self.l

    @property
    def junction_capacitance(self) -> float:
        """Lumped drain/source junction capacitance estimate, farads."""
        return self.card.cj_per_width * self.w

    def nodes(self) -> Tuple[str, str, str]:
        """Terminal node names ``(drain, gate, source)``."""
        return (self.drain, self.gate, self.source)
