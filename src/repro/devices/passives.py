"""Linear passive devices: resistors and capacitors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass
class Resistor:
    """A two-terminal linear resistor.

    Used for interconnect segments, bridging-fault resistances (the paper
    uses 100 ohm), and low-impedance ties for node stuck-at injection.
    """

    name: str
    a: str
    b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"Resistor {self.name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        """1 / R in siemens."""
        return 1.0 / self.resistance

    def nodes(self) -> Tuple[str, str]:
        """Terminal node names."""
        return (self.a, self.b)


@dataclass
class Capacitor:
    """A two-terminal linear capacitor.

    The paper's load sweep (80 / 160 / 240 fF on ``y1`` and ``y2``) is
    modelled with instances of this class to ground.
    """

    name: str
    a: str
    b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"Capacitor {self.name}: capacitance must be non-negative")

    def nodes(self) -> Tuple[str, str]:
        """Terminal node names."""
        return (self.a, self.b)
