"""Process parameter sets for a representative 1.2 um CMOS technology.

The paper evaluates a 1.2 um implementation at VDD = 5 V.  The exact foundry
deck is proprietary and long gone; the values below are textbook level-1
parameters for that node (see e.g. Weste & Eshraghian, 2nd ed.).  The Monte
Carlo experiment (Fig. 5 / Tab. 1) perturbs every parameter uniformly by a
relative amount (the paper uses +/-15 %).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class TransistorParams:
    """Level-1 model card for one device polarity.

    Attributes
    ----------
    vt0:
        Zero-bias threshold voltage in volts.  Positive for NMOS, negative
        for PMOS (standard SPICE convention).
    kp:
        Transconductance parameter (``u0 * Cox``) in A/V^2.
    lam:
        Channel-length modulation coefficient in 1/V.
    cox_per_area:
        Gate-oxide capacitance per unit gate area, F/m^2.  Used for the
        lumped gate/drain parasitic estimate.
    cj_per_width:
        Junction (drain/source) capacitance per unit device width, F/m.
    """

    vt0: float
    kp: float
    lam: float
    cox_per_area: float = 1.4e-3
    cj_per_width: float = 0.4e-9


@dataclass(frozen=True)
class ProcessParams:
    """A full process corner: NMOS + PMOS cards and the supply voltage."""

    nmos: TransistorParams
    pmos: TransistorParams
    vdd: float = 5.0
    name: str = "cmos12"

    def polarity(self, is_pmos: bool) -> TransistorParams:
        """Return the model card for the requested device polarity."""
        return self.pmos if is_pmos else self.nmos


def nominal_process() -> ProcessParams:
    """The nominal 1.2 um process corner used for all non-Monte-Carlo runs."""
    return ProcessParams(
        nmos=TransistorParams(vt0=0.75, kp=80e-6, lam=0.02),
        pmos=TransistorParams(vt0=-0.85, kp=27e-6, lam=0.05),
        vdd=5.0,
        name="cmos12-nominal",
    )


def corner_process(corner: str, spread: float = 0.1) -> ProcessParams:
    """A classic four-corner model: SS / FF / SF / FS.

    The first letter is the NMOS speed, the second the PMOS speed; a
    "slow" device has its threshold raised and its transconductance
    lowered by ``spread`` (and vice versa for "fast").  TT is the nominal
    corner (:func:`nominal_process`).
    """
    corner = corner.lower()
    if corner == "tt":
        return nominal_process()
    if len(corner) != 2 or any(c not in "sf" for c in corner):
        raise ValueError(f"unknown corner {corner!r} (use tt/ss/ff/sf/fs)")
    base = nominal_process()

    def shift(card: TransistorParams, speed: str) -> TransistorParams:
        sign = 1.0 if speed == "s" else -1.0
        return replace(
            card,
            vt0=card.vt0 * (1.0 + sign * spread),
            kp=card.kp * (1.0 - sign * spread),
        )

    return ProcessParams(
        nmos=shift(base.nmos, corner[0]),
        pmos=shift(base.pmos, corner[1]),
        vdd=base.vdd,
        name=f"cmos12-{corner}",
    )


def perturbed_process(
    rng: np.random.Generator,
    relative_variation: float = 0.15,
    base: Optional[ProcessParams] = None,
) -> ProcessParams:
    """Sample a process instance with uniform relative parameter variation.

    Every electrical parameter of both model cards is independently drawn
    from ``U[nominal * (1 - r), nominal * (1 + r)]`` — the distribution the
    paper states for its Monte Carlo analysis ("uniform distribution with
    0.15 as relative variation from the nominal value").

    Parameters
    ----------
    rng:
        Source of randomness; pass a seeded generator for reproducibility.
    relative_variation:
        The half-width ``r`` of the uniform relative window.
    base:
        Corner to perturb; defaults to :func:`nominal_process`.
    """
    if relative_variation < 0:
        raise ValueError("relative_variation must be non-negative")
    base = base or nominal_process()

    def vary(value: float) -> float:
        return value * (1.0 + rng.uniform(-relative_variation, relative_variation))

    def vary_card(card: TransistorParams) -> TransistorParams:
        return replace(
            card,
            vt0=vary(card.vt0),
            kp=vary(card.kp),
            lam=vary(card.lam),
            cox_per_area=vary(card.cox_per_area),
            cj_per_width=vary(card.cj_per_width),
        )

    return ProcessParams(
        nmos=vary_card(base.nmos),
        pmos=vary_card(base.pmos),
        vdd=base.vdd,
        name=base.name + "-mc",
    )
