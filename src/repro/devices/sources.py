"""Independent voltage sources: DC, piecewise-linear, pulse, and clocks.

Every source drives one netlist node to a known voltage as a function of
time.  Sources expose their *breakpoints* (corner times of the waveform) so
the transient engine can land integration steps exactly on them and restart
with a small step, which is what keeps sharp clock edges accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class DCSource:
    """A constant voltage (supply rails, stuck-at ties)."""

    voltage: float

    def value(self, t: float) -> float:
        """Voltage at time ``t`` (constant)."""
        return self.voltage

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """A DC source has no waveform corners."""
        return []


@dataclass
class PWLSource:
    """A piecewise-linear voltage waveform.

    ``times`` must be strictly increasing; the waveform holds its first
    value before ``times[0]`` and its last value after ``times[-1]``.
    """

    times: Sequence[float]
    values: Sequence[float]
    _t: np.ndarray = field(init=False, repr=False)
    _v: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.ndim != 1 or t.shape != v.shape or t.size == 0:
            raise ValueError("PWLSource: times and values must be equal-length 1-D")
        if np.any(np.diff(t) <= 0):
            raise ValueError("PWLSource: times must be strictly increasing")
        self._t = t
        self._v = v

    def value(self, t: float) -> float:
        """Linearly interpolated voltage at time ``t``."""
        return float(np.interp(t, self._t, self._v))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """Corner times falling inside ``[t0, t1]``."""
        mask = (self._t >= t0) & (self._t <= t1)
        return [float(x) for x in self._t[mask]]


def _edge(
    t_edge: float, rise: float, lo: float, hi: float
) -> Tuple[List[float], List[float]]:
    """PWL fragment for one transition starting at ``t_edge``."""
    return [t_edge, t_edge + rise], [lo, hi]


@dataclass
class PulseSource:
    """A SPICE-style periodic pulse source.

    Parameters follow the SPICE ``PULSE`` card: initial value ``v0``, pulsed
    value ``v1``, ``delay`` before the first edge, ``rise`` / ``fall`` edge
    durations, ``width`` of the pulsed level, and ``period``.
    """

    v0: float
    v1: float
    delay: float
    rise: float
    fall: float
    width: float
    period: float

    def __post_init__(self) -> None:
        if self.rise <= 0 or self.fall <= 0:
            raise ValueError("PulseSource: rise and fall must be positive")
        if self.period <= self.rise + self.width + self.fall:
            raise ValueError("PulseSource: period shorter than one full pulse")

    def _phase_value(self, tau: float) -> float:
        """Voltage as a function of time-within-period ``tau``."""
        if tau < 0:
            return self.v0
        if tau < self.rise:
            return self.v0 + (self.v1 - self.v0) * tau / self.rise
        if tau < self.rise + self.width:
            return self.v1
        if tau < self.rise + self.width + self.fall:
            frac = (tau - self.rise - self.width) / self.fall
            return self.v1 + (self.v0 - self.v1) * frac
        return self.v0

    def value(self, t: float) -> float:
        """Voltage at time ``t``."""
        if t < self.delay:
            return self.v0
        tau = (t - self.delay) % self.period
        return self._phase_value(tau)

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """All edge corners inside ``[t0, t1]``."""
        points: List[float] = []
        if t0 <= self.delay <= t1:
            points.append(self.delay)
        k = max(0, int((t0 - self.delay) // self.period) - 1)
        while True:
            base = self.delay + k * self.period
            if base > t1:
                break
            for corner in (
                base,
                base + self.rise,
                base + self.rise + self.width,
                base + self.rise + self.width + self.fall,
            ):
                if t0 <= corner <= t1:
                    points.append(corner)
            k += 1
        return sorted(set(points))


@dataclass
class ClockSource:
    """A clock waveform with an explicit skew term.

    This is the stimulus used throughout the reproduction: a 50 %-duty
    square clock with linear edges, whose every edge is displaced by
    ``skew`` seconds relative to the reference clock.  ``skew`` may be
    negative (an *early* clock).

    Attributes
    ----------
    period:
        Clock period in seconds.
    slew:
        0-to-100 % edge duration in seconds (the paper calls this the clock
        "slope" or "slew"; it sweeps 0.1 ns to 0.4 ns).
    skew:
        Displacement of this clock's edges relative to nominal, seconds.
    delay:
        Time of the nominal first rising edge.
    vdd:
        High level; low level is 0 V.
    """

    period: float
    slew: float
    skew: float = 0.0
    delay: float = 0.0
    vdd: float = 5.0

    _pulse: PulseSource = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.period <= 0 or self.slew <= 0:
            raise ValueError("ClockSource: period and slew must be positive")
        if self.slew >= self.period / 2:
            raise ValueError("ClockSource: slew must be shorter than half period")
        high = self.period / 2 - self.slew
        self._pulse = PulseSource(
            v0=0.0,
            v1=self.vdd,
            delay=self.delay + self.skew,
            rise=self.slew,
            fall=self.slew,
            width=high,
            period=self.period,
        )

    def value(self, t: float) -> float:
        """Voltage at time ``t``."""
        if t < self.delay + self.skew:
            return 0.0
        return self._pulse.value(t)

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """Edge corners inside ``[t0, t1]``."""
        return self._pulse.breakpoints(t0, t1)

    def rising_edge(self, index: int) -> float:
        """Start time of the ``index``-th rising edge (0-based)."""
        return self.delay + self.skew + index * self.period


def jittery_clock(
    period: float,
    slew: float,
    n_cycles: int,
    rms_jitter: float,
    rng,
    delay: float = 0.0,
    skew: float = 0.0,
    vdd: float = 5.0,
) -> PWLSource:
    """A clock whose every edge carries independent Gaussian timing noise.

    Unlike a static skew (a *systematic* displacement the paper's sensor
    targets), jitter is a per-edge random displacement; a sensor tolerance
    set too close to the jitter floor raises false alarms.  The waveform
    is materialised as a PWL source over ``n_cycles`` periods; individual
    edge offsets are clipped to ``period / 8`` so edges stay ordered.

    Parameters
    ----------
    rms_jitter:
        Standard deviation of each edge's displacement, seconds.
    rng:
        ``numpy.random.Generator`` supplying the noise (seed it for
        reproducibility).
    skew:
        Static displacement added to every edge (combine with jitter to
        study the mixed case).
    """
    if n_cycles < 1:
        raise ValueError("need at least one cycle")
    if rms_jitter < 0:
        raise ValueError("rms_jitter must be non-negative")
    clip = period / 8.0
    times: List[float] = [0.0]
    values: List[float] = [0.0]
    for k in range(n_cycles):
        base = delay + skew + k * period
        jit_r = float(np.clip(rng.normal(0.0, rms_jitter), -clip, clip))
        jit_f = float(np.clip(rng.normal(0.0, rms_jitter), -clip, clip))
        rise = base + jit_r
        fall = base + period / 2.0 + jit_f
        for t, v in ((rise, 0.0), (rise + slew, vdd),
                     (fall, vdd), (fall + slew, 0.0)):
            if t > times[-1]:
                times.append(t)
                values.append(v)
    times.append(delay + n_cycles * period + period)
    values.append(0.0)
    return PWLSource(times=times, values=values)


def clock_pair(
    period: float,
    slew1: float,
    slew2: float,
    skew: float,
    delay: float = 0.0,
    vdd: float = 5.0,
) -> Tuple[ClockSource, ClockSource]:
    """Build the two monitored clocks ``(phi1, phi2)`` of the paper.

    ``skew > 0`` delays ``phi2`` relative to ``phi1`` (the Fig. 3 case where
    ``y1`` falls and ``y2`` holds, producing the error code ``01``);
    ``skew < 0`` delays ``phi1``.
    """
    phi1 = ClockSource(period=period, slew=slew1, skew=0.0, delay=delay, vdd=vdd)
    phi2 = ClockSource(period=period, slew=slew2, skew=skew, delay=delay, vdd=vdd)
    return phi1, phi2
