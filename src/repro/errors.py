"""Simulation error taxonomy with structured diagnostics.

Every failure mode of the stack - solver non-convergence, numerical
blow-up, step-size underflow, campaign timeouts, worker crashes - derives
from :class:`SimulationError` and carries a :class:`SimulationDiagnostics`
record, so a failure buried in a thousand-job Monte Carlo campaign is
debuggable from its log line alone: which circuit, at what simulated time,
on which Newton iteration, at which gmin stage, with which node holding
the worst residual, and what the last accepted state vector was.

The hierarchy keeps backward compatibility with the historical homes of
the two pre-existing exceptions:

* ``repro.analog.dcop.ConvergenceError`` is re-exported from here and is
  still a :class:`RuntimeError`;
* ``repro.runtime.executor.CampaignTimeoutError`` is re-exported from
  here and is still a :class:`TimeoutError`.

Campaign-level error *records* (the ``on_error="collect"`` mode of
:func:`repro.runtime.run_campaign`) are :class:`JobError` dataclasses -
plain data, JSON-serialisable, safe to ship across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Cap on how many node voltages a diagnostics record keeps; enough to
#: rebuild an initial guess for the paper's circuits, bounded so one log
#: line of a huge clock tree stays readable.
MAX_STATE_NODES = 64


@dataclass
class SimulationDiagnostics:
    """Structured context attached to every :class:`SimulationError`.

    Attributes
    ----------
    circuit:
        Name of the netlist being solved (fault injection mangles the
        name, so a faulty circuit is identifiable from here alone).
    sim_time:
        Simulated time in seconds at which the failure occurred (0.0 for
        DC operating-point failures at ``t = 0``).
    newton_iteration:
        Iteration count of the last Newton solve before giving up.
    gmin_stage:
        Shunt conductance of the gmin-homotopy stage that failed, if the
        failure happened inside the homotopy.
    ladder_rung:
        Name of the escalation-ladder rung that was being attempted when
        the solver finally gave up (``None`` when no ladder ran).
    worst_residual_node:
        Node carrying the largest KCL residual in the last iterate.
    worst_residual:
        That residual's magnitude, amperes.
    last_state:
        Last *accepted* state vector as a ``node -> voltage`` mapping
        (truncated to :data:`MAX_STATE_NODES` entries), usable as an
        initial guess for a retry.
    extra:
        Free-form additional context (attempt counts, timeout budgets...).
    """

    circuit: str = ""
    sim_time: float = 0.0
    newton_iteration: Optional[int] = None
    gmin_stage: Optional[float] = None
    ladder_rung: Optional[str] = None
    worst_residual_node: Optional[str] = None
    worst_residual: Optional[float] = None
    last_state: Optional[Dict[str, float]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (``None`` fields omitted)."""
        data: Dict[str, Any] = {"circuit": self.circuit, "sim_time": self.sim_time}
        for name in ("newton_iteration", "gmin_stage", "ladder_rung",
                     "worst_residual_node", "worst_residual"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        if self.last_state is not None:
            data["last_state"] = dict(self.last_state)
        if self.extra:
            data["extra"] = dict(self.extra)
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SimulationDiagnostics":
        """Rebuild a record from its :meth:`as_dict` form."""
        return SimulationDiagnostics(
            circuit=str(data.get("circuit", "")),
            sim_time=float(data.get("sim_time", 0.0)),
            newton_iteration=data.get("newton_iteration"),
            gmin_stage=data.get("gmin_stage"),
            ladder_rung=data.get("ladder_rung"),
            worst_residual_node=data.get("worst_residual_node"),
            worst_residual=data.get("worst_residual"),
            last_state=data.get("last_state"),
            extra=dict(data.get("extra", {})),
        )

    def describe(self) -> str:
        """Compact one-line rendering for log/exception messages."""
        parts = []
        if self.circuit:
            parts.append(f"circuit={self.circuit!r}")
        parts.append(f"t={self.sim_time:.6e}s")
        if self.newton_iteration is not None:
            parts.append(f"newton_iter={self.newton_iteration}")
        if self.gmin_stage is not None:
            parts.append(f"gmin={self.gmin_stage:.1e}")
        if self.ladder_rung is not None:
            parts.append(f"rung={self.ladder_rung}")
        if self.worst_residual_node is not None:
            residual = (
                f"{self.worst_residual:.3e}A"
                if self.worst_residual is not None else "?"
            )
            parts.append(f"worst_node={self.worst_residual_node}({residual})")
        if self.last_state:
            parts.append(f"last_state={len(self.last_state)} nodes")
        for key, value in self.extra.items():
            parts.append(f"{key}={value}")
        return ", ".join(parts)

    def capture_state(self, node_index: Dict[str, int], vector: Any) -> None:
        """Record ``vector`` (indexable by node index) as the last-good
        state, truncated to :data:`MAX_STATE_NODES` nodes."""
        state: Dict[str, float] = {}
        for name in sorted(node_index):
            if len(state) >= MAX_STATE_NODES:
                break
            state[name] = float(vector[node_index[name]])
        self.last_state = state


class SimulationError(RuntimeError):
    """Base class of every failure raised by the simulation stack.

    Carries a :class:`SimulationDiagnostics` on ``.diagnostics``; the
    string form appends its one-line rendering so plain ``%s`` logging
    already contains the structured context.
    """

    def __init__(
        self,
        message: str = "",
        diagnostics: Optional[SimulationDiagnostics] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.diagnostics = diagnostics or SimulationDiagnostics()

    def __str__(self) -> str:
        detail = self.diagnostics.describe()
        return f"{self.message} [{detail}]" if detail else self.message

    def __reduce__(self):
        return (_rebuild_exception, (self.__class__, self.message, self.__dict__))


def _rebuild_exception(cls, message, state):
    """Unpickling helper restoring diagnostics and subclass attributes."""
    error = cls(message)
    error.__dict__.update(state)
    return error


class ConvergenceError(SimulationError):
    """Newton iteration failed to find a solution (DC or transient).

    Historically ``repro.analog.dcop.ConvergenceError``; that name is an
    alias of this class, and it is still a :class:`RuntimeError`.
    """


class NonFiniteStateError(ConvergenceError):
    """A NaN or Inf appeared in the solution vector.

    Raised by the per-step guards of the transient engine and the DC
    solver instead of letting the garbage propagate through downstream
    waveform analysis.
    """


class StepSizeUnderflowError(ConvergenceError):
    """The transient step size shrank below ``dt_min`` with every
    escalation rung exhausted."""


class CampaignTimeoutError(SimulationError, TimeoutError):
    """A campaign job exceeded its per-job timeout.

    Carries *which* job timed out (``.job``), how many dispatch attempts
    it had consumed (``.attempts``) and the elapsed wall time
    (``.elapsed``, seconds) - historically all three were lost.
    """

    def __init__(
        self,
        message: str = "",
        job: Any = None,
        attempts: int = 0,
        elapsed: float = 0.0,
        diagnostics: Optional[SimulationDiagnostics] = None,
    ) -> None:
        super().__init__(message, diagnostics)
        self.job = job
        self.attempts = attempts
        self.elapsed = elapsed
        self.diagnostics.extra.setdefault("attempts", attempts)
        self.diagnostics.extra.setdefault("elapsed_s", round(elapsed, 6))
        if job is not None:
            self.diagnostics.extra.setdefault("job", repr(job))


class WorkerCrashError(SimulationError):
    """A campaign worker process died (segfault, ``os._exit``, OOM kill).

    The campaign executor attributes the crash to a job by re-dispatching
    the in-flight set in isolation; ``.dispatches`` counts how many pools
    the job broke before being declared poison.
    """

    def __init__(
        self,
        message: str = "",
        job: Any = None,
        dispatches: int = 0,
        diagnostics: Optional[SimulationDiagnostics] = None,
    ) -> None:
        super().__init__(message, diagnostics)
        self.job = job
        self.dispatches = dispatches
        self.diagnostics.extra.setdefault("dispatches", dispatches)
        if job is not None:
            self.diagnostics.extra.setdefault("job", repr(job))


class InjectedFaultError(RuntimeError):
    """A deliberately injected infrastructure fault.

    Raised by the fault-injection sites of :mod:`repro.runtime.faults`
    that simulate *environment* failures (journal write errors, result
    publish errors) rather than simulation failures.  Deliberately not a
    :class:`SimulationError`: the components that can encounter the real
    failure (``OSError`` from a full or dying disk) must handle this
    class through exactly the same retry/degradation paths, so chaos
    tests prove the production behaviour, not a special case.
    """


class CampaignCancelledError(RuntimeError):
    """A campaign was cancelled via its ``cancel_event`` before finishing.

    Raised in the *parent* process by :func:`repro.runtime.run_campaign`
    when the caller-supplied :class:`threading.Event` is set mid-dispatch;
    it never crosses a process boundary and is deliberately not a
    :class:`SimulationError` - cancellation must abort the campaign even
    under ``on_error="collect"``.  Every job completed before the event
    fired has already been journalled/cached, so a re-run with
    ``resume=True`` continues where the cancellation struck.
    """

    def __init__(self, message: str = "", completed: int = 0,
                 reason: str = "cancelled") -> None:
        super().__init__(message)
        self.message = message
        self.completed = completed
        self.reason = reason


#: Exception classes reconstructable from a worker's serialised error
#: payload (class name + message + diagnostics dict).
ERROR_CLASSES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SimulationError,
        ConvergenceError,
        NonFiniteStateError,
        StepSizeUnderflowError,
        CampaignTimeoutError,
        WorkerCrashError,
    )
}


def rebuild_error(
    name: str, message: str, diagnostics: Optional[Dict[str, Any]] = None
) -> SimulationError:
    """Reconstruct a :class:`SimulationError` from its serialised form.

    Unknown class names degrade to the base :class:`SimulationError` (the
    taxonomy may grow; old journals must still load).
    """
    cls = ERROR_CLASSES.get(name, SimulationError)
    diag = SimulationDiagnostics.from_dict(diagnostics) if diagnostics else None
    error = cls(message, diagnostics=diag)
    extra = error.diagnostics.extra
    if isinstance(error, CampaignTimeoutError):
        error.job = None
        error.attempts = int(extra.get("attempts", 0))
        error.elapsed = float(extra.get("elapsed_s", 0.0))
    elif isinstance(error, WorkerCrashError):
        error.job = None
        error.dispatches = int(extra.get("dispatches", 0))
    return error


@dataclass
class JobError:
    """Per-job failure record returned by ``on_error="collect"`` campaigns.

    Plain data: everything a post-mortem needs, nothing that cannot cross
    a process boundary or a JSON file.

    Attributes
    ----------
    index:
        Position of the failed job in the campaign's job list.
    job:
        The job descriptor itself (``None`` if it could not be pickled).
    error:
        Exception class name (``"ConvergenceError"``, ...).
    message:
        The exception message.
    diagnostics:
        The :meth:`SimulationDiagnostics.as_dict` payload.
    attempts:
        Evaluation attempts consumed (retries included).
    wall:
        Wall time spent on the failing attempts, seconds.
    """

    index: int
    job: Any
    error: str
    message: str
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    wall: float = 0.0

    #: Discriminates from JobResult without isinstance checks.
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Always ``False``; lets callers filter mixed result lists."""
        return False

    def exception(self) -> SimulationError:
        """Materialise the recorded failure as a raisable exception."""
        return rebuild_error(self.error, self.message, self.diagnostics)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the job is rendered via ``repr``)."""
        return {
            "index": self.index,
            "job": repr(self.job) if self.job is not None else None,
            "error": self.error,
            "message": self.message,
            "diagnostics": dict(self.diagnostics),
            "attempts": self.attempts,
            "wall_s": self.wall,
        }
