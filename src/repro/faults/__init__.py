"""Fault models and fault-universe machinery.

The paper analyses the sensor's testability against "a set of realistic
faults, including stuck-ats, transistor faults and bridgings" (ref. [10],
Abraham & Fuchs).  This package provides:

* fault descriptors that inject themselves into a *copy* of a netlist;
* fault-universe enumeration over a netlist;
* the IDDQ observable (quiescent supply current) used for the faults that
  escape logic detection.
"""

from repro.faults.models import (
    BridgingFault,
    Fault,
    NodeStuckAt,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.faults.universe import (
    FaultUniverse,
    apply_layout_hardening,
    enumerate_faults,
)
from repro.faults.iddq import IddqProbe, quiescent_current

__all__ = [
    "Fault",
    "NodeStuckAt",
    "TransistorStuckOpen",
    "TransistorStuckOn",
    "BridgingFault",
    "FaultUniverse",
    "enumerate_faults",
    "apply_layout_hardening",
    "IddqProbe",
    "quiescent_current",
]
