"""The IDDQ observable: quiescent supply current.

Healthy static CMOS draws only leakage in the quiescent state; a conducting
fight (stuck-on conflict, resistive bridge between opposite-value nodes,
hard stuck-at against a driver) draws milliamperes.  The paper falls back on
IDDQ testing for the stuck-on and bridging faults its sensing outputs cannot
flag logically (Sec. 3, refs. [12]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analog.engine import TransientResult

#: Default IDDQ pass/fail threshold, amperes.  Healthy quiescent current in
#: this library is set by the engine's conditioning conductances (~nA);
#: defective circuits draw > 100 uA through a 100 ohm bridge or a stuck-on
#: fight, so 10 uA separates the populations by orders of magnitude.
DEFAULT_IDDQ_THRESHOLD = 10e-6


@dataclass(frozen=True)
class IddqProbe:
    """Quiescent-current measurement plan over a transient run.

    Attributes
    ----------
    windows:
        ``(t0, t1)`` intervals (seconds) that are quiescent in the
        fault-free circuit - typically the tail of each clock half-phase.
    threshold:
        Current above which the device fails the IDDQ test.
    """

    windows: Tuple[Tuple[float, float], ...]
    threshold: float = DEFAULT_IDDQ_THRESHOLD

    def measure(self, result: TransientResult, supply: str = "vdd") -> float:
        """Largest mean supply current over the quiescent windows."""
        wave = result.source_current(supply)
        return max(abs(wave.mean(t0, t1)) for t0, t1 in self.windows)

    def failing(self, result: TransientResult, supply: str = "vdd") -> bool:
        """True when the quiescent current exceeds the threshold."""
        return self.measure(result, supply) > self.threshold


def quiescent_windows(
    edges: Sequence[float], fraction: float = 0.3
) -> List[Tuple[float, float]]:
    """Build quiescent windows from a list of phase-boundary times.

    Each window is the last ``fraction`` of the interval preceding every
    boundary - the circuit has settled, the next edge has not begun.
    """
    windows: List[Tuple[float, float]] = []
    for start, end in zip(edges[:-1], edges[1:]):
        width = (end - start) * fraction
        windows.append((end - width, end))
    return windows


def quiescent_current(
    result: TransientResult,
    windows: Sequence[Tuple[float, float]],
    supply: str = "vdd",
) -> float:
    """Largest mean supply current over ``windows`` (amperes)."""
    wave = result.source_current(supply)
    return max(abs(wave.mean(t0, t1)) for t0, t1 in windows)
