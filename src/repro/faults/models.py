"""Fault descriptors.

Each fault knows how to inject itself into a copy of a netlist, leaving the
pristine design untouched.  Electrical semantics:

* **node stuck-at** - the node is tied to the rail through a very low
  resistance (a hard short in layout terms), so conflicting drivers show up
  both as wrong logic values and as static supply current;
* **transistor stuck-open** - the channel never conducts (flagged on the
  device; the compiler drops it);
* **transistor stuck-on** - the channel conducts regardless of the gate
  (the compiler remaps the gate to the turn-on rail), reproducing the
  "typically analog behaviour" of conflicting CMOS networks the paper
  cites from Malaiya & Su;
* **bridging** - a finite resistance between two nodes; the paper studies
  a 100 ohm bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Netlist


class Fault:
    """Base class for injectable faults."""

    def inject(self, netlist: Netlist) -> Netlist:
        """Return a faulty copy of ``netlist``."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Short category tag (``"stuck-at"``, ``"stuck-open"``, ...)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"


#: Resistance of the hard tie used for node stuck-at faults, ohms.
STUCK_AT_RESISTANCE = 5.0

#: Bridge resistance used by the paper's analysis, ohms.
DEFAULT_BRIDGE_RESISTANCE = 100.0


@dataclass(frozen=True)
class NodeStuckAt(Fault):
    """Node tied to a logic value (0 -> ground, 1 -> ``vdd_node``)."""

    node: str
    value: int
    vdd_node: str = "vdd"

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def kind(self) -> str:
        return "stuck-at"

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"node {self.node} stuck-at-{self.value}"

    def inject(self, netlist: Netlist) -> Netlist:
        """Tie the node to its rail through a hard short, in a copy."""
        faulty = netlist.copy()
        rail = self.vdd_node if self.value == 1 else GROUND
        if self.node == rail:
            return faulty
        faulty.add_resistor(
            f"fault_sa_{self.node}_{self.value}", self.node, rail, STUCK_AT_RESISTANCE
        )
        faulty.name = f"{netlist.name}+{self.describe()}"
        return faulty


@dataclass(frozen=True)
class TransistorStuckOpen(Fault):
    """Transistor channel permanently open (never conducts)."""

    transistor: str

    @property
    def kind(self) -> str:
        return "stuck-open"

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"transistor {self.transistor} stuck-open"

    def inject(self, netlist: Netlist) -> Netlist:
        """Flag the device's channel as permanently open, in a copy."""
        faulty = netlist.copy()
        device = faulty.find_mosfet(self.transistor)
        if device is None:
            raise KeyError(f"no transistor named {self.transistor!r}")
        device.stuck_open = True
        faulty.name = f"{netlist.name}+{self.describe()}"
        return faulty


@dataclass(frozen=True)
class TransistorStuckOn(Fault):
    """Transistor channel permanently conducting."""

    transistor: str

    @property
    def kind(self) -> str:
        return "stuck-on"

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"transistor {self.transistor} stuck-on"

    def inject(self, netlist: Netlist) -> Netlist:
        """Flag the device's channel as permanently conducting, in a copy."""
        faulty = netlist.copy()
        device = faulty.find_mosfet(self.transistor)
        if device is None:
            raise KeyError(f"no transistor named {self.transistor!r}")
        device.stuck_on = True
        faulty.name = f"{netlist.name}+{self.describe()}"
        return faulty


@dataclass(frozen=True)
class BridgingFault(Fault):
    """Resistive bridge between two nodes (default 100 ohm, as in Sec. 3)."""

    node_a: str
    node_b: str
    resistance: float = DEFAULT_BRIDGE_RESISTANCE

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError("bridge endpoints must differ")
        if self.resistance <= 0:
            raise ValueError("bridge resistance must be positive")

    @property
    def kind(self) -> str:
        return "bridging"

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"bridge {self.node_a}-{self.node_b} "
            f"({self.resistance:.0f} ohm)"
        )

    def inject(self, netlist: Netlist) -> Netlist:
        """Add the bridge resistor between the two nodes, in a copy."""
        faulty = netlist.copy()
        faulty.add_resistor(
            f"fault_br_{self.node_a}_{self.node_b}",
            self.node_a,
            self.node_b,
            self.resistance,
        )
        faulty.name = f"{netlist.name}+{self.describe()}"
        return faulty
