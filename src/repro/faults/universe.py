"""Fault-universe enumeration.

Mirrors the implicit universe of the paper's Sec. 3 on a transistor-level
netlist:

* node stuck-at-0/1 on every circuit node (free nodes: outputs and the
  internal pull-up / pull-down nodes);
* stuck-open and stuck-on on every transistor;
* a resistive bridge between every unordered pair of *signal* nodes
  (free nodes plus the clock inputs - bridges to the rails are the
  stuck-at faults already enumerated above).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, List, Optional, Sequence

from repro.circuit.netlist import GROUND, Netlist
from repro.faults.models import (
    BridgingFault,
    Fault,
    NodeStuckAt,
    TransistorStuckOn,
    TransistorStuckOpen,
)


@dataclass
class FaultUniverse:
    """The enumerated faults of one netlist, grouped by kind."""

    stuck_at: List[NodeStuckAt] = field(default_factory=list)
    stuck_open: List[TransistorStuckOpen] = field(default_factory=list)
    stuck_on: List[TransistorStuckOn] = field(default_factory=list)
    bridging: List[BridgingFault] = field(default_factory=list)

    def all_faults(self) -> List[Fault]:
        """Every fault, stuck-ats first (the paper's presentation order)."""
        return [*self.stuck_at, *self.stuck_open, *self.stuck_on, *self.bridging]

    def by_kind(self, kind: str) -> Sequence[Fault]:
        """Faults of one category tag."""
        groups = {
            "stuck-at": self.stuck_at,
            "stuck-open": self.stuck_open,
            "stuck-on": self.stuck_on,
            "bridging": self.bridging,
        }
        if kind not in groups:
            raise KeyError(f"unknown fault kind {kind!r}")
        return groups[kind]

    def __len__(self) -> int:
        return len(self.all_faults())


def enumerate_faults(
    netlist: Netlist,
    stuck_at_nodes: Optional[Iterable[str]] = None,
    bridge_nodes: Optional[Iterable[str]] = None,
    bridge_resistance: float = 100.0,
    vdd_node: str = "vdd",
    skip_connected_bridges: bool = True,
) -> FaultUniverse:
    """Enumerate the fault universe of ``netlist``.

    Parameters
    ----------
    stuck_at_nodes:
        Nodes receiving stuck-at-0/1 faults; defaults to all free nodes.
    bridge_nodes:
        Nodes among which all unordered pairs are bridged; defaults to the
        free nodes plus any driven node that is not a supply rail (i.e. the
        clock inputs).
    bridge_resistance:
        Bridge resistance, ohms (paper: 100).
    skip_connected_bridges:
        Drop bridges between nodes already joined by a single transistor
        channel or resistor - layout-adjacent by construction, and a bridge
        in parallel with a conducting channel is not a distinct defect
        class in the paper's inductive fault analysis.
    """
    free = netlist.free_nodes()
    sa_nodes = list(stuck_at_nodes) if stuck_at_nodes is not None else list(free)

    if bridge_nodes is None:
        signals = [
            n for n in netlist.driven_nodes() if n not in (GROUND, vdd_node)
        ]
        bridge_candidates = list(free) + signals
    else:
        bridge_candidates = list(bridge_nodes)

    adjacent = set()
    if skip_connected_bridges:
        for m in netlist.mosfets:
            adjacent.add(frozenset((m.drain, m.source)))
        for r in netlist.resistors:
            adjacent.add(frozenset((r.a, r.b)))

    universe = FaultUniverse()
    for node in sa_nodes:
        universe.stuck_at.append(NodeStuckAt(node, 0, vdd_node=vdd_node))
        universe.stuck_at.append(NodeStuckAt(node, 1, vdd_node=vdd_node))
    for m in netlist.mosfets:
        universe.stuck_open.append(TransistorStuckOpen(m.name))
        universe.stuck_on.append(TransistorStuckOn(m.name))
    for a, b in combinations(sorted(bridge_candidates), 2):
        if frozenset((a, b)) in adjacent:
            continue
        universe.bridging.append(BridgingFault(a, b, resistance=bridge_resistance))
    return universe


#: The faults the paper proposes to rule out at the layout level: the two
#: statically undetectable stuck-opens "can be avoided by implementing the
#: transistors by means of suitable layout schemes" (ref. [11], Koeppe),
#: and critical bridges' "occurrence probability should be reduced by
#: acting at the layout level" (ref. [14], Casimiro et al.).
HARDENED_STUCK_OPENS = ("c", "h")
HARDENED_BRIDGES = (frozenset(("y1", "y2")),)


def apply_layout_hardening(
    universe: FaultUniverse,
    stuck_open_exclusions: Iterable[str] = HARDENED_STUCK_OPENS,
    bridge_exclusions: Iterable[frozenset] = HARDENED_BRIDGES,
) -> FaultUniverse:
    """Fault universe of the layout-hardened sensor.

    Returns a new universe with the hardened-away defect mechanisms
    removed - modelling refs. [11]/[14]: those faults can no longer
    *occur*, so they leave the universe rather than being detected.
    """
    open_skip = set(stuck_open_exclusions)
    bridge_skip = {frozenset(pair) for pair in bridge_exclusions}
    return FaultUniverse(
        stuck_at=list(universe.stuck_at),
        stuck_open=[
            f for f in universe.stuck_open if f.transistor not in open_skip
        ],
        stuck_on=list(universe.stuck_on),
        bridging=[
            f
            for f in universe.bridging
            if frozenset((f.node_a, f.node_b)) not in bridge_skip
        ],
    )
