"""Event-driven gate-level logic simulation.

Substrate for the paper's Sec.-1 motivation: a clock-distribution fault
that delays a flip-flop's sampling "cannot be immediately assimilated to
delay faults inside the combinational part of the circuit, because a
delayed flip-flop's response may be masked by its delayed sampling".  The
simulator models combinational gates with transport delays and edge-
triggered D flip-flops with per-flop clock arrival times, setup/hold
checking, and clk-to-q delay - enough to demonstrate masking quantitatively
and to host the on-line checker demo.
"""

from repro.logicsim.gates import Gate, GateType
from repro.logicsim.flipflop import DFlipFlop, TimingViolation
from repro.logicsim.circuit import LogicCircuit, SimulationTrace
from repro.logicsim.synth import build_pipeline, delay_chain

__all__ = [
    "Gate",
    "GateType",
    "DFlipFlop",
    "TimingViolation",
    "LogicCircuit",
    "SimulationTrace",
    "build_pipeline",
    "delay_chain",
]
