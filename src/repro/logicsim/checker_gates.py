"""Gate-level realisation of the two-rail checker tree.

The behavioural :class:`~repro.testing.checker.TwoRailChecker` compresses
rail pairs functionally; this module builds the same tree out of AND/OR
gates in the event-driven simulator, so the on-line architecture can be
simulated together with the rest of the chip logic (and so the classic
4-gate cell realisation is itself under test).

Cell equations (inputs ``(a0, a1)``, ``(b0, b1)``)::

    z0 = a0 b0 + a1 b1
    z1 = a0 b1 + a1 b0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.logicsim.circuit import LogicCircuit
from repro.logicsim.gates import GateType
from repro.units import ns


@dataclass
class CheckerCircuit:
    """A balanced gate-level two-rail checker over ``n`` input pairs.

    Input nets: ``in{k}_0`` / ``in{k}_1`` for pair ``k``.  Output nets:
    ``out_0`` / ``out_1``.  The output pair is complementary exactly when
    every input pair is.
    """

    n: int
    gate_delay: float = ns(0.2)
    circuit: LogicCircuit = field(init=False)
    depth: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("checker needs at least one input pair")
        self.circuit = LogicCircuit(name=f"checker{self.n}")
        level: List[Tuple[str, str]] = [
            (f"in{k}_0", f"in{k}_1") for k in range(self.n)
        ]
        cell = 0
        depth = 0
        while len(level) > 1:
            nxt: List[Tuple[str, str]] = []
            for i in range(0, len(level) - 1, 2):
                a, b = level[i], level[i + 1]
                z = (f"c{cell}_0", f"c{cell}_1")
                self._add_cell(cell, a, b, z)
                cell += 1
                nxt.append(z)
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
            depth += 1
        self.depth = max(depth, 1)
        final = level[0]
        self.circuit.add_gate(
            "obuf0", GateType.BUF, [final[0]], "out_0", self.gate_delay
        )
        self.circuit.add_gate(
            "obuf1", GateType.BUF, [final[1]], "out_1", self.gate_delay
        )

    def _add_cell(
        self,
        index: int,
        a: Tuple[str, str],
        b: Tuple[str, str],
        z: Tuple[str, str],
    ) -> None:
        d = self.gate_delay
        c = self.circuit
        c.add_gate(f"cell{index}_p00", GateType.AND, [a[0], b[0]],
                   f"cell{index}_t00", d)
        c.add_gate(f"cell{index}_p11", GateType.AND, [a[1], b[1]],
                   f"cell{index}_t11", d)
        c.add_gate(f"cell{index}_or0", GateType.OR,
                   [f"cell{index}_t00", f"cell{index}_t11"], z[0], d)
        c.add_gate(f"cell{index}_p01", GateType.AND, [a[0], b[1]],
                   f"cell{index}_t01", d)
        c.add_gate(f"cell{index}_p10", GateType.AND, [a[1], b[0]],
                   f"cell{index}_t10", d)
        c.add_gate(f"cell{index}_or1", GateType.OR,
                   [f"cell{index}_t01", f"cell{index}_t10"], z[1], d)

    # ------------------------------------------------------------------ #
    def evaluate(self, pairs: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
        """Simulate the tree for static input pairs; returns the output
        pair after settling."""
        if len(pairs) != self.n:
            raise ValueError(f"expected {self.n} pairs, got {len(pairs)}")
        stimuli = {}
        for k, (r0, r1) in enumerate(pairs):
            stimuli[f"in{k}_0"] = [(0.0, int(r0))]
            stimuli[f"in{k}_1"] = [(0.0, int(r1))]
        settle = (2 * self.depth + 4) * self.gate_delay
        trace = self.circuit.simulate(stimuli, clock_edges=[], t_end=settle)
        return trace.final("out_0"), trace.final("out_1")

    def alarm(self, pairs: Sequence[Tuple[int, int]]) -> bool:
        """True when the settled output pair is non-complementary."""
        z0, z1 = self.evaluate(pairs)
        return z0 == z1
