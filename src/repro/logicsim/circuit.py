"""Event-driven simulation of gate + flip-flop circuits."""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logicsim.flipflop import DFlipFlop, TimingViolation
from repro.logicsim.gates import Gate, GateType


@dataclass
class SimulationTrace:
    """Recorded result of one logic simulation.

    ``changes[net]`` is the time-ordered list of ``(time, value)``
    transitions (including the initial value at the start time).
    """

    changes: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)
    violations: List[TimingViolation] = field(default_factory=list)
    sampled: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)

    def value_at(self, net: str, t: float) -> int:
        """Net value at time ``t`` (value set at exactly ``t`` included)."""
        history = self.changes.get(net)
        if not history:
            raise KeyError(f"net {net!r} has no recorded activity")
        times = [time for time, _ in history]
        index = bisect_right(times, t) - 1
        if index < 0:
            return history[0][1]
        return history[index][1]

    def value_before(self, net: str, t: float) -> int:
        """Net value just before ``t`` (changes at exactly ``t`` excluded)."""
        history = self.changes.get(net)
        if not history:
            raise KeyError(f"net {net!r} has no recorded activity")
        times = [time for time, _ in history]
        index = bisect_left(times, t) - 1
        if index < 0:
            return history[0][1]
        return history[index][1]

    def final(self, net: str) -> int:
        """Last recorded value of ``net``."""
        return self.changes[net][-1][1]

    def transition_count(self, net: str) -> int:
        """Number of value changes (excluding the initial value)."""
        return max(0, len(self.changes.get(net, [])) - 1)


class LogicCircuit:
    """A netlist of combinational gates and D flip-flops.

    Nets are identified by name; any net that is not a gate/flop output is
    a primary input and must be driven by the stimuli passed to
    :meth:`simulate`.
    """

    def __init__(self, name: str = "logic") -> None:
        self.name = name
        self.gates: List[Gate] = []
        self.flops: List[DFlipFlop] = []
        self._drivers: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def _claim_output(self, net: str, owner: str) -> None:
        if net in self._drivers:
            raise ValueError(
                f"net {net!r} already driven by {self._drivers[net]!r}"
            )
        self._drivers[net] = owner

    def add_gate(
        self,
        name: str,
        gtype: GateType,
        inputs: Sequence[str],
        output: str,
        delay: float,
    ) -> Gate:
        """Add a combinational gate."""
        gate = Gate(
            name=name, gtype=gtype, inputs=tuple(inputs), output=output, delay=delay
        )
        self._claim_output(output, name)
        self.gates.append(gate)
        return gate

    def add_flop(self, flop: DFlipFlop) -> DFlipFlop:
        """Add a D flip-flop."""
        self._claim_output(flop.q, flop.name)
        self.flops.append(flop)
        return flop

    def nets(self) -> List[str]:
        """All net names (sorted)."""
        names = set(self._drivers)
        for gate in self.gates:
            names.update(gate.inputs)
        for flop in self.flops:
            names.add(flop.d)
        return sorted(names)

    def primary_inputs(self) -> List[str]:
        """Nets not driven by any gate or flop."""
        return [n for n in self.nets() if n not in self._drivers]

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        stimuli: Dict[str, Sequence[Tuple[float, int]]],
        clock_edges: Sequence[float],
        t_end: float,
        initial: Optional[Dict[str, int]] = None,
    ) -> SimulationTrace:
        """Run the circuit.

        Parameters
        ----------
        stimuli:
            Per-net ``(time, value)`` lists for the primary inputs.
        clock_edges:
            Nominal rising-edge times; each flop samples at
            ``edge + clock_offset``.
        t_end:
            Simulation horizon.
        initial:
            Optional initial net values (default 0); flop outputs start at
            the flop's ``init``.
        """
        values: Dict[str, int] = {net: 0 for net in self.nets()}
        if initial:
            values.update(initial)
        for flop in self.flops:
            flop.state = flop.init
            values[flop.q] = flop.init

        # Zero-time combinational settling: iterate gate evaluation to a
        # fixed point so initial values are consistent (e.g. an inverter
        # of a low input starts high instead of emitting a spurious t=0
        # transition).
        for _ in range(len(self.gates) + 1):
            settled = True
            for gate in self.gates:
                out = gate.evaluate([values[n] for n in gate.inputs])
                if values[gate.output] != out:
                    values[gate.output] = out
                    settled = False
            if settled:
                break

        trace = SimulationTrace()
        for net, value in values.items():
            trace.changes[net] = [(0.0, value)]

        fanout: Dict[str, List[Gate]] = {}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)

        heap: List[Tuple[float, int, int, str, int]] = []
        seq = 0
        SET, SAMPLE = 0, 1

        def push(t: float, kind: int, net: str, value: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, kind, seq, net, value))
            seq += 1

        for net, waveform in stimuli.items():
            if net not in values:
                raise KeyError(f"stimulus drives unknown net {net!r}")
            for t, value in waveform:
                push(t, SET, net, value)

        samplers: Dict[str, DFlipFlop] = {f.name: f for f in self.flops}
        for edge in clock_edges:
            for flop in self.flops:
                t_sample = flop.sample_time(edge)
                if 0.0 <= t_sample <= t_end:
                    push(t_sample, SAMPLE, flop.name, 0)

        while heap:
            t, kind, _, target, value = heapq.heappop(heap)
            if t > t_end:
                break
            if kind == SET:
                if values[target] == value:
                    continue
                values[target] = value
                trace.changes[target].append((t, value))
                for gate in fanout.get(target, ()):
                    out = gate.evaluate([values[n] for n in gate.inputs])
                    push(t + gate.delay, SET, gate.output, out)
            else:
                flop = samplers[target]
                # Sample the value present strictly before the edge - the
                # deterministic pessimistic choice for edge-coincident data.
                history = trace.changes[flop.d]
                sampled = history[0][1]
                last_change: Optional[float] = None
                for change_t, change_v in history:
                    if change_t < t:
                        sampled = change_v
                        if change_t > 0.0:
                            last_change = change_t
                    else:
                        break
                violation = flop.check_window(t - flop.clock_offset, last_change)
                if violation is not None:
                    trace.violations.append(violation)
                trace.sampled.setdefault(flop.name, []).append((t, sampled))
                if flop.state != sampled:
                    flop.state = sampled
                    push(t + flop.clk_to_q, SET, flop.q, sampled)

        # Hold violations are visible only after the edge: post-pass.
        for flop in self.flops:
            for t_sample, _ in trace.sampled.get(flop.name, ()):
                for change_t, _ in trace.changes[flop.d]:
                    if t_sample < change_t < t_sample + flop.hold:
                        trace.violations.append(
                            TimingViolation(
                                flop=flop.name,
                                edge_time=t_sample,
                                data_change_time=change_t,
                                kind="hold",
                            )
                        )
        return trace
