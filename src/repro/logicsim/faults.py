"""Gate-level stuck-at fault injection and TSC property verification.

Self-checking design (refs. [6], [7] of the paper) demands that the
checking hardware itself be *totally self-checking* (TSC) with respect to
its fault model:

* **fault-secure** - for every modelled fault and every *code* input, the
  output is either correct or a non-code word (errors never masquerade as
  valid outputs);
* **self-testing** - for every modelled fault there exists a code input
  that produces a non-code output (every fault is eventually exposed by
  normal operation).

:func:`verify_tsc` checks both properties exhaustively for single net
stuck-at faults on a gate-level circuit with rail-pair outputs - used on
the two-rail checker tree that collects the sensors' indications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logicsim.circuit import LogicCircuit


@dataclass(frozen=True)
class NetStuckAt:
    """A net forced to a constant logic value."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"net {self.net} stuck-at-{self.value}"


def evaluate_with_fault(
    circuit: LogicCircuit,
    inputs: Dict[str, int],
    outputs: Sequence[str],
    fault: Optional[NetStuckAt] = None,
    settle: float = 1e-7,
) -> Tuple[int, ...]:
    """Settled output values for static inputs under an optional fault.

    The fault is modelled by overriding the net's initial value and
    re-forcing it against every later driver event: combinational
    circuits settle to the faulty fixed point.
    """
    stimuli = {net: [(0.0, value)] for net, value in inputs.items()}
    initial = dict(inputs)
    if fault is not None:
        initial[fault.net] = fault.value
        # Re-assert the forced value after any driver writes it.
        forced = [(k * settle / 64.0, fault.value) for k in range(64)]
        stimuli[fault.net] = forced
    trace = circuit.simulate(
        stimuli, clock_edges=[], t_end=settle, initial=initial
    )
    return tuple(trace.final(net) for net in outputs)


def enumerate_net_faults(circuit: LogicCircuit) -> List[NetStuckAt]:
    """Single stuck-at faults on every net of the circuit."""
    faults: List[NetStuckAt] = []
    for net in circuit.nets():
        faults.append(NetStuckAt(net, 0))
        faults.append(NetStuckAt(net, 1))
    return faults


@dataclass
class TscReport:
    """Outcome of a TSC verification."""

    fault_secure_violations: List[Tuple[NetStuckAt, Tuple[int, ...]]] = field(
        default_factory=list
    )
    untested_faults: List[NetStuckAt] = field(default_factory=list)
    checked_faults: int = 0

    @property
    def is_fault_secure(self) -> bool:
        """No fault ever produced an incorrect *code* output."""
        return not self.fault_secure_violations

    @property
    def is_self_testing(self) -> bool:
        """Every fault is exposed by at least one code input."""
        return not self.untested_faults

    @property
    def is_tsc(self) -> bool:
        """Totally self-checking: both properties hold."""
        return self.is_fault_secure and self.is_self_testing


def verify_tsc(
    circuit: LogicCircuit,
    code_inputs: Iterable[Dict[str, int]],
    output_pair: Tuple[str, str],
    faults: Optional[Sequence[NetStuckAt]] = None,
) -> TscReport:
    """Exhaustively verify the TSC properties.

    Parameters
    ----------
    circuit:
        Gate-level circuit whose output is the rail pair ``output_pair``.
    code_inputs:
        The input code space (every input assignment that occurs in
        fault-free operation).
    faults:
        Fault list; defaults to all single net stuck-ats except on
        primary inputs (input faults belong to the upstream circuit's
        analysis).
    """
    code_inputs = list(code_inputs)
    if not code_inputs:
        raise ValueError("need at least one code input")
    if faults is None:
        primary = set(circuit.primary_inputs())
        faults = [
            f for f in enumerate_net_faults(circuit) if f.net not in primary
        ]

    golden: Dict[int, Tuple[int, ...]] = {}
    for index, assignment in enumerate(code_inputs):
        golden[index] = evaluate_with_fault(
            circuit, assignment, output_pair, fault=None
        )
        z0, z1 = golden[index]
        if z0 == z1:
            raise ValueError(
                f"fault-free output non-code for input {assignment}; "
                "the given inputs are not all code words"
            )

    report = TscReport()
    for fault in faults:
        report.checked_faults += 1
        exposed = False
        for index, assignment in enumerate(code_inputs):
            observed = evaluate_with_fault(
                circuit, assignment, output_pair, fault=fault
            )
            z0, z1 = observed
            if z0 == z1:
                exposed = True            # non-code output: detected
            elif observed != golden[index]:
                report.fault_secure_violations.append((fault, observed))
                break
        if not exposed:
            report.untested_faults.append(fault)
    return report
