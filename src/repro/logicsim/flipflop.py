"""Edge-triggered D flip-flop with clock-arrival and setup/hold modelling.

The clock pin of each flop is fed by the clock distribution network, so
its *clock arrival offset* relative to the nominal edge is exactly the
quantity the paper's sensing circuit monitors.  A flop samples its D input
at ``edge + clock_offset``; data changing inside the setup/hold window is
recorded as a :class:`TimingViolation` (and the sampled value is the
pre-window one, a deterministic pessimistic choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TimingViolation:
    """A setup or hold violation observed at a flip-flop."""

    flop: str
    edge_time: float
    data_change_time: float
    kind: str  # "setup" or "hold"

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.kind} violation at {self.flop}: data changed "
            f"{abs(self.edge_time - self.data_change_time) * 1e12:.0f} ps "
            f"{'before' if self.data_change_time < self.edge_time else 'after'} "
            "the sampling edge"
        )


@dataclass
class DFlipFlop:
    """A rising-edge D flip-flop.

    Attributes
    ----------
    name:
        Instance name.
    d, q:
        Data input / output net names.
    clock_offset:
        Arrival time of the clock edge at this flop relative to the
        nominal edge (the clock tree insertion delay difference; faults
        change it).
    setup, hold:
        Timing window half-widths, seconds.
    clk_to_q:
        Clock-to-output delay, seconds.
    init:
        Power-up output value.
    """

    name: str
    d: str
    q: str
    clock_offset: float = 0.0
    setup: float = 100e-12
    hold: float = 50e-12
    clk_to_q: float = 200e-12
    init: int = 0
    state: int = field(init=False)

    def __post_init__(self) -> None:
        if self.setup < 0 or self.hold < 0 or self.clk_to_q < 0:
            raise ValueError(f"flop {self.name}: timing values must be >= 0")
        self.state = self.init

    def sample_time(self, nominal_edge: float) -> float:
        """Actual sampling instant for a nominal clock edge."""
        return nominal_edge + self.clock_offset

    def check_window(
        self, nominal_edge: float, last_d_change: Optional[float]
    ) -> Optional[TimingViolation]:
        """Setup/hold check against the last D transition time."""
        if last_d_change is None:
            return None
        t_sample = self.sample_time(nominal_edge)
        if t_sample - self.setup < last_d_change <= t_sample:
            return TimingViolation(
                flop=self.name,
                edge_time=t_sample,
                data_change_time=last_d_change,
                kind="setup",
            )
        if t_sample < last_d_change < t_sample + self.hold:
            return TimingViolation(
                flop=self.name,
                edge_time=t_sample,
                data_change_time=last_d_change,
                kind="hold",
            )
        return None
