"""Combinational gate library with transport delays."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


class GateType(enum.Enum):
    """Supported combinational functions."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"


def _reduce_and(bits: Sequence[int]) -> int:
    return int(all(bits))


def _reduce_or(bits: Sequence[int]) -> int:
    return int(any(bits))


def _reduce_xor(bits: Sequence[int]) -> int:
    return sum(bits) % 2


_EVAL: Dict[GateType, Callable[[Sequence[int]], int]] = {
    GateType.BUF: lambda bits: bits[0],
    GateType.NOT: lambda bits: 1 - bits[0],
    GateType.AND: _reduce_and,
    GateType.OR: _reduce_or,
    GateType.NAND: lambda bits: 1 - _reduce_and(bits),
    GateType.NOR: lambda bits: 1 - _reduce_or(bits),
    GateType.XOR: _reduce_xor,
    GateType.XNOR: lambda bits: 1 - _reduce_xor(bits),
}

_ARITY: Dict[GateType, Tuple[int, int]] = {
    GateType.BUF: (1, 1),
    GateType.NOT: (1, 1),
    GateType.AND: (2, 64),
    GateType.OR: (2, 64),
    GateType.NAND: (2, 64),
    GateType.NOR: (2, 64),
    GateType.XOR: (2, 64),
    GateType.XNOR: (2, 64),
}


@dataclass(frozen=True)
class Gate:
    """A combinational gate instance.

    Attributes
    ----------
    name:
        Unique instance name.
    gtype:
        Function.
    inputs:
        Input net names, in order.
    output:
        Output net name.
    delay:
        Transport delay, seconds.
    """

    name: str
    gtype: GateType
    inputs: Tuple[str, ...]
    output: str
    delay: float

    def __post_init__(self) -> None:
        lo, hi = _ARITY[self.gtype]
        if not lo <= len(self.inputs) <= hi:
            raise ValueError(
                f"gate {self.name}: {self.gtype.value} takes {lo}..{hi} inputs, "
                f"got {len(self.inputs)}"
            )
        if self.delay < 0:
            raise ValueError(f"gate {self.name}: delay must be non-negative")

    def evaluate(self, values: Sequence[int]) -> int:
        """Output value for the given input values (0/1)."""
        return _EVAL[self.gtype](values)
