"""Gate-level scan chain.

A structural realisation of the off-line readout: each scan cell is a D
flip-flop whose input is a 2-to-1 multiplexer (built from gates) selecting
between the *capture* data (an indicator flag) and the previous cell's
output (*shift* mode), controlled by ``scan_en``.  This grounds the
behavioural :class:`~repro.testing.scanpath.ScanPath` in the same logic
substrate used by the pipeline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.logicsim.circuit import LogicCircuit, SimulationTrace
from repro.logicsim.flipflop import DFlipFlop
from repro.logicsim.gates import GateType
from repro.units import ns


@dataclass
class ScanChainCircuit:
    """A gate-level scan chain over ``n`` capture inputs.

    Net conventions: capture inputs ``cap0 .. cap{n-1}``, scan enable
    ``scan_en``, serial input ``scan_in``, serial output ``scan_out``
    (the last cell's Q).
    """

    n: int
    gate_delay: float = ns(0.2)
    clk_to_q: float = ns(0.2)
    circuit: LogicCircuit = field(init=False)
    cells: List[str] = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("scan chain needs at least one cell")
        self.circuit = LogicCircuit(name=f"scan{self.n}")
        self.cells = []
        previous_q = "scan_in"
        for k in range(self.n):
            cap = f"cap{k}"
            d_net = f"sd{k}"
            q_net = f"sq{k}"
            # mux: d = (scan_en AND prev_q) OR (NOT scan_en AND cap)
            self.circuit.add_gate(
                f"muxa{k}", GateType.AND, ["scan_en", previous_q],
                f"ma{k}", self.gate_delay,
            )
            self.circuit.add_gate(
                f"nse{k}", GateType.NOT, ["scan_en"], f"nsen{k}",
                self.gate_delay,
            )
            self.circuit.add_gate(
                f"muxb{k}", GateType.AND, [f"nsen{k}", cap],
                f"mb{k}", self.gate_delay,
            )
            self.circuit.add_gate(
                f"muxo{k}", GateType.OR, [f"ma{k}", f"mb{k}"],
                d_net, self.gate_delay,
            )
            flop = DFlipFlop(
                name=f"sff{k}", d=d_net, q=q_net, clk_to_q=self.clk_to_q
            )
            self.circuit.add_flop(flop)
            self.cells.append(flop.name)
            previous_q = q_net
        self.circuit.add_gate(
            "outbuf", GateType.BUF, [previous_q], "scan_out", self.gate_delay
        )

    # ------------------------------------------------------------------ #
    def run_capture_and_shift(
        self,
        captured: Sequence[int],
        period: float = ns(10.0),
        scan_in_bits: Sequence[int] = (),
    ) -> Tuple[List[int], SimulationTrace]:
        """One capture cycle followed by ``n`` shift cycles.

        ``captured`` are the values on the capture inputs (the indicator
        flags); the returned list is the serial stream observed on
        ``scan_out`` after each shift clock - cell ``n-1`` first (it sits
        next to the output), matching physical scan order.
        """
        if len(captured) != self.n:
            raise ValueError(f"expected {self.n} capture bits")
        total_cycles = 1 + self.n
        edges = [(k + 1) * period for k in range(total_cycles)]

        stimuli: Dict[str, List[Tuple[float, int]]] = {
            "scan_en": [(0.0, 0), (1.5 * period, 1)],
            "scan_in": [(0.0, 0)],
        }
        for k, bit in enumerate(captured):
            stimuli[f"cap{k}"] = [(0.0, int(bit))]
        for k, bit in enumerate(scan_in_bits):
            stimuli["scan_in"].append(((1.5 + k) * period, int(bit)))

        trace = self.circuit.simulate(
            stimuli, edges, t_end=(total_cycles + 1) * period
        )
        stream = []
        for k in range(self.n):
            t_read = (2 + k) * period - 0.1 * period
            stream.append(trace.value_at("scan_out", t_read))
        return stream, trace
