"""Synthetic sequential circuits for the motivation experiments.

:func:`build_pipeline` builds the canonical structure of the paper's
Sec.-1 argument: launch flop -> combinational path -> capture flop ->
combinational path -> downstream flop, with per-flop clock arrival offsets
taken from a clock tree (or set directly to model a clock-path fault).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.logicsim.circuit import LogicCircuit
from repro.logicsim.flipflop import DFlipFlop
from repro.logicsim.gates import GateType


def delay_chain(
    circuit: LogicCircuit,
    source: str,
    sink: str,
    total_delay: float,
    stage_delay: float = 250e-12,
    prefix: str = "chain",
) -> None:
    """Insert a buffer chain realising ``total_delay`` from ``source`` to
    ``sink`` (last buffer absorbs the remainder)."""
    if total_delay <= 0:
        circuit.add_gate(f"{prefix}_buf0", GateType.BUF, [source], sink, 1e-12)
        return
    n_full = max(0, int(total_delay // stage_delay))
    remainder = total_delay - n_full * stage_delay
    current = source
    index = 0
    for index in range(n_full):
        nxt = f"{prefix}_n{index}"
        circuit.add_gate(
            f"{prefix}_buf{index}", GateType.BUF, [current], nxt, stage_delay
        )
        current = nxt
    circuit.add_gate(
        f"{prefix}_buf{n_full}",
        GateType.BUF,
        [current],
        sink,
        remainder if remainder > 0 else 1e-12,
    )


def build_pipeline(
    stage_delays: Sequence[float],
    clock_offsets: Optional[Sequence[float]] = None,
    setup: float = 100e-12,
    hold: float = 50e-12,
    clk_to_q: float = 200e-12,
) -> Tuple[LogicCircuit, List[str]]:
    """Build an N-stage pipeline.

    ``stage_delays[k]`` is the combinational delay between flop ``k`` and
    flop ``k + 1``; there are ``len(stage_delays) + 1`` flops.  The first
    flop's D input is the primary input ``din``.

    Parameters
    ----------
    clock_offsets:
        Clock arrival offset per flop (default all zero).  A clock
        distribution fault is modelled by enlarging one entry.

    Returns
    -------
    (circuit, flop_names)
    """
    n_flops = len(stage_delays) + 1
    if clock_offsets is None:
        clock_offsets = [0.0] * n_flops
    if len(clock_offsets) != n_flops:
        raise ValueError(
            f"need {n_flops} clock offsets for {len(stage_delays)} stages"
        )

    circuit = LogicCircuit(name="pipeline")
    flop_names: List[str] = []
    for k in range(n_flops):
        d_net = "din" if k == 0 else f"d{k}"
        flop = DFlipFlop(
            name=f"ff{k}",
            d=d_net,
            q=f"q{k}",
            clock_offset=clock_offsets[k],
            setup=setup,
            hold=hold,
            clk_to_q=clk_to_q,
        )
        circuit.add_flop(flop)
        flop_names.append(flop.name)
    for k, delay in enumerate(stage_delays):
        delay_chain(
            circuit, f"q{k}", f"d{k + 1}", delay, prefix=f"stage{k}"
        )
    return circuit, flop_names


def at_speed_test(
    circuit: LogicCircuit,
    flop_names: Sequence[str],
    period: float,
    n_cycles: int = 8,
) -> Dict[str, object]:
    """Conventional at-speed (launch-on-capture) delay test.

    A 01-alternating pattern is pushed through the pipeline at full clock
    speed; the test *passes* when every flop captures the value its
    predecessor launched one cycle earlier (i.e. the shifted pattern
    emerges intact) and no setup/hold violation fires.

    Returns a dict with ``passed``, ``violations`` and the per-flop
    sampled sequences - the observables a production tester has.
    """
    edges = [(k + 1) * period for k in range(n_cycles)]
    stimuli = {
        "din": [(0.0, 0)] + [
            ((k + 0.5) * period, k % 2) for k in range(1, n_cycles)
        ]
    }
    trace = circuit.simulate(stimuli, edges, t_end=(n_cycles + 1) * period)

    expected_ok = True
    samples = {name: trace.sampled.get(name, []) for name in flop_names}
    for upstream, downstream in zip(flop_names[:-1], flop_names[1:]):
        up = [v for _, v in samples[upstream]]
        down = [v for _, v in samples[downstream]]
        # Downstream must reproduce upstream shifted by one cycle.
        if up[:-1] != down[1:]:
            expected_ok = False
    return {
        "passed": expected_ok and not trace.violations,
        "violations": list(trace.violations),
        "samples": samples,
        "trace": trace,
    }
