"""VCD (Value Change Dump) export of logic simulation traces.

VCD is the universal waveform interchange format of digital EDA; exporting
:class:`~repro.logicsim.circuit.SimulationTrace` lets any external viewer
(GTKWave etc.) inspect the pipeline/scan/checker simulations produced by
this library.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.logicsim.circuit import SimulationTrace

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for signal ``index`` (base-94 encoding)."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digits: List[str] = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
        if index == 0:
            break
    return "".join(reversed(digits))


def to_vcd(
    trace: SimulationTrace,
    nets: Optional[Iterable[str]] = None,
    timescale: str = "1ps",
    time_unit: float = 1e-12,
    module: str = "repro",
) -> str:
    """Serialise ``trace`` as a VCD document string.

    Parameters
    ----------
    nets:
        Signals to dump (default: every recorded net, sorted).
    timescale / time_unit:
        VCD timescale declaration and its value in seconds; change times
        are quantised to this unit.
    """
    nets = sorted(nets) if nets is not None else sorted(trace.changes)
    for net in nets:
        if net not in trace.changes:
            raise KeyError(f"net {net!r} not present in trace")

    ids: Dict[str, str] = {net: _identifier(k) for k, net in enumerate(nets)}
    lines: List[str] = [
        "$date repro logic simulation $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for net in nets:
        lines.append(f"$var wire 1 {ids[net]} {net} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    events: List[Tuple[int, str, int]] = []
    for net in nets:
        for t, value in trace.changes[net]:
            events.append((int(round(t / time_unit)), net, value))
    events.sort(key=lambda e: e[0])

    lines.append("$dumpvars")
    current: Dict[str, Optional[int]] = {net: None for net in nets}
    last_time: Optional[int] = None
    for tick, net, value in events:
        if current[net] == value:
            continue
        if tick != last_time:
            if last_time is not None or tick > 0:
                lines.append(f"#{tick}")
            last_time = tick
        lines.append(f"{value}{ids[net]}")
        current[net] = value
    lines.append("")
    return "\n".join(lines)


def parse_vcd_values(text: str) -> Dict[str, List[Tuple[int, int]]]:
    """Minimal VCD reader for round-trip testing.

    Returns per-net ``(tick, value)`` change lists.  Supports only the
    single-bit subset :func:`to_vcd` emits.
    """
    names: Dict[str, str] = {}
    changes: Dict[str, List[Tuple[int, int]]] = {}
    tick = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("$var"):
            tokens = line.split()
            names[tokens[3]] = tokens[4]
            changes[tokens[4]] = []
            continue
        if line.startswith("$") or line.startswith("$dumpvars"):
            continue
        if line.startswith("#"):
            tick = int(line[1:])
            continue
        if line[0] in "01":
            value = int(line[0])
            ident = line[1:]
            net = names.get(ident)
            if net is not None:
                changes[net].append((tick, value))
    return changes
