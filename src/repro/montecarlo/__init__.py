"""Monte Carlo analysis of the sensor (Fig. 5 and Tab. 1).

The paper perturbs every circuit parameter and the load capacitance with a
uniform +/-15 % relative variation, draws the two clock slews independently
from U[0.1 ns, 0.4 ns], sweeps the skew, and reports the scatter of
``Vmin`` vs ``tau`` plus the probabilities of losing a true error
(``p_loose``) and raising a false one (``p_false``).
"""

from repro.montecarlo.sampling import MonteCarloSample, sample_population
from repro.montecarlo.parallel import scatter_analysis_parallel
from repro.montecarlo.analysis import (
    ErrorProbabilities,
    ScatterPoint,
    error_probabilities,
    scatter_analysis,
)

__all__ = [
    "MonteCarloSample",
    "sample_population",
    "ScatterPoint",
    "scatter_analysis",
    "ErrorProbabilities",
    "error_probabilities",
    "scatter_analysis_parallel",
]
