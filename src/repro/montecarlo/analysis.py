"""Monte Carlo scatter (Fig. 5) and error probabilities (Tab. 1).

Definitions from Sec. 2 of the paper, relative to the *nominal*
sensitivity ``tau_min`` of the considered load:

* ``p_loose`` - probability of **losing** an error indication:
  ``tau > tau_min`` but the sample's ``Vmin`` stays below the threshold
  (the skew was real, the perturbed sensor missed it);
* ``p_false`` - probability of a **false** error indication:
  ``tau < tau_min`` but ``Vmin`` rises above the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing
from repro.montecarlo.sampling import MonteCarloSample
from repro.units import VTH_INTERPRET


@dataclass(frozen=True)
class ScatterPoint:
    """One (sample, skew) evaluation - a dot of the Fig.-5 scatterplot."""

    skew: float
    vmin: float
    sample_index: int

    def flags_error(self, threshold: float = VTH_INTERPRET) -> bool:
        """Whether this point reads as an error indication."""
        return self.vmin > threshold


def scatter_analysis(
    samples: Sequence[MonteCarloSample],
    skews: Sequence[float],
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    warm_start: Optional[bool] = None,
) -> List[ScatterPoint]:
    """Evaluate ``Vmin`` for every (sample, skew) combination.

    The skews may themselves be randomised by the caller; the paper sweeps
    a deterministic grid per sample.

    Every point goes through the same job evaluator as
    :func:`repro.montecarlo.parallel.scatter_analysis_parallel` (with the
    same ``REPRO_WARM_START``-resolved ``warm_start`` default), so the
    serial and parallel analyses stay bit-identical whichever way the
    warm-start switch is set.
    """
    from repro.montecarlo.parallel import sample_job
    from repro.runtime.jobs import evaluate_job

    points: List[ScatterPoint] = []
    for index, sample in enumerate(samples):
        for tau in skews:
            job = sample_job(
                sample, tau, sizing=sizing, options=options,
                warm_start=warm_start,
            )
            result = evaluate_job(job)
            points.append(
                ScatterPoint(skew=tau, vmin=result.vmin_late, sample_index=index)
            )
    return points


@dataclass(frozen=True)
class ErrorProbabilities:
    """The Tab.-1 row for one nominal load."""

    nominal_load: float
    tau_min: float
    p_loose: float
    p_false: float
    n_loose_trials: int
    n_false_trials: int

    def as_row(self) -> str:
        """Formatted like the paper's table."""
        return (
            f"{self.nominal_load * 1e15:6.0f} fF   "
            f"p_loose = {self.p_loose:.3f}   p_false = {self.p_false:.3f}"
        )


def error_probabilities(
    points: Sequence[ScatterPoint],
    nominal_load: float,
    tau_min: float,
    threshold: float = VTH_INTERPRET,
    guard_band: float = 0.0,
) -> ErrorProbabilities:
    """Classify scatter points into the Tab.-1 probabilities.

    Parameters
    ----------
    points:
        Output of :func:`scatter_analysis`.
    tau_min:
        Nominal sensitivity of the considered load (from
        :func:`repro.core.sensitivity.extract_tau_min`).
    guard_band:
        Half-width of an excluded band around ``tau_min``; points with
        ``|tau - tau_min| <= guard_band`` are ambiguous by definition and
        counted in neither probability.  The paper uses no guard band.
    """
    loose_bad = loose_all = false_bad = false_all = 0
    for point in points:
        if point.skew > tau_min + guard_band:
            loose_all += 1
            if point.vmin < threshold:
                loose_bad += 1
        elif point.skew < tau_min - guard_band:
            false_all += 1
            if point.vmin > threshold:
                false_bad += 1
    return ErrorProbabilities(
        nominal_load=nominal_load,
        tau_min=tau_min,
        p_loose=loose_bad / loose_all if loose_all else float("nan"),
        p_false=false_bad / false_all if false_all else float("nan"),
        n_loose_trials=loose_all,
        n_false_trials=false_all,
    )
