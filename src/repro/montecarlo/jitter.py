"""Clock-jitter sensitivity of the monitoring scheme.

The sensor compares the *same nominal edge* on two branches, so generator
jitter (common to both clocks) cancels; what it sees is the *differential*
jitter the branches accumulate independently (buffer noise, supply noise).
A sensor whose tolerance ``tau_min`` sits too close to the differential
jitter floor latches false alarms during perfectly healthy operation -
another face of the Tab.-1 ``p_false`` and a constraint on the "suitable
tolerance interval" of Sec. 2.

:func:`false_alarm_rate` measures, by multi-cycle electrical simulation,
the probability that a latching indicator flags at least once over an
observation window when the only disturbance is branch jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.engine import TransientOptions, transient
from repro.core.sensing import SkewSensor
from repro.devices.sources import jittery_clock
from repro.units import VTH_INTERPRET, ns


@dataclass(frozen=True)
class JitterTrial:
    """Per-cycle codes of one jittery multi-cycle run."""

    codes: Tuple[Tuple[int, int], ...]

    @property
    def false_alarm(self) -> bool:
        """Whether any cycle produced an error indication."""
        return any(code in ((0, 1), (1, 0)) for code in self.codes)


def simulate_jittery_cycles(
    sensor: SkewSensor,
    rms_jitter: float,
    rng: np.random.Generator,
    cycles: int = 3,
    period: float = ns(20.0),
    slew: float = ns(0.2),
    settle: float = ns(2.0),
    static_skew: float = 0.0,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
) -> JitterTrial:
    """One trial: both branch clocks carry independent per-edge jitter.

    Returns the threshold-interpreted ``(y1, y2)`` code sampled late in
    every clock-high phase.
    """
    phi1 = jittery_clock(
        period=period, slew=slew, n_cycles=cycles,
        rms_jitter=rms_jitter, rng=rng, delay=settle, vdd=sensor.vdd,
    )
    phi2 = jittery_clock(
        period=period, slew=slew, n_cycles=cycles,
        rms_jitter=rms_jitter, rng=rng, delay=settle,
        skew=static_skew, vdd=sensor.vdd,
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)
    result = transient(
        netlist,
        t_stop=settle + cycles * period,
        record=["y1", "y2"],
        initial=sensor.dc_guess(),
        options=options,
    )
    y1 = result.wave("y1")
    y2 = result.wave("y2")
    codes: List[Tuple[int, int]] = []
    for k in range(cycles):
        t_sample = settle + k * period + 0.4 * period
        codes.append(
            (
                1 if y1.at(t_sample) > threshold else 0,
                1 if y2.at(t_sample) > threshold else 0,
            )
        )
    return JitterTrial(codes=tuple(codes))


def false_alarm_rate(
    rms_jitter: float,
    trials: int = 10,
    seed: int = 0,
    sensor: Optional[SkewSensor] = None,
    cycles: int = 3,
    options: Optional[TransientOptions] = None,
) -> float:
    """Fraction of trials in which healthy jittery clocks raise an alarm."""
    sensor = sensor or SkewSensor()
    alarms = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + 7919 * trial)
        outcome = simulate_jittery_cycles(
            sensor, rms_jitter, rng, cycles=cycles, options=options
        )
        alarms += outcome.false_alarm
    return alarms / trials
