"""Process-parallel Monte Carlo evaluation.

The Fig.-5 / Tab.-1 analyses run hundreds of independent transients; they
parallelise perfectly.  :func:`scatter_analysis_parallel` is a drop-in
replacement for :func:`repro.montecarlo.analysis.scatter_analysis` that
routes the (sample, skew) grid through :func:`repro.runtime.run_campaign`:
each grid point becomes a picklable :class:`~repro.runtime.SensorJob`,
results come back in deterministic sample-major order regardless of
worker scheduling, previously computed points are replayed from the
content-addressed cache, and per-job timings land in an optional
:class:`~repro.runtime.Telemetry` accumulator.

Worker-count resolution honours the ``REPRO_MAX_WORKERS`` environment
variable (explicit ``n_workers`` still wins), and the process pool always
receives an explicit ``chunksize`` so large grids do not pay one IPC
round-trip per point.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing
from repro.montecarlo.analysis import ScatterPoint
from repro.montecarlo.sampling import MonteCarloSample
from repro.runtime import SensorJob, Telemetry, resolve_workers, run_campaign


def default_workers() -> int:
    """Worker count: ``REPRO_MAX_WORKERS`` if set, else half the CPUs."""
    return resolve_workers(None)


def sample_job(
    sample: MonteCarloSample,
    skew: float,
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    warm_start: Optional[bool] = None,
) -> SensorJob:
    """The runtime job of one Monte Carlo (sample, skew) grid point.

    ``warm_start=None`` resolves from ``REPRO_WARM_START`` (default on):
    warm jobs skip the post-measurement half period and reuse the
    pre-skew prefix across the skews of one sample (and across reruns,
    through the checkpoint cache tier).
    """
    if warm_start is None:
        from repro.runtime.prefix import warm_start_default

        warm_start = warm_start_default()
    return SensorJob(
        skew=skew,
        load1=sample.load1,
        load2=sample.load2,
        slew1=sample.slew1,
        slew2=sample.slew2,
        process=sample.process,
        sizing=sizing or SensorSizing(),
        options=options,
        warm_start=warm_start,
    )


def scatter_analysis_parallel(
    samples: Sequence[MonteCarloSample],
    skews: Sequence[float],
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    n_workers: Optional[int] = None,
    batch_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    backend: str = "process",
    cache: Any = "default",
    telemetry: Optional[Telemetry] = None,
    on_error: str = "raise",
    checkpoint: Optional[str] = None,
    resume: bool = False,
    warm_start: Optional[bool] = None,
) -> List[ScatterPoint]:
    """Parallel equivalent of :func:`scatter_analysis`.

    Results are returned in the same deterministic order (sample-major,
    then skew) regardless of worker scheduling, and are bit-identical to
    the serial analysis: workers rebuild the sensor from the job payload
    exactly as :func:`~repro.core.response.simulate_sensor` would locally.

    Parameters beyond the original signature expose the runtime layer:
    ``chunksize`` (process-pool chunk size, or samples per stack for the
    batch backend), ``batch_workers`` (shard worker count of the batch
    backend - whole lockstep stacks fan out over this many processes, so
    the SIMD and multicore axes multiply; defaults to
    ``REPRO_BATCH_WORKERS``), ``backend`` (``"process"``, ``"thread"``,
    ``"serial"``, or ``"batch"`` - the lockstep vectorised engine, the
    fastest choice for exactly this workload of many same-topology
    variants), ``cache`` (``None``
    disables result reuse), ``telemetry``, and the robustness knobs of
    :func:`repro.runtime.run_campaign`: ``on_error="collect"`` records a
    NaN-``vmin`` scatter point for a failed grid point instead of
    aborting the whole campaign, and ``checkpoint``/``resume`` journal
    completed grid points so an interrupted Monte Carlo run restarts
    where it died.
    """
    skew_list = [float(tau) for tau in skews]
    jobs = [
        sample_job(sample, tau, sizing=sizing, options=options,
                   warm_start=warm_start)
        for sample in samples
        for tau in skew_list
    ]
    workers = n_workers if n_workers is not None else default_workers()
    if backend in ("thread", "process") and (workers <= 1 or len(jobs) <= 1):
        # Pool backends degenerate to serial without real parallelism;
        # "batch" stays: its speed-up comes from vectorisation, not from
        # worker processes, so it is worth keeping even on one CPU.
        backend = "serial"
    campaign = run_campaign(
        jobs,
        backend=backend,
        max_workers=workers,
        batch_workers=batch_workers,
        chunksize=chunksize,
        cache=cache,
        telemetry=telemetry,
        on_error=on_error,
        checkpoint=checkpoint,
        resume=resume,
    )
    points: List[ScatterPoint] = []
    for flat, result in enumerate(campaign):
        points.append(
            ScatterPoint(
                skew=jobs[flat].skew,
                vmin=getattr(result, "vmin_late", float("nan")),
                sample_index=flat // len(skew_list),
            )
        )
    return points
