"""Process-parallel Monte Carlo evaluation.

The Fig.-5 / Tab.-1 analyses run hundreds of independent transients; they
parallelise perfectly across processes.  :func:`scatter_analysis_parallel`
is a drop-in replacement for
:func:`repro.montecarlo.analysis.scatter_analysis` that fans the
(sample, skew) grid out over a process pool.

Implementation note: workers receive picklable ``(sample, skews, sizing,
options)`` tuples and rebuild their sensors locally; results come back as
plain ``(skew, vmin, sample_index)`` triples, so no simulator state
crosses process boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.analog.engine import TransientOptions
from repro.core.response import simulate_sensor
from repro.core.sensing import SensorSizing, SkewSensor
from repro.montecarlo.analysis import ScatterPoint
from repro.montecarlo.sampling import MonteCarloSample


def _evaluate_sample(
    task: Tuple[int, MonteCarloSample, Tuple[float, ...],
                Optional[SensorSizing], Optional[TransientOptions]],
) -> List[Tuple[float, float, int]]:
    """Worker: all skew points of one Monte Carlo sample."""
    index, sample, skews, sizing, options = task
    sensor = SkewSensor(
        process=sample.process,
        sizing=sizing or SensorSizing(),
        load1=sample.load1,
        load2=sample.load2,
    )
    out: List[Tuple[float, float, int]] = []
    for tau in skews:
        response = simulate_sensor(
            sensor, skew=tau, slew1=sample.slew1, slew2=sample.slew2,
            options=options,
        )
        out.append((tau, response.vmin_late, index))
    return out


def default_workers() -> int:
    """A conservative worker count (half the CPUs, at least one)."""
    return max(1, (os.cpu_count() or 2) // 2)


def scatter_analysis_parallel(
    samples: Sequence[MonteCarloSample],
    skews: Sequence[float],
    sizing: Optional[SensorSizing] = None,
    options: Optional[TransientOptions] = None,
    n_workers: Optional[int] = None,
) -> List[ScatterPoint]:
    """Parallel equivalent of :func:`scatter_analysis`.

    Results are returned in the same deterministic order (sample-major,
    then skew) regardless of worker scheduling.
    """
    tasks = [
        (index, sample, tuple(skews), sizing, options)
        for index, sample in enumerate(samples)
    ]
    n_workers = n_workers or default_workers()
    if n_workers <= 1 or len(tasks) <= 1:
        chunks = [_evaluate_sample(task) for task in tasks]
    else:
        context = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        with context.Pool(processes=min(n_workers, len(tasks))) as pool:
            chunks = pool.map(_evaluate_sample, tasks)
    points: List[ScatterPoint] = []
    for chunk in chunks:
        for tau, vmin, index in chunk:
            points.append(
                ScatterPoint(skew=tau, vmin=vmin, sample_index=index)
            )
    return points
