"""Sampling of Monte Carlo circuit instances.

Each sample fixes: a perturbed process corner (every model-card parameter
uniform +/-r around nominal), two independently perturbed load
capacitances, and two independent clock slews drawn uniformly from the
paper's [0.1 ns, 0.4 ns] interval ("both the input slews and the load have
been considered independent, in order to account for asymmetric
conditions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.devices.process import ProcessParams, nominal_process, perturbed_process
from repro.units import ns


@dataclass(frozen=True)
class MonteCarloSample:
    """One randomised sensor instance."""

    process: ProcessParams
    load1: float
    load2: float
    slew1: float
    slew2: float


def sample_population(
    n: int,
    nominal_load: float,
    rng: Optional[np.random.Generator] = None,
    relative_variation: float = 0.15,
    slew_low: float = ns(0.1),
    slew_high: float = ns(0.4),
    base: Optional[ProcessParams] = None,
    balanced: bool = False,
    seed: Optional[int] = None,
) -> List[MonteCarloSample]:
    """Draw ``n`` samples around ``nominal_load``.

    Parameters
    ----------
    n:
        Population size.
    nominal_load:
        The nominal output load (the paper repeats the analysis for each
        of 80 / 160 / 240 fF).
    seed:
        Convenience for reproducible populations without constructing a
        generator: ``seed=k`` is ``rng=np.random.default_rng(k)``.  An
        explicit ``rng`` wins; with neither, draws are non-deterministic.
    relative_variation:
        Half-width of the uniform relative window (paper: 0.15).
    slew_low, slew_high:
        Clock slew interval (paper: [0.1 ns, 0.4 ns]).
    balanced:
        When False (default, the paper's Monte Carlo setup) the two loads
        and the two slews are drawn *independently*, deliberately modelling
        asymmetric conditions.  When True they are drawn once and shared -
        the situation the scheme's placement criterion 2 engineers
        ("balanced connection to the sensing circuit"): only common-mode
        variation remains and the sensor's differential response is a pure
        skew measurement.
    """
    if n < 1:
        raise ValueError("population size must be >= 1")
    rng = rng or np.random.default_rng(seed)
    base = base or nominal_process()

    samples: List[MonteCarloSample] = []
    for _ in range(n):
        process = perturbed_process(rng, relative_variation, base=base)
        load1 = nominal_load * (
            1.0 + rng.uniform(-relative_variation, relative_variation)
        )
        slew1 = rng.uniform(slew_low, slew_high)
        if balanced:
            load2, slew2 = load1, slew1
        else:
            load2 = nominal_load * (
                1.0 + rng.uniform(-relative_variation, relative_variation)
            )
            slew2 = rng.uniform(slew_low, slew_high)
        samples.append(
            MonteCarloSample(
                process=process,
                load1=load1,
                load2=load2,
                slew1=slew1,
                slew2=slew2,
            )
        )
    return samples
