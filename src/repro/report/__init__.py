"""Plain-text reporting: ASCII waveform/curve rendering and tables.

The reproduction environment is headless, so every figure-like artefact is
rendered as text: waveforms (Figs. 2-3), Vmin-vs-tau curves (Fig. 4),
scatter summaries (Fig. 5) and coverage tables (Sec. 3).
"""

from repro.report.render import ascii_curve, ascii_waveform, format_table
from repro.report.aggregate import build_report, collect_results, write_report
from repro.report.summaries import (
    sensitivity_report,
    testability_report_text,
    waveform_report,
)

__all__ = [
    "ascii_waveform",
    "ascii_curve",
    "format_table",
    "waveform_report",
    "sensitivity_report",
    "testability_report_text",
    "build_report",
    "collect_results",
    "write_report",
]
