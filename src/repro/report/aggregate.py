"""Aggregate benchmark outputs into one reproduction report.

Every benchmark writes its reproduced table/figure to
``benchmarks/out/<name>.txt``; this module stitches them into a single
Markdown document (``REPORT.md``) in the canonical paper order, so the
whole reproduction can be reviewed in one file.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

#: Canonical presentation order and section titles.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("fig2_no_skew", "Fig. 2 - waveforms, no skew"),
    ("fig3_skew", "Fig. 3 - waveforms with skew"),
    ("fig4_sensitivity", "Fig. 4 - Vmin vs skew"),
    ("fig5_montecarlo", "Fig. 5 - Monte Carlo scatter"),
    ("table1_error_probs", "Tab. 1 - p_loose / p_false"),
    ("fig6_scheme", "Fig. 6 - scheme over a clock tree"),
    ("sec3_testability", "Sec. 3 - sensor testability"),
    ("baseline_masking", "Sec. 1 - conventional-testing baseline"),
    ("online_vs_offline", "Sec. 1 - transient faults, on-line vs off-line"),
    ("masking_statistics", "Sec. 1 - masking statistics over random machines"),
    ("electrical_validation", "Validation - Elmore vs electrical"),
    ("tolerance_tuning", "Ablation - tolerance-interval tuning"),
    ("jitter_tolerance", "Ablation - jitter floor"),
    ("ablation_threshold", "Ablation - Vth knob"),
    ("ablation_sizing", "Ablation - sizing knob"),
    ("ablation_fullswing", "Ablation - full-swing keeper"),
    ("overhead_and_corners", "Ablation - overhead and corners"),
    ("dme_vs_htree", "Ablation - tree styles under variation"),
    ("frequency_range", "Ablation - clock-frequency range"),
    ("indicator_testability", "Ablation - indicator testability"),
)


def collect_results(out_dir: str) -> Dict[str, str]:
    """Read every available result block from ``out_dir``."""
    results: Dict[str, str] = {}
    if not os.path.isdir(out_dir):
        return results
    for entry in sorted(os.listdir(out_dir)):
        if entry.endswith(".txt"):
            with open(os.path.join(out_dir, entry)) as handle:
                results[entry[:-4]] = handle.read().rstrip()
    return results


def build_report(
    out_dir: str,
    title: str = "Reproduction report - Testing scheme for IC's clocks "
    "(Favalli & Metra, ED&TC 1997)",
) -> str:
    """Markdown report from the collected benchmark outputs.

    Sections follow :data:`SECTIONS`; results without a canonical slot are
    appended under *Additional results*; missing sections are listed so an
    incomplete benchmark run is visible.
    """
    results = collect_results(out_dir)
    lines: List[str] = [f"# {title}", ""]
    missing: List[str] = []
    used = set()
    for key, heading in SECTIONS:
        if key in results:
            lines += [f"## {heading}", "", "```", results[key], "```", ""]
            used.add(key)
        else:
            missing.append(heading)
    extras = [k for k in results if k not in used]
    if extras:
        lines.append("## Additional results")
        lines.append("")
        for key in extras:
            lines += [f"### {key}", "", "```", results[key], "```", ""]
    if missing:
        lines.append("## Not yet regenerated")
        lines.append("")
        for heading in missing:
            lines.append(f"* {heading}")
        lines.append("")
    return "\n".join(lines)


def write_report(
    out_dir: str, target: Optional[str] = None
) -> str:
    """Build and write the report; returns the target path."""
    target = target or os.path.join(
        os.path.dirname(out_dir.rstrip(os.sep)) or ".", "..", "REPORT.md"
    )
    target = os.path.normpath(target)
    with open(target, "w") as handle:
        handle.write(build_report(out_dir) + "\n")
    return target
