"""Low-level ASCII rendering primitives."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analog.waveform import Waveform


def ascii_waveform(
    wave: Waveform,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    rows: int = 12,
    cols: int = 64,
    v_min: float = 0.0,
    v_max: float = 5.5,
    char: str = "*",
) -> str:
    """Render a waveform as an ASCII raster.

    One column per time step, one ``char`` per column at the quantised
    voltage row.  Rows run top (``v_max``) to bottom (``v_min``).
    """
    if rows < 2 or cols < 2:
        raise ValueError("raster needs at least 2x2 cells")
    t0 = wave.t_start if t0 is None else t0
    t1 = wave.t_stop if t1 is None else t1
    if t1 <= t0:
        raise ValueError("empty time window")
    grid = [[" "] * cols for _ in range(rows)]
    span = v_max - v_min
    for k in range(cols):
        t = t0 + (t1 - t0) * k / (cols - 1)
        fraction = (wave.at(t) - v_min) / span
        row = rows - 1 - int(np.clip(fraction, 0.0, 0.999) * rows)
        grid[row][k] = char
    return "\n".join("".join(line) for line in grid)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    rows: int = 12,
    cols: int = 48,
    marker: str = "o",
    y_line: Optional[float] = None,
) -> str:
    """Scatter/curve raster with an optional horizontal reference line
    (used for the Vth threshold in Fig.-4 style plots)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0 or xs.size != ys.size:
        raise ValueError("xs and ys must be equal-length and non-empty")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    candidates = ys if y_line is None else np.append(ys, y_line)
    y_lo, y_hi = float(candidates.min()), float(candidates.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * cols for _ in range(rows)]

    def cell(x: float, y: float):
        col = int(np.clip((x - x_lo) / (x_hi - x_lo), 0.0, 0.999) * cols)
        row = rows - 1 - int(np.clip((y - y_lo) / (y_hi - y_lo), 0.0, 0.999) * rows)
        return row, col

    if y_line is not None:
        row = cell(x_lo, y_line)[0]
        for k in range(cols):
            grid[row][k] = "-"
    for x, y in zip(xs, ys):
        row, col = cell(x, y)
        grid[row][col] = marker
    return "\n".join("".join(line) for line in grid)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric-looking cells."""
    table: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        table.append([_fmt(cell) for cell in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]

    def line(cells: List[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(table[0]), line(["-" * w for w in widths])]
    out.extend(line(r) for r in table[1:])
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
