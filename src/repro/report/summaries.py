"""Composite text reports built from library results."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analog.engine import TransientOptions
from repro.core.response import SensorResponse
from repro.core.sensitivity import SensitivityCurve
from repro.report.render import ascii_curve, ascii_waveform, format_table
from repro.testing.testability import TestabilityReport
from repro.units import VTH_INTERPRET, to_ns


def waveform_report(
    response: SensorResponse,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Fig.-2/3 style report: numbers plus ASCII rasters of both outputs."""
    lines = [
        f"skew tau = {to_ns(response.skew):+.3f} ns   "
        f"code = {response.code}   "
        f"Vmin(y1) = {response.vmin_y1:.2f} V   "
        f"Vmin(y2) = {response.vmin_y2:.2f} V",
        "",
        "y1:",
        ascii_waveform(response.wave("y1"), t0, t1),
        "",
        "y2:",
        ascii_waveform(response.wave("y2"), t0, t1),
    ]
    return "\n".join(lines)


def sensitivity_report(
    curves: Sequence[SensitivityCurve],
    threshold: float = VTH_INTERPRET,
) -> str:
    """Fig.-4 style report: per-curve table plus an ASCII curve raster for
    the first curve of each load."""
    rows = []
    for curve in curves:
        tau = curve.tau_min
        rows.append(
            (
                f"{curve.load * 1e15:.0f} fF",
                f"{curve.slew * 1e9:.1f} ns",
                f"{to_ns(tau):.3f} ns" if tau is not None else "beyond sweep",
            )
        )
    out: List[str] = [
        format_table(["load", "slew", "tau_min"], rows),
        "",
        f"Vmin vs tau (threshold line at {threshold:.2f} V):",
    ]
    seen = set()
    for curve in curves:
        if curve.load in seen:
            continue
        seen.add(curve.load)
        out.append(f"  C = {curve.load * 1e15:.0f} fF:")
        out.append(
            ascii_curve(
                curve.skews * 1e9, curve.vmins, y_line=threshold
            )
        )
    return "\n".join(out)


def testability_report_text(report: TestabilityReport) -> str:
    """Sec.-3 style coverage table plus escape lists."""
    rows = []
    for kind, n, cov, cov_iddq in report.summary_rows():
        rows.append((kind, n, f"{cov * 100:.0f} %", f"{cov_iddq * 100:.0f} %"))
    out = [format_table(["fault class", "n", "logic", "with IDDQ"], rows), ""]
    for kind in ("stuck-at", "stuck-open", "stuck-on", "bridging"):
        escapes = report.undetected(kind)
        if escapes:
            names = ", ".join(v.fault.describe() for v in escapes)
            out.append(f"{kind} escapes: {names}")
    return "\n".join(out)
