"""Append-only JSONL checkpoint journal for resumable campaigns.

A long Monte Carlo campaign that dies at job 900/1000 - machine reboot,
OOM kill, Ctrl-C - used to restart from zero.  The journal fixes that:
:func:`repro.runtime.run_campaign` appends one JSON line per *completed*
job, keyed by the job's content address (:meth:`SensorJob.key`), and a
re-run with ``resume=True`` loads the journal and skips every finished
job, re-evaluating only the remainder (and any job that previously
failed - errors are never journalled, so they are retried).

Format
------
Line 1 is a header ``{"kind": "header", "format": 2}``; every further
line is ``{"kind": "result", "key": <content address>, "result":
<JobResult payload>}``.  Content-addressed keys make the journal robust
to job reordering and to campaigns that share a subset of jobs.

Since format 2 every entry is *integrity-framed*: the writer embeds a
``_crc`` (CRC-32 of the entry's canonical JSON form, without the frame
fields) and ``_len`` (that form's byte length) into the line.  A torn
final line was always tolerated (the crash may have happened mid-write);
the frame additionally detects *mid-line* corruption - a flipped byte
inside an otherwise parseable line, the failure mode append-after-crash
and bit rot produce - which an unframed reader would silently apply.
Corrupt lines are never applied; readers report them through an
``on_corrupt`` callback and they can be *quarantined* (appended, with
line number and reason, to ``<journal>.quarantine``) so the evidence
survives for a post-mortem instead of vanishing.  Format-1 journals
(no frame fields) still load; their entries are simply unverifiable.

The journal is *not* the result cache: it is a per-campaign artifact at a
user-chosen path, it survives ``REPRO_CACHE_DISABLE=1`` runs, and it
journals cache hits too, so a resume works even against a cold cache.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

logger = logging.getLogger(__name__)

#: Journal format generation, bumped on incompatible layout changes.
#: Format 2 added the ``_crc``/``_len`` integrity frame; format-1 lines
#: are still readable (unverified).
JOURNAL_FORMAT = 2

#: Frame fields embedded into every written entry.
CRC_FIELD = "_crc"
LEN_FIELD = "_len"

#: How much of a corrupt raw line a quarantine record keeps.
QUARANTINE_RAW_LIMIT = 4096


@dataclass
class CorruptEntry:
    """One journal line that failed parsing or integrity checking."""

    lineno: int
    reason: str
    raw: str

    def as_dict(self) -> Dict[str, Any]:
        """JSON form for one quarantine record (raw line truncated)."""
        return {
            "lineno": self.lineno,
            "reason": self.reason,
            "raw": self.raw[:QUARANTINE_RAW_LIMIT],
        }


def _canonical(entry: Dict[str, Any]) -> str:
    """The byte-stable serialisation the CRC frame is computed over."""
    return json.dumps(entry, sort_keys=True)


def frame_entry(entry: Dict[str, Any]) -> str:
    """Serialise ``entry`` with its integrity frame embedded."""
    body = _canonical(entry)
    framed = dict(entry)
    framed[CRC_FIELD] = f"{zlib.crc32(body.encode('utf-8')) & 0xffffffff:08x}"
    framed[LEN_FIELD] = len(body)
    return json.dumps(framed, sort_keys=True)


def unframe_entry(entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Strip and verify the integrity frame of a parsed entry.

    Returns the bare entry, or ``None`` when the frame is present but
    does not match (mid-line corruption).  Entries without a frame
    (format 1) pass through unverified.
    """
    if CRC_FIELD not in entry and LEN_FIELD not in entry:
        return entry
    bare = dict(entry)
    crc = bare.pop(CRC_FIELD, None)
    length = bare.pop(LEN_FIELD, None)
    body = _canonical(bare)
    if length is not None and length != len(body):
        return None
    expected = f"{zlib.crc32(body.encode('utf-8')) & 0xffffffff:08x}"
    if not isinstance(crc, str) or crc != expected:
        return None
    return bare


def quarantine_path(path: Union[str, Path]) -> Path:
    """Where a journal's corrupt lines are preserved."""
    journal = Path(path)
    return journal.with_name(journal.name + ".quarantine")


def write_quarantine(
    path: Union[str, Path], corrupt: List[CorruptEntry]
) -> Optional[Path]:
    """Append ``corrupt`` records to the journal's quarantine file.

    Returns the quarantine path (``None`` when there was nothing to
    write).  Quarantining is itself best-effort: a disk that cannot
    write the quarantine must not turn recovery into a crash.
    """
    if not corrupt:
        return None
    target = quarantine_path(path)
    try:
        with target.open("a", encoding="utf-8") as handle:
            now = time.time()
            for entry in corrupt:
                record = {"at": now, **entry.as_dict()}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError as error:  # pragma: no cover - disk already failing
        logger.warning("could not write quarantine %s: %s", target, error)
        return None
    return target


def iter_entries(
    path: Union[str, Path],
    on_corrupt: Optional[Callable[[CorruptEntry], None]] = None,
):
    """Yield every valid entry dict of the journal at ``path``.

    The generic reader under :func:`load_journal`, shared with the
    service job store (:mod:`repro.service.store`), which journals its
    campaign lifecycle in the same append-only format with its own entry
    kinds.  Lines that fail JSON parsing (torn writes) or whose
    integrity frame does not verify (mid-line corruption) are never
    yielded; each one is reported to ``on_corrupt`` (when given) so the
    caller can quarantine it - with no callback they are skipped, the
    historical behaviour.
    """
    journal = Path(path)
    if not journal.exists():
        return
    with journal.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                if on_corrupt is not None:
                    on_corrupt(CorruptEntry(lineno, f"unparseable: {error}", line))
                continue
            if not isinstance(entry, dict):
                if on_corrupt is not None:
                    on_corrupt(CorruptEntry(lineno, "not a JSON object", line))
                continue
            bare = unframe_entry(entry)
            if bare is None:
                if on_corrupt is not None:
                    on_corrupt(CorruptEntry(lineno, "CRC mismatch", line))
                continue
            yield bare


def load_journal(
    path: Union[str, Path], quarantine: bool = False
) -> Dict[str, Dict[str, Any]]:
    """Completed results recorded in the journal at ``path``.

    Returns a ``key -> JobResult payload`` mapping; an absent file is an
    empty journal.  Corrupt lines (torn writes, CRC mismatches) are
    logged and skipped - the affected jobs are simply re-evaluated - and
    with ``quarantine=True`` they are additionally preserved in
    ``<path>.quarantine`` for a post-mortem.
    """
    corrupt: List[CorruptEntry] = []
    completed: Dict[str, Dict[str, Any]] = {}
    for entry in iter_entries(path, on_corrupt=corrupt.append):
        if entry.get("kind") != "result":
            continue
        key, payload = entry.get("key"), entry.get("result")
        if isinstance(key, str) and isinstance(payload, dict):
            completed[key] = payload
    if corrupt:
        logger.warning(
            "journal %s: skipped %d corrupt line(s); affected jobs will "
            "be re-evaluated", path, len(corrupt),
        )
        if quarantine:
            write_quarantine(path, corrupt)
    return completed


class CheckpointJournal:
    """Append-only writer half of the journal.

    Opened lazily on the first :meth:`record` (so a fully resumed
    campaign does not even touch the file), flushed after every line (a
    crash loses at most the in-flight job).  Use as a context manager or
    call :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path], fresh: bool = False) -> None:
        """``fresh=True`` truncates an existing journal (non-resume runs
        must not inherit stale results for re-submitted jobs)."""
        self.path = Path(path)
        self._handle = None
        if fresh and self.path.exists():
            self.path.unlink()

    def _open(self):
        if self._handle is None:
            if self.path.parent and not self.path.parent.exists():
                os.makedirs(self.path.parent, exist_ok=True)
            new = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf-8")
            if new:
                self._write({"kind": "header", "format": JOURNAL_FORMAT})
        return self._handle

    def _write(self, entry: Dict[str, Any]) -> None:
        self._handle.write(frame_entry(entry) + "\n")
        self._handle.flush()

    def record(self, key: str, payload: Dict[str, Any]) -> None:
        """Journal one completed job result."""
        self.append({"kind": "result", "key": key, "result": payload})

    def append(self, entry: Dict[str, Any]) -> None:
        """Journal one arbitrary entry dict (service lifecycle events,
        future record kinds).  ``entry`` must carry a ``kind``."""
        if "kind" not in entry:
            raise ValueError("journal entries must carry a 'kind'")
        self._open()
        self._write(entry)

    def append_corrupt(self, entry: Dict[str, Any]) -> None:
        """Write a deliberately corrupted copy of ``entry``.

        The ``store.torn`` fault-injection site uses this to plant the
        mid-line corruption replay must detect: the framed line is cut
        mid-JSON, so it either fails parsing or fails its CRC.
        """
        self._open()
        framed = frame_entry(entry)
        self._handle.write(framed[: max(2, int(len(framed) * 0.6))] + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None
