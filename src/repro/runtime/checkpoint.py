"""Append-only JSONL checkpoint journal for resumable campaigns.

A long Monte Carlo campaign that dies at job 900/1000 - machine reboot,
OOM kill, Ctrl-C - used to restart from zero.  The journal fixes that:
:func:`repro.runtime.run_campaign` appends one JSON line per *completed*
job, keyed by the job's content address (:meth:`SensorJob.key`), and a
re-run with ``resume=True`` loads the journal and skips every finished
job, re-evaluating only the remainder (and any job that previously
failed - errors are never journalled, so they are retried).

Format
------
Line 1 is a header ``{"kind": "header", "format": 1}``; every further
line is ``{"kind": "result", "key": <content address>, "result":
<JobResult payload>}``.  Content-addressed keys make the journal robust
to job reordering and to campaigns that share a subset of jobs.  Loading
tolerates a torn final line (the crash may have happened mid-write) and
skips unparseable lines instead of refusing the whole journal.

The journal is *not* the result cache: it is a per-campaign artifact at a
user-chosen path, it survives ``REPRO_CACHE_DISABLE=1`` runs, and it
journals cache hits too, so a resume works even against a cold cache.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Journal format generation, bumped on incompatible layout changes.
JOURNAL_FORMAT = 1


def iter_entries(path: Union[str, Path]):
    """Yield every parseable entry dict of the journal at ``path``.

    The generic reader under :func:`load_journal`, shared with the
    service job store (:mod:`repro.service.store`), which journals its
    campaign lifecycle in the same append-only format with its own entry
    kinds.  Torn or corrupt lines are skipped, like everywhere else.
    """
    journal = Path(path)
    if not journal.exists():
        return
    with journal.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                yield entry


def load_journal(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Completed results recorded in the journal at ``path``.

    Returns a ``key -> JobResult payload`` mapping; an absent file is an
    empty journal.  Corrupt or torn lines (a crash can interrupt a write)
    are skipped silently - the affected jobs are simply re-evaluated.
    """
    completed: Dict[str, Dict[str, Any]] = {}
    for entry in iter_entries(path):
        if entry.get("kind") != "result":
            continue
        key, payload = entry.get("key"), entry.get("result")
        if isinstance(key, str) and isinstance(payload, dict):
            completed[key] = payload
    return completed


class CheckpointJournal:
    """Append-only writer half of the journal.

    Opened lazily on the first :meth:`record` (so a fully resumed
    campaign does not even touch the file), flushed after every line (a
    crash loses at most the in-flight job).  Use as a context manager or
    call :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path], fresh: bool = False) -> None:
        """``fresh=True`` truncates an existing journal (non-resume runs
        must not inherit stale results for re-submitted jobs)."""
        self.path = Path(path)
        self._handle = None
        if fresh and self.path.exists():
            self.path.unlink()

    def _open(self):
        if self._handle is None:
            if self.path.parent and not self.path.parent.exists():
                os.makedirs(self.path.parent, exist_ok=True)
            new = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf-8")
            if new:
                self._write({"kind": "header", "format": JOURNAL_FORMAT})
        return self._handle

    def _write(self, entry: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, key: str, payload: Dict[str, Any]) -> None:
        """Journal one completed job result."""
        self.append({"kind": "result", "key": key, "result": payload})

    def append(self, entry: Dict[str, Any]) -> None:
        """Journal one arbitrary entry dict (service lifecycle events,
        future record kinds).  ``entry`` must carry a ``kind``."""
        if "kind" not in entry:
            raise ValueError("journal entries must carry a 'kind'")
        self._open()
        self._write(entry)

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None
