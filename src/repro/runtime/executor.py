"""Campaign executor: one API over serial, thread and process backends.

:func:`run_campaign` takes a list of jobs and returns their results *in
job order*, regardless of worker scheduling - the property every Fig.-4/5
pipeline relies on.  Around the raw evaluation it layers:

* **cache short-circuiting** - each job is content-addressed
  (:meth:`SensorJob.key`) and looked up before any work is dispatched;
  duplicate jobs inside one campaign are evaluated once;
* **bounded retries** on :class:`~repro.analog.dcop.ConvergenceError`
  (the only failure mode of the deterministic engine that a fresh attempt
  with the same inputs is allowed to re-raise);
* **per-job timeouts** on the thread and process backends (the serial
  backend cannot interrupt a running integration and documents that);
* **telemetry** - per-job wall time, attempts, engine steps, hit/miss
  counters.

Worker-count resolution honours the ``REPRO_MAX_WORKERS`` environment
variable everywhere (CLI, Monte Carlo, benches), and the process backend
always passes an explicit ``chunksize`` to the pool so hundreds of tiny
jobs do not pay one IPC round-trip each.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analog.dcop import ConvergenceError
from repro.runtime.cache import ResultCache, get_cache
from repro.runtime.jobs import JobResult, SensorJob, evaluate_job
from repro.runtime.telemetry import Stopwatch, Telemetry

#: Supported executor backends.
BACKENDS = ("serial", "thread", "process")

#: Environment variable bounding the worker count of every backend.
ENV_MAX_WORKERS = "REPRO_MAX_WORKERS"


class CampaignTimeoutError(TimeoutError):
    """A job exceeded the campaign's per-job timeout."""


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_MAX_WORKERS`` > half the CPUs."""
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get(ENV_MAX_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{ENV_MAX_WORKERS} must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) // 2)


def resolve_chunksize(
    n_jobs: int, workers: int, chunksize: Optional[int] = None
) -> int:
    """Explicit chunksize, or ~4 chunks per worker (at least 1)."""
    if chunksize is not None:
        return max(1, int(chunksize))
    return max(1, n_jobs // (workers * 4))


@dataclass
class CampaignResult:
    """Ordered results plus the telemetry gathered while producing them."""

    results: List[JobResult]
    telemetry: Telemetry

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> JobResult:
        return self.results[index]


def _attempt(
    evaluate: Callable[[SensorJob], JobResult],
    job: SensorJob,
    retries: int,
) -> Tuple[JobResult, int]:
    """Evaluate with bounded retries on ConvergenceError."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return evaluate(job), attempts
        except ConvergenceError:
            if attempts > retries:
                raise


def _worker(
    item: Tuple[int, SensorJob, int, Optional[Callable[[SensorJob], JobResult]]],
) -> Tuple[int, JobResult, float, int]:
    """Pool worker: evaluate one job, measuring wall time in-process."""
    index, job, retries, evaluate = item
    watch = Stopwatch()
    result, attempts = _attempt(evaluate or evaluate_job, job, retries)
    return index, result, watch.elapsed(), attempts


def evaluate_cached(
    job: SensorJob,
    cache: Any = "default",
    telemetry: Optional[Telemetry] = None,
    retries: int = 1,
) -> JobResult:
    """Single-job fast path: cache lookup, evaluate on miss, store.

    Used by the point evaluations (``vmin_for_skew`` and the
    ``extract_tau_min`` bisection) where spinning up a campaign per call
    would be pure overhead.
    """
    if cache == "default":
        cache = get_cache()
    key = job.key() if cache is not None else None
    if key is not None:
        hit = cache.get(key)
        if telemetry is not None:
            telemetry.record_cache(hit is not None)
        if hit is not None:
            result = JobResult.from_payload(hit, cached=True)
            if telemetry is not None:
                telemetry.record_job(
                    "point", wall=0.0, attempts=0, steps=result.steps,
                    cached=True,
                )
            return result
    watch = Stopwatch()
    result, attempts = _attempt(evaluate_job, job, retries)
    if telemetry is not None:
        telemetry.record_job(
            "point", wall=watch.elapsed(), attempts=attempts,
            steps=result.steps, cached=False,
        )
    if key is not None:
        cache.put(key, result.to_payload())
    return result


def run_campaign(
    jobs: Sequence[SensorJob],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    cache: Any = "default",
    telemetry: Optional[Telemetry] = None,
    evaluate: Optional[Callable[[SensorJob], JobResult]] = None,
) -> CampaignResult:
    """Run ``jobs`` and return their results in job order.

    Parameters
    ----------
    jobs:
        Work items; anything exposing ``key()`` and accepted by
        ``evaluate`` (normally :class:`SensorJob`).
    backend:
        ``"serial"`` (in-process loop), ``"thread"``
        (``ThreadPoolExecutor``), or ``"process"`` (``multiprocessing``
        pool, fork context when available, explicit chunksize).
    max_workers:
        Pool width; defaults to ``REPRO_MAX_WORKERS`` or half the CPUs.
    chunksize:
        Process-pool chunk size; defaults to ~4 chunks per worker.
    retries:
        Extra attempts permitted per job on ``ConvergenceError``; the
        error propagates once the budget is exhausted.
    timeout:
        Per-job wall-time bound in seconds, enforced on the thread and
        process backends (raises :class:`CampaignTimeoutError`).  The
        serial backend cannot interrupt a running integration and ignores
        it.
    cache:
        ``"default"`` uses the process-wide :func:`get_cache`; ``None``
        disables caching; any :class:`ResultCache` is used as given.
    telemetry:
        Accumulator to record into; a fresh one is created when omitted
        and returned on the :class:`CampaignResult`.
    evaluate:
        Override the job evaluation (used by tests and future job
        families).  Must be picklable for the process backend.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (use one of {BACKENDS})")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    telemetry = telemetry if telemetry is not None else Telemetry()
    if cache == "default":
        # A custom evaluation must not populate the shared cache under
        # SensorJob keys it did not honour; require an explicit cache.
        cache = None if evaluate is not None else get_cache()

    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)

    # ------------------------------------------------------------------ #
    # Cache pass: satisfy hits, dedupe identical pending jobs.
    # ------------------------------------------------------------------ #
    pending: List[Tuple[int, SensorJob]] = []
    key_owner: Dict[str, int] = {}
    duplicates: Dict[int, int] = {}
    keys: List[Optional[str]] = [None] * len(jobs)
    if cache is not None:
        for index, job in enumerate(jobs):
            key = job.key()
            keys[index] = key
            hit = cache.get(key)
            telemetry.record_cache(hit is not None)
            if hit is not None:
                results[index] = JobResult.from_payload(hit, cached=True)
                telemetry.record_job(
                    f"job[{index}]", wall=0.0, attempts=0,
                    steps=results[index].steps, cached=True,
                )
            elif key in key_owner:
                duplicates[index] = key_owner[key]
            else:
                key_owner[key] = index
                pending.append((index, job))
    else:
        pending = list(enumerate(jobs))

    # ------------------------------------------------------------------ #
    # Dispatch the misses.
    # ------------------------------------------------------------------ #
    items = [(index, job, retries, evaluate) for index, job in pending]
    outcomes: List[Tuple[int, JobResult, float, int]] = []

    if items:
        if backend == "serial" or (len(items) == 1 and timeout is None):
            outcomes = [_worker(item) for item in items]
        elif backend == "thread":
            workers = min(resolve_workers(max_workers), len(items))
            with concurrent.futures.ThreadPoolExecutor(workers) as pool:
                futures = [pool.submit(_worker, item) for item in items]
                try:
                    outcomes = [f.result(timeout=timeout) for f in futures]
                except concurrent.futures.TimeoutError:
                    for f in futures:
                        f.cancel()
                    raise CampaignTimeoutError(
                        f"a campaign job exceeded its {timeout} s timeout"
                    ) from None
        else:  # process
            workers = min(resolve_workers(max_workers), len(items))
            context = (
                multiprocessing.get_context("fork")
                if "fork" in multiprocessing.get_all_start_methods()
                else multiprocessing.get_context()
            )
            with context.Pool(processes=workers) as pool:
                if timeout is None:
                    size = resolve_chunksize(len(items), workers, chunksize)
                    outcomes = pool.map(_worker, items, chunksize=size)
                else:
                    handles = [pool.apply_async(_worker, (item,)) for item in items]
                    try:
                        outcomes = [h.get(timeout=timeout) for h in handles]
                    except multiprocessing.TimeoutError:
                        pool.terminate()
                        raise CampaignTimeoutError(
                            f"a campaign job exceeded its {timeout} s timeout"
                        ) from None

    for index, result, wall, attempts in outcomes:
        results[index] = JobResult(
            skew=result.skew, vmin_y1=result.vmin_y1, vmin_y2=result.vmin_y2,
            code=result.code, steps=result.steps, attempts=attempts,
            cached=False,
        )
        telemetry.record_job(
            f"job[{index}]", wall=wall, attempts=attempts,
            steps=result.steps, cached=False,
        )
        if cache is not None and keys[index] is not None:
            cache.put(keys[index], results[index].to_payload())

    # Duplicate jobs share their owner's (freshly computed) result.
    for index, owner in duplicates.items():
        owned = results[owner]
        assert owned is not None
        results[index] = JobResult(
            skew=owned.skew, vmin_y1=owned.vmin_y1, vmin_y2=owned.vmin_y2,
            code=owned.code, steps=owned.steps, attempts=owned.attempts,
            cached=True,
        )
        telemetry.record_job(
            f"job[{index}]", wall=0.0, attempts=0,
            steps=owned.steps, cached=True,
        )

    assert all(r is not None for r in results)
    return CampaignResult(results=results, telemetry=telemetry)
