"""Campaign executor: one API over serial, thread and process backends.

:func:`run_campaign` takes a list of jobs and returns their results *in
job order*, regardless of worker scheduling - the property every Fig.-4/5
pipeline relies on.  Around the raw evaluation it layers:

* **cache short-circuiting** - each job is content-addressed
  (:meth:`SensorJob.key`) and looked up before any work is dispatched;
  duplicate jobs inside one campaign are evaluated once;
* **bounded retries** on :class:`~repro.errors.ConvergenceError`
  (the only failure mode of the deterministic engine that a fresh attempt
  with the same inputs is allowed to re-raise);
* **per-job timeouts** on the thread and process backends; a timeout
  carries the offending job descriptor, its attempt count and the elapsed
  wall time on the raised :class:`~repro.errors.CampaignTimeoutError`.
  Both backends bound the in-flight window by the worker count, so a
  job's clock starts when it actually starts running.  The process
  backend *kills* a pool stuck on an over-budget job (a hung worker is
  never joined); the thread backend, whose workers cannot be killed,
  abandons the clogged pool and moves on.  The serial backend cannot
  interrupt a running integration and documents that;
* **crash isolation** - a worker process that segfaults, is OOM-killed
  or calls ``os._exit`` breaks only its pool generation: the executor
  rebuilds the pool, re-dispatches the jobs that were *in flight* at the
  break one at a time in isolation (bounded by ``max_redispatch``),
  continues the never-started remainder in parallel on the rebuilt pool,
  and attributes the crash to the poison job as a
  :class:`~repro.errors.WorkerCrashError`;
* **error collection** - ``on_error="collect"`` turns per-job failures
  into :class:`~repro.errors.JobError` records in the result list instead
  of aborting the campaign;
* **streaming progress and cancellation** - ``progress=`` is called once
  per finished job as results land (the campaign service feeds its
  event streams from it) and ``cancel_event=`` aborts the dispatch
  between jobs with a :class:`~repro.errors.CampaignCancelledError`,
  leaving every completed job journalled for a later ``resume=True``;
* **checkpointing** - ``checkpoint=path`` journals every completed job
  to an append-only JSONL (:mod:`repro.runtime.checkpoint`); a re-run
  with ``resume=True`` skips finished jobs entirely;
* **telemetry** - per-job wall time, attempts, engine steps, solver
  escalation rungs, cache hit/miss, re-dispatch and crash counters.

Worker-count resolution honours the ``REPRO_MAX_WORKERS`` environment
variable everywhere (CLI, Monte Carlo, benches), and the process backend
always passes an explicit ``chunksize`` to the pool so hundreds of tiny
jobs do not pay one IPC round-trip each.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

import os

from repro.errors import (
    CampaignCancelledError,
    CampaignTimeoutError,
    ConvergenceError,
    JobError,
    SimulationError,
    WorkerCrashError,
    rebuild_error,
)
from repro.runtime.cache import ResultCache, get_cache
from repro.runtime.checkpoint import CheckpointJournal, load_journal
from repro.runtime.faults import get_injector
from repro.runtime.jobs import JobResult, SensorJob, evaluate_job
from repro.runtime.telemetry import Stopwatch, Telemetry

#: Supported executor backends.
BACKENDS = ("serial", "thread", "process", "batch")

#: Supported failure policies.
ON_ERROR_MODES = ("raise", "collect")

#: Environment variable bounding the worker count of every backend.
ENV_MAX_WORKERS = "REPRO_MAX_WORKERS"

#: Default bound on isolation re-dispatches of a job whose pool died.
DEFAULT_MAX_REDISPATCH = 2


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_MAX_WORKERS`` > half the CPUs."""
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get(ENV_MAX_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{ENV_MAX_WORKERS} must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) // 2)


def resolve_chunksize(
    n_jobs: int, workers: int, chunksize: Optional[int] = None
) -> int:
    """Explicit chunksize, or ~4 chunks per worker (at least 1)."""
    if chunksize is not None:
        return max(1, int(chunksize))
    return max(1, n_jobs // (workers * 4))


@dataclass
class CampaignResult:
    """Ordered results plus the telemetry gathered while producing them.

    Under ``on_error="collect"`` a slot holds a
    :class:`~repro.errors.JobError` instead of a
    :class:`~repro.runtime.jobs.JobResult`; :attr:`errors` filters them
    out and :attr:`ok` is True only for an error-free campaign.
    """

    results: List[Union[JobResult, JobError]]
    telemetry: Telemetry

    @property
    def errors(self) -> List[JobError]:
        """The collected per-job failures, in job order."""
        return [r for r in self.results if isinstance(r, JobError)]

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return not self.errors

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Union[JobResult, JobError]:
        return self.results[index]


# --------------------------------------------------------------------- #
# Worker protocol.  Outcomes are plain picklable tuples:
#   (index, "ok",    result, wall, attempts)
#   (index, "error", error_class_name, message, diagnostics_dict,
#    wall, attempts)
# SimulationError subclasses are serialised in the worker so the pool
# never has to pickle exception instances; anything else (programming
# errors) propagates and fails the campaign regardless of ``on_error``.
# --------------------------------------------------------------------- #

_Item = Tuple[int, SensorJob, int, Optional[Callable[[SensorJob], JobResult]]]
_Outcome = Tuple


def _evaluate_outcome(item: _Item) -> _Outcome:
    """Evaluate one job with bounded ConvergenceError retries.

    The chaos sites ``executor.crash`` / ``executor.hang`` hook in here -
    the single evaluation point shared by the serial, thread and process
    backends - so an injected worker crash takes exactly the outcome
    shape a real pool breakage produces.  (The batch backend dispatches
    through :mod:`repro.batch.dispatch` and is not instrumented; chaos
    runs exercise the scalar backends.)
    """
    index, job, retries, evaluate = item
    injector = get_injector()
    if injector.active:
        if injector.should_fire("executor.hang"):
            time.sleep(injector.hang_s)
        if injector.should_fire("executor.crash"):
            error = WorkerCrashError(
                f"job[{index}] worker crash (injected fault)",
                job=job, dispatches=1,
            )
            return (index, "error", "WorkerCrashError", error.message,
                    error.diagnostics.as_dict(), 0.0, 1)
    func = evaluate or evaluate_job
    watch = Stopwatch()
    attempts = 0
    while True:
        attempts += 1
        try:
            result = func(job)
            return (index, "ok", result, watch.elapsed(), attempts)
        except ConvergenceError as error:
            if attempts > retries:
                return (index, "error", type(error).__name__, error.message,
                        error.diagnostics.as_dict(), watch.elapsed(), attempts)
        except SimulationError as error:
            return (index, "error", type(error).__name__, error.message,
                    error.diagnostics.as_dict(), watch.elapsed(), attempts)


def _worker_chunk(items: List[_Item]) -> List[_Outcome]:
    """Pool worker: evaluate a chunk of jobs, one outcome each."""
    return [_evaluate_outcome(item) for item in items]


def _timeout_outcome(item: _Item, elapsed: float, timeout: float) -> _Outcome:
    """Synthesise the outcome of a job that exceeded its wall budget."""
    index, job, _, _ = item
    error = CampaignTimeoutError(
        f"job[{index}] exceeded its {timeout} s timeout",
        job=job, attempts=1, elapsed=elapsed,
    )
    return (index, "error", "CampaignTimeoutError", error.message,
            error.diagnostics.as_dict(), elapsed, 1)


def _crash_outcome(item: _Item, dispatches: int) -> _Outcome:
    """Synthesise the outcome of a job declared poison after repeatedly
    breaking its worker pool."""
    index, job, _, _ = item
    error = WorkerCrashError(
        f"job[{index}] killed its worker process {dispatches} time(s)",
        job=job, dispatches=dispatches,
    )
    return (index, "error", "WorkerCrashError", error.message,
            error.diagnostics.as_dict(), 0.0, dispatches)


def _mp_context():
    """Fork when available (cheap worker startup), spawn otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _chunked(items: List[_Item], size: int) -> List[List[_Item]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _kill_pool(pool: concurrent.futures.ProcessPoolExecutor) -> None:
    """Tear a process pool down without joining its workers.

    ``shutdown(wait=True)`` joins the worker processes, which blocks
    forever on a worker stuck in an over-budget job - exactly the case
    per-job timeouts exist to bound.  Cancel everything that has not
    started, kill the workers outright, then reap them.
    """
    # ``_processes`` is the executor's pid -> Process map (CPython
    # implementation detail, stable since 3.7); the public API offers no
    # way to reach workers that must be killed rather than joined.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.kill()
    for process in processes:
        process.join(timeout=5.0)


def _check_cancelled(
    cancel_event: Optional[threading.Event],
) -> None:
    """Raise :class:`CampaignCancelledError` when the event is set."""
    if cancel_event is not None and cancel_event.is_set():
        raise CampaignCancelledError("campaign cancelled via cancel_event")


def _dispatch_thread(
    items: List[_Item],
    workers: int,
    chunksize: int,
    timeout: Optional[float],
    on_outcome: Optional[Callable[[_Outcome], None]] = None,
    cancel_event: Optional[threading.Event] = None,
) -> List[_Outcome]:
    """Thread backend: windowed chunk dispatch, per-chunk timeouts.

    At most ``workers`` chunks are in flight at a time on a pool of
    ``workers`` threads, so a submitted chunk starts running immediately
    and its stopwatch measures actual runtime - a queued job never burns
    its budget waiting for a slot.  A thread cannot be interrupted, so
    when a chunk exceeds the budget it gets a synthesised timeout
    outcome and the clogged pool is *abandoned* (``shutdown(wait=False)``):
    innocent in-flight chunks are re-dispatched on a fresh pool.  Their
    abandoned twins run to completion in the old pool with the results
    discarded - job evaluation is pure, so the duplicated work costs
    CPU, not correctness.
    """
    outcomes: List[_Outcome] = []

    def emit(outcome: _Outcome) -> None:
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    remaining = _chunked(items, chunksize)
    while remaining:
        queue = list(remaining)
        remaining = []
        pending: Dict[Any, Tuple[List[_Item], Stopwatch]] = {}
        stuck = False
        pool = concurrent.futures.ThreadPoolExecutor(workers)
        try:
            while (queue or pending) and not stuck:
                _check_cancelled(cancel_event)
                while queue and len(pending) < workers:
                    chunk = queue.pop(0)
                    pending[pool.submit(_worker_chunk, chunk)] = (
                        chunk, Stopwatch(),
                    )
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=_poll_budget(pending, timeout, cancel_event),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    pending.pop(future)
                    for outcome in future.result():
                        emit(outcome)
                if timeout is not None:
                    overdue = [
                        future for future, (_, watch) in pending.items()
                        if watch.elapsed() >= timeout
                    ]
                    for future in overdue:
                        chunk, watch = pending.pop(future)
                        future.cancel()
                        for item in chunk:
                            emit(
                                _timeout_outcome(item, watch.elapsed(), timeout)
                            )
                        stuck = True
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        if stuck:
            pool.shutdown(wait=False, cancel_futures=True)
            for chunk, _ in pending.values():
                queue.insert(0, chunk)
        else:
            pool.shutdown(wait=True)
        remaining = queue
    return outcomes


def _poll_budget(
    pending: Dict[Any, Tuple[List[_Item], "Stopwatch"]],
    timeout: Optional[float],
    cancel_event: Optional[threading.Event] = None,
) -> Optional[float]:
    """How long :func:`concurrent.futures.wait` may block: until the
    earliest pending deadline (never less than 20 ms), or forever when
    no timeout is configured.  A cancellable campaign never blocks more
    than 200 ms so the cancel event is honoured promptly."""
    if timeout is None:
        budget = None
    else:
        budget = max(
            0.02,
            min(timeout - watch.elapsed() for _, watch in pending.values()),
        )
    if cancel_event is not None:
        budget = 0.2 if budget is None else min(budget, 0.2)
    return budget


def _consume_outcomes(payload: Any, emit: Callable[[_Outcome], None]) -> None:
    """Default payload consumer: the worker returned a list of outcomes."""
    for outcome in payload:
        emit(outcome)


def _dispatch_process_chunks(
    chunks: List[List[_Item]],
    workers: int,
    timeout: Optional[float],
    max_redispatch: int,
    telemetry: Telemetry,
    worker: Callable[[List[_Item]], Any] = _worker_chunk,
    consume: Callable[[Any, Callable[[_Outcome], None]], None] = _consume_outcomes,
    isolate: str = "item",
    on_outcome: Optional[Callable[[_Outcome], None]] = None,
    cancel_event: Optional[threading.Event] = None,
) -> List[_Outcome]:
    """Windowed process-pool dispatch over pre-formed chunks.

    The crash-isolation core shared by the scalar process backend
    (chunks of independent jobs, ``worker=_worker_chunk``) and the
    sharded batch backend (whole lockstep stacks,
    ``worker=evaluate_batch_chunk``).  ``worker`` must be a picklable
    module-level callable taking one chunk; ``consume(payload, emit)``
    runs in the parent and turns the worker's return value into emitted
    outcomes (the batch dispatcher folds stack statistics into telemetry
    here).

    Phase 1 runs chunks on a parallel pool with at most ``workers``
    chunks in flight, so a submitted chunk starts immediately and its
    stopwatch measures actual runtime.  Two events tear a pool
    generation down early:

    * **timeout** - the over-budget chunks get synthesised
      :class:`~repro.errors.CampaignTimeoutError` outcomes and the pool
      is *killed* via :func:`_kill_pool`, never joined (a genuinely hung
      worker must not block the campaign); innocent in-flight chunks and
      the un-started remainder continue on a fresh parallel pool;
    * **crash** (``BrokenProcessPool``, including one raised by
      ``submit`` itself) - only the chunks actually in flight when the
      pool broke become *suspects*; the un-started remainder is
      re-dispatched on a rebuilt parallel pool.

    Phase 2 re-runs each suspect alone on a single-worker pool, so a
    poison unit can only break a pool containing itself - that is what
    attributes the crash.  ``isolate`` picks the unit: ``"item"`` splits
    suspect chunks into single jobs (scalar semantics - the crash is
    pinned to one job); ``"chunk"`` keeps the whole chunk together (batch
    semantics - a lockstep stack is indivisible, splitting it would
    change its composition and therefore its bits).  A unit gets at most
    ``max_redispatch`` extra dispatches before it is declared poison and
    every job in it is reported as a
    :class:`~repro.errors.WorkerCrashError` outcome.
    """
    outcomes: List[_Outcome] = []
    suspects: List[List[_Item]] = []
    context = _mp_context()

    def emit(outcome: _Outcome) -> None:
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    # Phase 1: parallel dispatch over rebuildable pool generations.
    remaining = list(chunks)
    while remaining:
        queue = list(remaining)
        remaining = []
        pending: Dict[Any, Tuple[List[_Item], Stopwatch]] = {}
        broke = stuck = False
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )
        try:
            while (queue or pending) and not broke and not stuck:
                _check_cancelled(cancel_event)
                while queue and len(pending) < workers:
                    chunk = queue.pop(0)
                    try:
                        future = pool.submit(worker, chunk)
                    except BrokenProcessPool:
                        # The pool died under us mid-submission; this
                        # chunk never reached a worker, so it is not a
                        # suspect - it reruns on the next generation.
                        queue.insert(0, chunk)
                        broke = True
                        break
                    pending[future] = (chunk, Stopwatch())
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=_poll_budget(pending, timeout, cancel_event),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    chunk, _ = pending.pop(future)
                    try:
                        consume(future.result(), emit)
                    except BrokenProcessPool:
                        suspects.append(chunk)
                        broke = True
                if timeout is not None and not broke:
                    overdue = [
                        future for future, (_, watch) in pending.items()
                        if watch.elapsed() >= timeout
                    ]
                    for future in overdue:
                        chunk, watch = pending.pop(future)
                        for item in chunk:
                            emit(
                                _timeout_outcome(item, watch.elapsed(), timeout)
                            )
                        stuck = True
        except BaseException:
            _kill_pool(pool)
            raise
        if broke:
            telemetry.record_worker_crash()
            for chunk, _ in pending.values():
                suspects.append(chunk)  # in flight when the pool broke
            _kill_pool(pool)
        elif stuck:
            _kill_pool(pool)  # never join a worker running a hung job
            for chunk, _ in pending.values():
                queue.insert(0, chunk)  # innocents rerun on a fresh pool
        else:
            pool.shutdown(wait=True)
        remaining = queue

    # Phase 2: crash isolation.  One suspect unit per single-worker
    # pool; a pool that breaks now indicts exactly the unit it was
    # running.
    if isolate == "item":
        units = [[item] for chunk in suspects for item in chunk]
    else:
        units = [list(chunk) for chunk in suspects]
    dispatches: Dict[int, int] = {}
    queue = list(units)
    if queue:
        telemetry.record_redispatch(sum(len(unit) for unit in queue))
    while queue:
        _check_cancelled(cancel_event)
        unit = queue.pop(0)
        uid = unit[0][0]  # first job index names the unit
        dispatches[uid] = dispatches.get(uid, 0) + 1
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=context
        )
        future = pool.submit(worker, unit)
        watch = Stopwatch()
        try:
            payload = future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            for item in unit:
                emit(_timeout_outcome(item, watch.elapsed(), timeout))
            _kill_pool(pool)
            continue
        except BrokenProcessPool:
            _kill_pool(pool)
            telemetry.record_worker_crash()
            if dispatches[uid] > max_redispatch:
                for item in unit:
                    emit(_crash_outcome(item, dispatches[uid]))
            else:
                telemetry.record_redispatch(len(unit))
                queue.append(unit)
            continue
        except BaseException:
            _kill_pool(pool)
            raise
        pool.shutdown(wait=True)
        consume(payload, emit)
    return outcomes


def _dispatch_process(
    items: List[_Item],
    workers: int,
    chunksize: int,
    timeout: Optional[float],
    max_redispatch: int,
    telemetry: Telemetry,
    on_outcome: Optional[Callable[[_Outcome], None]] = None,
    cancel_event: Optional[threading.Event] = None,
) -> List[_Outcome]:
    """Scalar process backend: per-job timeouts and crash isolation.

    A thin wrapper over :func:`_dispatch_process_chunks` with the scalar
    defaults: jobs are chunked by ``chunksize``, evaluated by
    :func:`_worker_chunk`, and crash isolation re-runs suspects one
    *job* at a time so a poison job is attributed individually.
    """
    return _dispatch_process_chunks(
        _chunked(items, chunksize), workers, timeout, max_redispatch,
        telemetry, on_outcome=on_outcome, cancel_event=cancel_event,
    )


def evaluate_cached(
    job: SensorJob,
    cache: Any = "default",
    telemetry: Optional[Telemetry] = None,
    retries: int = 1,
) -> JobResult:
    """Single-job fast path: cache lookup, evaluate on miss, store.

    Used by the point evaluations (``vmin_for_skew`` and the
    ``extract_tau_min`` bisection) where spinning up a campaign per call
    would be pure overhead.
    """
    if cache == "default":
        cache = get_cache()
    key = job.key() if cache is not None else None
    if key is not None:
        hit = cache.get(key)
        if telemetry is not None:
            telemetry.record_cache(hit is not None)
        if hit is not None:
            result = JobResult.from_payload(hit, cached=True)
            if telemetry is not None:
                telemetry.record_job(
                    "point", wall=0.0, attempts=0, steps=result.steps,
                    cached=True,
                )
            return result
    outcome = _evaluate_outcome((0, job, retries, None))
    if outcome[1] != "ok":
        _, _, name, message, diag, _, _ = outcome
        raise rebuild_error(name, message, diag)
    _, _, result, wall, attempts = outcome
    if telemetry is not None:
        telemetry.record_job(
            "point", wall=wall, attempts=attempts,
            steps=result.steps, cached=False,
            escalations=result.escalation_counts,
            kernel=result.kernel_counts,
        )
        if result.prefix:
            telemetry.record_prefix(dict(result.prefix))
    if key is not None:
        cache.put(key, result.to_payload())
    return result


def run_campaign(
    jobs: Sequence[SensorJob],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    batch_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    cache: Any = "default",
    telemetry: Optional[Telemetry] = None,
    evaluate: Optional[Callable[[SensorJob], JobResult]] = None,
    on_error: str = "raise",
    checkpoint: Optional[str] = None,
    resume: bool = False,
    max_redispatch: int = DEFAULT_MAX_REDISPATCH,
    progress: Optional[Callable[[int, Union[JobResult, JobError]], None]] = None,
    cancel_event: Optional[threading.Event] = None,
) -> CampaignResult:
    """Run ``jobs`` and return their results in job order.

    Parameters
    ----------
    jobs:
        Work items; anything exposing ``key()`` and accepted by
        ``evaluate`` (normally :class:`SensorJob`).
    backend:
        ``"serial"`` (in-process loop), ``"thread"``
        (``ThreadPoolExecutor``), ``"process"``
        (``ProcessPoolExecutor``, fork context when available, explicit
        chunksize, crash isolation), or ``"batch"`` (the vectorized
        lockstep engine of :mod:`repro.batch`: cache-cold jobs are
        stacked into batched MNA tensors and integrated together;
        samples the lockstep engine masks out are re-dispatched to the
        scalar path automatically).  The batch backend evaluates
        :class:`SensorJob` descriptions directly, so it rejects a custom
        ``evaluate``; it also has no per-job ``timeout`` (samples share
        one integration).  ``chunksize`` becomes the per-stack sample
        count, resolved as explicit ``chunksize`` > ``REPRO_BATCH_SIZE``
        > an auto-tuned size derived from the signature-group fan-out,
        the shard worker count and the ``REPRO_BATCH_MEM_BUDGET``
        stack-memory budget (see
        :func:`repro.batch.dispatch.resolve_batch_plan`); whole stacks
        fan out over ``batch_workers`` shard processes through the
        windowed dispatcher.
    max_workers:
        Pool width; defaults to ``REPRO_MAX_WORKERS`` or half the CPUs.
    batch_workers:
        Shard worker count of the batch backend (how many lockstep
        stacks integrate concurrently, each on its own process).
        Resolution: explicit arg > ``REPRO_BATCH_WORKERS`` > the
        ``max_workers`` resolution above.  ``1`` keeps the in-process
        single-worker batch path.  Ignored by the other backends.
    chunksize:
        Process-pool chunk size; defaults to ~4 chunks per worker.
        Forced to 1 when a ``timeout`` is set so timeouts and crashes
        attribute to single jobs.
    retries:
        Extra attempts permitted per job on ``ConvergenceError``; the
        error propagates (or is collected) once the budget is exhausted.
    timeout:
        Per-job wall-time bound in seconds, enforced on the thread and
        process backends.  Raises (or collects) a
        :class:`~repro.errors.CampaignTimeoutError` carrying the job
        descriptor, attempt count and elapsed time.  A process worker
        stuck past the budget is killed; a stuck thread cannot be and is
        abandoned with its pool instead.  The serial backend cannot
        interrupt a running integration and ignores it.
    cache:
        ``"default"`` uses the process-wide :func:`get_cache`; ``None``
        disables caching; any :class:`ResultCache` is used as given.
    telemetry:
        Accumulator to record into; a fresh one is created when omitted
        and returned on the :class:`CampaignResult`.
    evaluate:
        Override the job evaluation (used by tests and future job
        families).  Must be picklable for the process backend.
    on_error:
        ``"raise"`` (default) aborts the campaign on the first job
        failure, exactly like before this option existed;
        ``"collect"`` records each failure as a
        :class:`~repro.errors.JobError` in the result list and finishes
        the remaining jobs.
    checkpoint:
        Path of an append-only JSONL journal recording every completed
        job (see :mod:`repro.runtime.checkpoint`).  With
        ``resume=False`` an existing journal at that path is truncated.
    resume:
        Load the ``checkpoint`` journal first and skip every job already
        completed in it (telemetry counts them as ``resumed``).
    max_redispatch:
        Extra isolated dispatches granted to a job whose worker pool
        died before it is declared poison (process backend, and the
        sharded batch backend where the unit of redispatch is the whole
        lockstep stack).
    progress:
        Optional callback invoked once per finished job as
        ``progress(index, result)`` with the job's position and its
        :class:`JobResult` (or :class:`~repro.errors.JobError` under
        ``on_error="collect"``) - cache hits, journal-resumed jobs and
        deduplicated twins included.  Called from the campaign's own
        thread *as results land* (the service streams these as live
        events); it must be cheap and must not raise.
    cancel_event:
        Optional :class:`threading.Event`; once set, the campaign stops
        dispatching, tears its worker pool down and raises
        :class:`~repro.errors.CampaignCancelledError`.  Every job
        completed before the event fired has already been journalled
        and cached, so a re-run with ``resume=True`` continues from the
        cancellation point.  Checked between jobs - a running serial
        integration is never interrupted mid-step.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (use one of {BACKENDS})")
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error {on_error!r} (use one of {ON_ERROR_MODES})"
        )
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backend == "batch":
        if timeout is not None:
            raise ValueError(
                "the batch backend integrates samples in lockstep and "
                "cannot bound individual jobs; use timeout=None or a "
                "per-job backend"
            )
        if evaluate is not None:
            raise ValueError(
                "the batch backend evaluates SensorJob descriptions "
                "directly and cannot honour a custom evaluate callable"
            )
    if max_redispatch < 0:
        raise ValueError("max_redispatch must be >= 0")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    telemetry = telemetry if telemetry is not None else Telemetry()
    if cache == "default":
        # A custom evaluation must not populate the shared cache under
        # SensorJob keys it did not honour; require an explicit cache.
        cache = None if evaluate is not None else get_cache()

    jobs = list(jobs)
    results: List[Optional[Union[JobResult, JobError]]] = [None] * len(jobs)

    journal: Optional[CheckpointJournal] = None
    journalled: Dict[str, Dict[str, Any]] = {}
    if checkpoint is not None:
        if resume:
            journalled = load_journal(checkpoint)
        journal = CheckpointJournal(checkpoint, fresh=not resume)

    # ------------------------------------------------------------------ #
    # Resume/cache pass: satisfy journal and cache hits, dedupe
    # identical pending jobs.
    # ------------------------------------------------------------------ #
    pending: List[Tuple[int, SensorJob]] = []
    key_owner: Dict[str, int] = {}
    duplicates: Dict[int, int] = {}
    keys: List[Optional[str]] = [None] * len(jobs)
    keyed = cache is not None or checkpoint is not None
    if keyed:
        for index, job in enumerate(jobs):
            key = job.key()
            keys[index] = key
            if key in journalled:
                results[index] = JobResult.from_payload(
                    journalled[key], resumed=True
                )
                telemetry.record_job(
                    f"job[{index}]", wall=0.0, attempts=0,
                    steps=results[index].steps, resumed=True,
                )
                if progress is not None:
                    progress(index, results[index])
                continue
            hit = cache.get(key) if cache is not None else None
            if cache is not None:
                telemetry.record_cache(hit is not None)
            if hit is not None:
                results[index] = JobResult.from_payload(hit, cached=True)
                telemetry.record_job(
                    f"job[{index}]", wall=0.0, attempts=0,
                    steps=results[index].steps, cached=True,
                )
                if journal is not None:
                    journal.record(key, results[index].to_payload())
                if progress is not None:
                    progress(index, results[index])
            elif key in key_owner:
                duplicates[index] = key_owner[key]
            else:
                key_owner[key] = index
                pending.append((index, job))
    else:
        pending = list(enumerate(jobs))

    # ------------------------------------------------------------------ #
    # Dispatch the misses.
    # ------------------------------------------------------------------ #
    items: List[_Item] = [(index, job, retries, evaluate)
                          for index, job in pending]

    def _absorb(outcome: _Outcome) -> None:
        """Fold one outcome in as it lands: results, telemetry, cache,
        journal, then the progress callback.  Dispatchers call this from
        the campaign's own thread, so streamed journalling/progress needs
        no locking."""
        _assimilate(
            outcome, jobs, keys, results, telemetry, cache, journal,
            on_error,
        )
        if progress is not None:
            progress(outcome[0], results[outcome[0]])

    if items and evaluate is None:
        # Prefix planner: integrate each warm group's shared pre-skew
        # prefix once in the parent, so serial/thread evaluations and
        # fork-started workers all inherit the checkpoint from the
        # memory tier instead of racing to rebuild it.
        from repro.runtime.prefix import prepare_prefixes

        prepare_prefixes([job for _, job in pending], telemetry)

    try:
        if items:
            if backend == "batch":
                # Imported lazily: the batch subsystem depends on this
                # module's worker protocol, not the other way round.
                from repro.batch.dispatch import (
                    dispatch_batches, resolve_batch_workers,
                )

                dispatch_batches(
                    items,
                    workers=resolve_batch_workers(batch_workers, max_workers),
                    chunksize=chunksize,
                    telemetry=telemetry,
                    on_outcome=_absorb,
                    cancel_event=cancel_event,
                    max_redispatch=max_redispatch,
                )
            elif backend == "serial" or (len(items) == 1 and timeout is None):
                # Stream outcomes so an abort (raise mode) stops at the
                # failing job and still leaves every job completed
                # before it in the journal.
                for item in items:
                    _check_cancelled(cancel_event)
                    _absorb(_evaluate_outcome(item))
            else:
                workers = min(resolve_workers(max_workers), len(items))
                size = 1 if timeout is not None else resolve_chunksize(
                    len(items), workers, chunksize
                )
                # Outcomes are absorbed as they complete, so a raised
                # failure (or a cancellation) still leaves every job
                # that finished before it journalled and cached.
                if backend == "thread":
                    _dispatch_thread(
                        items, workers, size, timeout,
                        on_outcome=_absorb, cancel_event=cancel_event,
                    )
                else:
                    _dispatch_process(
                        items, workers, size, timeout, max_redispatch,
                        telemetry, on_outcome=_absorb,
                        cancel_event=cancel_event,
                    )
    except CampaignCancelledError as error:
        error.completed = sum(1 for r in results if r is not None)
        raise
    finally:
        if journal is not None:
            journal.close()

    # Duplicate jobs share their owner's (freshly computed) outcome.
    for index, owner in duplicates.items():
        owned = results[owner]
        assert owned is not None
        if isinstance(owned, JobError):
            results[index] = JobError(
                index=index, job=jobs[index], error=owned.error,
                message=owned.message, diagnostics=dict(owned.diagnostics),
                attempts=owned.attempts, wall=0.0,
            )
            telemetry.record_job(
                f"job[{index}]", wall=0.0, attempts=0, steps=0,
                cached=True, error=owned.error,
            )
            if progress is not None:
                progress(index, results[index])
            continue
        results[index] = JobResult(
            skew=owned.skew, vmin_y1=owned.vmin_y1, vmin_y2=owned.vmin_y2,
            code=owned.code, steps=owned.steps, attempts=owned.attempts,
            cached=True, escalations=owned.escalations,
        )
        telemetry.record_job(
            f"job[{index}]", wall=0.0, attempts=0,
            steps=owned.steps, cached=True,
        )
        if progress is not None:
            progress(index, results[index])

    assert all(r is not None for r in results)
    return CampaignResult(results=results, telemetry=telemetry)


def _assimilate(
    outcome: _Outcome,
    jobs: List[SensorJob],
    keys: List[Optional[str]],
    results: List[Optional[Union[JobResult, JobError]]],
    telemetry: Telemetry,
    cache: Optional[ResultCache],
    journal: Optional[CheckpointJournal],
    on_error: str,
) -> None:
    """Fold one worker outcome into results, telemetry, cache, journal.

    In ``raise`` mode an error outcome re-raises the original exception
    type with its diagnostics (and the job descriptor for timeouts and
    crashes) after the journal has been updated for every job that
    finished before it.
    """
    index, status = outcome[0], outcome[1]
    if status == "ok":
        _, _, result, wall, attempts = outcome
        results[index] = JobResult(
            skew=result.skew, vmin_y1=result.vmin_y1, vmin_y2=result.vmin_y2,
            code=result.code, steps=result.steps, attempts=attempts,
            cached=False, escalations=result.escalations,
            kernel=result.kernel, prefix=result.prefix,
        )
        telemetry.record_job(
            f"job[{index}]", wall=wall, attempts=attempts,
            steps=result.steps, cached=False,
            escalations=result.escalation_counts,
            kernel=result.kernel_counts,
        )
        if result.prefix:
            telemetry.record_prefix(dict(result.prefix))
        if cache is not None and keys[index] is not None:
            cache.put(keys[index], results[index].to_payload())
        if journal is not None and keys[index] is not None:
            journal.record(keys[index], results[index].to_payload())
        return

    _, _, name, message, diagnostics, wall, attempts = outcome
    telemetry.record_job(
        f"job[{index}]", wall=wall, attempts=attempts, steps=0,
        cached=False, error=name,
    )
    if on_error == "raise":
        error = rebuild_error(name, message, diagnostics)
        if isinstance(error, (CampaignTimeoutError, WorkerCrashError)):
            error.job = jobs[index]
        raise error
    results[index] = JobError(
        index=index, job=jobs[index], error=name, message=message,
        diagnostics=dict(diagnostics), attempts=attempts, wall=wall,
    )
