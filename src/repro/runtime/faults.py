"""Deterministic fault injection for chaos-testing the campaign stack.

Robustness claims are worthless without a way to *produce* the failure
they claim to survive.  This module is that way: a seeded, env-driven
injector that the store, scheduler, executor and HTTP layers consult at
well-known *sites* before doing the real work.  A site either fires
(the component misbehaves in a controlled, realistic fashion) or it
does not; every decision comes from a per-site deterministic RNG
stream, so a given ``(seed, site)`` pair always produces the same
fire/no-fire sequence - a chaos run is replayable.

Configuration is one environment variable::

    REPRO_FAULTS="store.torn:0.1,executor.crash:0.05,api.slow:0.02"
    REPRO_FAULTS_SEED=1234

Each clause is ``site:probability`` with an optional third field
bounding the total number of fires (``executor.crash:1.0:1`` = fire on
exactly the first check, then never again - the deterministic form the
chaos tests use).  Tests can bypass the environment entirely with
:func:`set_injector` or the :func:`inject` context manager.

Registered sites (the component that checks them, and what firing does):

=====================  ==================================================
``store.write``        ``JobStore`` journal append raises
                       :class:`~repro.errors.InjectedFaultError` (disk
                       write / fsync failure; the store retries).
``store.torn``         A corrupted (CRC-failing, truncated) copy of the
                       entry is written *before* the real one - the
                       mid-line corruption the self-healing replay must
                       quarantine.
``store.replace``      The atomic ``os.replace`` publishing
                       ``result.json`` raises (the store retries).
``scheduler.worker``   A scheduler slot raises before executing its
                       campaign (the worker loop must survive and fail
                       the campaign with a structured reason).
``scheduler.stuck``    The campaign hangs without heartbeats until its
                       cancel event fires (what the watchdog exists to
                       detect).
``executor.crash``     Job evaluation reports a
                       :class:`~repro.errors.WorkerCrashError` (the
                       scheduler requeues the campaign for resume).
``executor.hang``      Job evaluation sleeps ``REPRO_FAULTS_HANG_S``
                       (default 0.25 s) before running - exercises
                       per-job timeout machinery.
``api.drop``           The HTTP handler shuts the connection down
                       before answering (clients must retry).
``api.slow``           The HTTP handler sleeps ``REPRO_FAULTS_SLOW_S``
                       (default 0.05 s) before answering.
=====================  ==================================================

The null injector (no sites) is a singleton whose :meth:`~FaultInjector.
should_fire` returns immediately, so production paths pay one dict
lookup when chaos is off.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Union

#: Environment variable carrying the ``site:prob[:max]`` clauses.
ENV_FAULTS = "REPRO_FAULTS"

#: Environment variable seeding the per-site decision streams.
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"

#: Environment variables tuning the duration-type faults.
ENV_HANG_S = "REPRO_FAULTS_HANG_S"
ENV_SLOW_S = "REPRO_FAULTS_SLOW_S"

#: Every site a shipped component consults, for validation and docs.
KNOWN_SITES = (
    "store.write",
    "store.torn",
    "store.replace",
    "scheduler.worker",
    "scheduler.stuck",
    "executor.crash",
    "executor.hang",
    "api.drop",
    "api.slow",
)


@dataclass
class FaultSite:
    """One configured injection point."""

    probability: float
    #: Total fires allowed (``None`` = unbounded).
    max_fires: Optional[int] = None


def parse_faults(text: str) -> Dict[str, FaultSite]:
    """Parse ``"site:prob[,site:prob[:max],...]"`` into site configs.

    Unknown sites are accepted (tests register ad-hoc ones); malformed
    clauses raise ``ValueError`` so a typo in ``REPRO_FAULTS`` fails
    loudly instead of silently disabling chaos.
    """
    sites: Dict[str, FaultSite] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad {ENV_FAULTS} clause {clause!r} "
                "(expected site:probability[:max_fires])"
            )
        site = parts[0].strip()
        try:
            probability = float(parts[1])
        except ValueError:
            raise ValueError(
                f"bad probability in {ENV_FAULTS} clause {clause!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability out of [0, 1] in {ENV_FAULTS} clause {clause!r}"
            )
        max_fires: Optional[int] = None
        if len(parts) == 3:
            try:
                max_fires = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"bad max_fires in {ENV_FAULTS} clause {clause!r}"
                ) from None
            if max_fires < 0:
                raise ValueError(
                    f"max_fires must be >= 0 in {ENV_FAULTS} clause {clause!r}"
                )
        sites[site] = FaultSite(probability=probability, max_fires=max_fires)
    return sites


class FaultInjector:
    """Seeded fault decisions, one deterministic RNG stream per site.

    Thread-safe: the store, scheduler slots and HTTP handler threads all
    consult the same process-wide injector.  Decisions at *different*
    sites come from independent streams, so adding a new injection point
    (or a different thread interleaving across sites) never perturbs the
    fire pattern of an existing one.
    """

    def __init__(
        self,
        sites: Union[str, Dict[str, FaultSite], None] = None,
        seed: int = 0,
        hang_s: float = 0.25,
        slow_s: float = 0.05,
    ) -> None:
        if isinstance(sites, str):
            sites = parse_faults(sites)
        self.sites: Dict[str, FaultSite] = dict(sites or {})
        self.seed = int(seed)
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        self._checked: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    @property
    def active(self) -> bool:
        """True when at least one site is configured."""
        return bool(self.sites)

    def should_fire(self, site: str) -> bool:
        """One decision for ``site``; False for unconfigured sites."""
        config = self.sites.get(site)
        if config is None:
            return False
        with self._lock:
            self._checked[site] = self._checked.get(site, 0) + 1
            fired = self._fired.get(site, 0)
            if config.max_fires is not None and fired >= config.max_fires:
                return False
            rng = self._rngs.get(site)
            if rng is None:
                # String seeds hash via SHA-512: stable across runs,
                # processes and PYTHONHASHSEED values.
                rng = random.Random(f"{self.seed}:{site}")
                self._rngs[site] = rng
            fire = rng.random() < config.probability
            if fire:
                self._fired[site] = fired + 1
            return fire

    def reset_streams(self) -> None:
        """Restart every site's decision stream (fresh, same seed)."""
        with self._lock:
            self._rngs.clear()
            self._checked.clear()
            self._fired.clear()

    def stats(self) -> Dict[str, Any]:
        """Checked/fired tallies per site (``/metrics`` payload half)."""
        with self._lock:
            return {
                "seed": self.seed,
                "sites": {
                    site: {
                        "probability": config.probability,
                        "max_fires": config.max_fires,
                        "checked": self._checked.get(site, 0),
                        "fired": self._fired.get(site, 0),
                    }
                    for site, config in sorted(self.sites.items())
                },
            }


#: The do-nothing injector served while chaos is off.
NULL_INJECTOR = FaultInjector()

_injector: Optional[FaultInjector] = None
_injector_lock = threading.Lock()


def _from_env() -> FaultInjector:
    text = os.environ.get(ENV_FAULTS, "").strip()
    if not text:
        return NULL_INJECTOR
    seed = int(os.environ.get(ENV_FAULTS_SEED, "0") or "0")
    hang_s = float(os.environ.get(ENV_HANG_S, "0.25") or "0.25")
    slow_s = float(os.environ.get(ENV_SLOW_S, "0.05") or "0.05")
    return FaultInjector(text, seed=seed, hang_s=hang_s, slow_s=slow_s)


def get_injector() -> FaultInjector:
    """The process-wide injector (built from the environment once)."""
    global _injector
    if _injector is None:
        with _injector_lock:
            if _injector is None:
                _injector = _from_env()
    return _injector


def set_injector(injector: Optional[FaultInjector]) -> None:
    """Install ``injector`` process-wide (``None`` = re-read the env on
    the next :func:`get_injector`)."""
    global _injector
    with _injector_lock:
        _injector = injector


def reset_injector() -> FaultInjector:
    """Rebuild the injector from the environment, with fresh streams.

    The chaos test suite calls this before every test so each test's
    fire pattern depends only on ``(seed, site)`` - never on how many
    decisions earlier tests happened to draw.
    """
    set_injector(None)
    return get_injector()


@contextmanager
def inject(
    sites: Union[str, Dict[str, FaultSite]],
    seed: int = 0,
    **kwargs: Any,
) -> Iterator[FaultInjector]:
    """Temporarily install a :class:`FaultInjector` (tests)."""
    injector = FaultInjector(sites, seed=seed, **kwargs)
    previous = get_injector()
    set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)
