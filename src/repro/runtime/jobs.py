"""Campaign job descriptions and their evaluation.

A :class:`SensorJob` is a *complete, picklable, hashable* description of
one sensor transient: everything :func:`repro.core.response.simulate_sensor`
needs, and nothing else.  Jobs are the unit of work of the campaign
executor, the unit of addressing of the result cache, and the payload that
crosses process boundaries - worker processes rebuild the sensor locally
from the job, exactly like the original ``repro.montecarlo.parallel``
workers did.

The evaluation result is the compact :class:`JobResult` (scalars only, no
waveforms) so that results are cheap to pickle, JSON-serialisable for the
disk cache, and bit-exactly reproducible across serial, thread and process
backends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.analog.engine import TransientOptions
from repro.core.response import simulate_sensor
from repro.core.sensing import SensorSizing, SkewSensor
from repro.devices.process import ProcessParams, nominal_process
from repro.runtime.cache import stable_key
from repro.units import VTH_INTERPRET, ns

#: Namespace folded into every job key, so sensor-response entries can
#: never collide with a future job family (sweeps, IDDQ campaigns, ...).
JOB_NAMESPACE = "sensor-response"


@dataclass(frozen=True)
class SensorJob:
    """One sensor transient, fully specified.

    ``process=None`` means the nominal corner; it is resolved before both
    keying and evaluation, so ``None`` and ``nominal_process()`` address
    the same cache entry.
    """

    skew: float
    load1: float = 160e-15
    load2: float = 160e-15
    slew1: float = ns(0.2)
    slew2: float = ns(0.2)
    process: Optional[ProcessParams] = None
    sizing: SensorSizing = SensorSizing()
    period: float = ns(20.0)
    settle: float = ns(2.0)
    threshold: float = VTH_INTERPRET
    full_swing: bool = False
    parasitics: bool = True
    options: Optional[TransientOptions] = None
    #: Evaluate through the prefix warm-start path (fork the shared
    #: pre-skew waveform from a cached checkpoint and integrate only the
    #: measurement suffix).  Part of the job identity: warm results live
    #: under their own cache keys, so disabling warm start reproduces the
    #: cold results bit-identically.  The raw default is off; the factory
    #: helpers (:func:`sensitivity_job`, Monte Carlo ``sample_job``)
    #: resolve their default from ``REPRO_WARM_START``.
    warm_start: bool = False

    def resolved(self) -> "SensorJob":
        """A copy with every default made explicit (process, options)."""
        job = self
        if job.process is None:
            job = replace(job, process=nominal_process())
        if job.options is None:
            job = replace(job, options=TransientOptions())
        return job

    def key(self) -> str:
        """Content-address of this job's result (engine-version aware)."""
        return stable_key(self.resolved(), namespace=JOB_NAMESPACE)


@dataclass(frozen=True)
class JobResult:
    """Compact outcome of one :class:`SensorJob`.

    Mirrors the scalar fields of
    :class:`repro.core.response.SensorResponse`; ``steps`` is the number
    of accepted integration points (the telemetry's engine-step
    statistic), zero when the value was replayed from cache.
    ``escalations`` is the solver-ladder tally of the underlying
    transient (sorted ``(rung, count)`` pairs - a tuple so the record
    stays hashable), and ``resumed`` marks values replayed from a
    checkpoint journal rather than computed.  ``kernel`` is the
    hot-loop observability record of the transient
    (:meth:`repro.analog.kernels.KernelStats.as_dict` as sorted pairs);
    it describes *this run's* work, so it is deliberately not part of
    the cache payload - cached and resumed replays carry an empty tally,
    exactly like ``steps``.
    """

    skew: float
    vmin_y1: float
    vmin_y2: float
    code: Tuple[int, int]
    steps: int = 0
    attempts: int = 1
    cached: bool = False
    escalations: Tuple[Tuple[str, int], ...] = ()
    resumed: bool = False
    kernel: Tuple[Tuple[str, float], ...] = ()
    #: Prefix warm-start accounting of *this run* (sorted pairs: hits,
    #: builds, build_s, saved_s).  Run-local like ``kernel``: not part of
    #: the cache payload, so cached/resumed replays carry an empty tuple.
    prefix: Tuple[Tuple[str, float], ...] = ()

    @property
    def ok(self) -> bool:
        """Always ``True``; mirrors :attr:`repro.errors.JobError.ok` so
        mixed ``on_error="collect"`` result lists filter uniformly."""
        return True

    @property
    def escalation_counts(self) -> Dict[str, int]:
        """The ladder tally as a plain dict."""
        return dict(self.escalations)

    @property
    def kernel_counts(self) -> Dict[str, float]:
        """The hot-loop kernel tally as a plain dict."""
        return dict(self.kernel)

    @property
    def vmin_late(self) -> float:
        """``Vmin`` of the output tied to the later clock edge."""
        return self.vmin_y2 if self.skew >= 0 else self.vmin_y1

    @property
    def error_detected(self) -> bool:
        """True when the code pair flags an abnormal skew."""
        return self.code != (0, 0)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable form for the disk cache.

        Floats survive ``json`` round-trips bit-exactly (``repr`` based),
        so cached replays are identical to fresh computations.
        """
        return {
            "skew": self.skew,
            "vmin_y1": self.vmin_y1,
            "vmin_y2": self.vmin_y2,
            "code": list(self.code),
            "steps": self.steps,
            "escalations": {rung: count for rung, count in self.escalations},
        }

    @staticmethod
    def from_payload(
        payload: Dict[str, Any], cached: bool = False, resumed: bool = False
    ) -> "JobResult":
        """Rebuild a result from its :meth:`to_payload` dict."""
        escalations = payload.get("escalations", {})
        return JobResult(
            skew=float(payload["skew"]),
            vmin_y1=float(payload["vmin_y1"]),
            vmin_y2=float(payload["vmin_y2"]),
            code=tuple(int(c) for c in payload["code"]),
            steps=int(payload.get("steps", 0)),
            cached=cached,
            escalations=tuple(sorted(
                (str(rung), int(count)) for rung, count in escalations.items()
            )),
            resumed=resumed,
        )


def evaluate_job(job: SensorJob) -> JobResult:
    """Run the transient described by ``job`` (no caching, no retries).

    Jobs with ``warm_start=True`` route through the prefix warm-start
    evaluator (checkpointed pre-skew prefix + forked measurement
    suffix); everything else takes the cold full-horizon path below.
    """
    resolved = job.resolved()
    if resolved.warm_start:
        from repro.runtime.prefix import evaluate_job_warm

        return evaluate_job_warm(resolved)
    sensor = SkewSensor(
        process=resolved.process,
        sizing=resolved.sizing,
        load1=resolved.load1,
        load2=resolved.load2,
        full_swing=resolved.full_swing,
        parasitics=resolved.parasitics,
    )
    response = simulate_sensor(
        sensor,
        skew=resolved.skew,
        slew1=resolved.slew1,
        slew2=resolved.slew2,
        period=resolved.period,
        settle=resolved.settle,
        threshold=resolved.threshold,
        options=resolved.options,
    )
    return JobResult(
        skew=resolved.skew,
        vmin_y1=response.vmin_y1,
        vmin_y2=response.vmin_y2,
        code=response.code,
        steps=len(response.result),
        escalations=tuple(sorted(response.result.escalations.items())),
        kernel=tuple(sorted(response.result.kernel_stats.items())),
    )


def sensitivity_job(
    load: float,
    slew: float,
    skew: float,
    process: Optional[ProcessParams] = None,
    sizing: Optional[SensorSizing] = None,
    threshold: float = VTH_INTERPRET,
    options: Optional[TransientOptions] = None,
    slew2: Optional[float] = None,
    load2: Optional[float] = None,
    warm_start: Optional[bool] = None,
) -> SensorJob:
    """Job for one Fig.-4 operating point (symmetric defaults).

    Mirrors the parameter conventions of
    :func:`repro.core.sensitivity.vmin_for_skew`.  ``warm_start=None``
    resolves from the ``REPRO_WARM_START`` environment switch (default
    on); pass ``False`` to force the cold full-horizon evaluation.
    """
    if warm_start is None:
        from repro.runtime.prefix import warm_start_default

        warm_start = warm_start_default()
    return SensorJob(
        skew=skew,
        load1=load,
        load2=load if load2 is None else load2,
        slew1=slew,
        slew2=slew if slew2 is None else slew2,
        process=process,
        sizing=sizing or SensorSizing(),
        threshold=threshold,
        options=options,
        warm_start=warm_start,
    )
