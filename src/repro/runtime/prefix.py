"""Prefix-shared warm-start evaluation of sensor jobs.

Every Fig. 4 / Table 1 data point re-integrates the sensing circuit from
``t = 0``, yet all samples sharing (load, slew-independent physics) are
*identical* until the skew-shifted clock edges: both clocks sit flat at
0 V over ``[0, settle + min(0, tau))``, so the only thing the skew (and
the slews, and the period) change about the early waveform is *when* it
ends.  This module exploits that:

1. **Fork time.**  Each job forks at ``fork = settle + min(0, tau) -
   PREFIX_GUARD``.  The guard keeps the checkpoint strictly before the
   first clock corner, so the prefix sees only flat sources; making the
   fork a *per-job deterministic* function (rather than a per-campaign
   ``min`` over the submitted taus) is what lets sequential bisection
   probes - which arrive one at a time - share one cached prefix: every
   job with ``tau >= 0`` forks at exactly ``settle - PREFIX_GUARD``.

2. **Prefix key.**  The checkpoint is content-addressed on the
   skew-invariant job fields (loads, process, sizing, topology switches,
   engine options) plus the fork time - everything except ``tau``, the
   slews, the period and the interpretation threshold, none of which can
   influence the circuit before ``fork`` (the clocks' first breakpoints
   all lie at ``settle + min(0, tau)`` or later).  Keys live in the
   checkpoint tier of :mod:`repro.runtime.cache`, namespaced by the same
   physics fingerprint as results.

3. **Warm evaluation.**  A warm job integrates (or fetches) the prefix
   once with ``checkpoint_at=fork``, then resumes from the checkpoint
   over the *measurement suffix only* ``[fork, fall_start]`` - every
   window of :func:`repro.core.response.measurement_windows` lies inside
   it, so the post-measurement half period (about half of a cold run's
   accepted steps) is never integrated at all.  The restart uses the
   engine's backward-Euler-after-breakpoint rule, so the forked run is a
   legal grid continuation of the prefix.

Warm results are keyed (and cached) under ``SensorJob.warm_start=True``
identities, disjoint from cold results: disabling warm start (pass
``warm_start=False`` or set ``REPRO_WARM_START=0``) reproduces the
pre-change behaviour bit-identically.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analog.engine import TransientCheckpoint, transient
from repro.core.response import measurement_windows
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.runtime.cache import get_checkpoint_cache, stable_key
from repro.runtime.jobs import JobResult, SensorJob
from repro.runtime.telemetry import Stopwatch, Telemetry

#: Namespace of checkpoint-tier keys (never collides with job results).
PREFIX_NAMESPACE = "transient-prefix"

#: Seconds the fork is kept *before* the earliest clock corner.  The
#: guard absorbs the engine's breakpoint landing tolerance (a few ULPs at
#: the horizon scale, ~1e-23 s) with orders of magnitude to spare and
#: guarantees the checkpoint state is taken while every source is still
#: flat; 50 ps is also large enough that the post-restart dt ramp
#: (dt_start = 0.1 ps, growing 2x per accepted step) re-reaches the
#: pre-edge cruise step before the first clock corner, so the forked
#: grid meets the edge the same way a cold run does.
PREFIX_GUARD = 50e-12

#: Environment switch for the factory-level warm-start default.
ENV_WARM_START = "REPRO_WARM_START"

#: Don't bother forking when the prefix is shorter than this many
#: dt_start ramps - the checkpoint round-trip would cost more than the
#: handful of steps it saves.
_MIN_PREFIX_STEPS = 16.0


def warm_start_default() -> bool:
    """Resolve the warm-start default from ``REPRO_WARM_START``.

    Warm start is on unless the variable is set to a falsy string
    (``0`` / ``false`` / ``no`` / ``off``).
    """
    value = os.environ.get(ENV_WARM_START, "").strip().lower()
    return value not in ("0", "false", "no", "off")


def fork_time(job: SensorJob) -> float:
    """Fork time of ``job``: just before its earliest clock corner.

    ``settle + min(0, tau) - PREFIX_GUARD``; deterministic per job (not
    per campaign) so bisection probes submitted one at a time still land
    on the same cached prefix when ``tau >= 0``.
    """
    resolved = job.resolved()
    return resolved.settle + min(0.0, resolved.skew) - PREFIX_GUARD


def warm_eligible(job: SensorJob) -> bool:
    """Whether the warm path applies to ``job`` at all.

    Requires a usefully long prefix (the fork comfortably after ``t=0``)
    and a measurement suffix that actually starts after the fork.
    """
    resolved = job.resolved()
    fork = fork_time(resolved)
    if fork < _MIN_PREFIX_STEPS * resolved.options.dt_start:
        return False
    _, _, fall_start, _ = measurement_windows(
        resolved.skew, resolved.slew1, resolved.slew2,
        resolved.period, resolved.settle,
    )
    return fall_start > fork + PREFIX_GUARD


def prefix_signature(job: SensorJob) -> Dict[str, object]:
    """The skew-invariant fields addressing a prefix checkpoint.

    Everything that shapes the circuit or the solver before the fork:
    loads, process corner, sizing, topology switches, engine options and
    the fork time itself.  Deliberately *excludes* ``skew``, ``slew1``/
    ``slew2``, ``period`` and ``threshold`` - both clocks are flat 0 V
    on ``[0, fork]`` (their first waveform corners lie at ``settle +
    min(0, tau) > fork``), so those fields cannot influence the prefix
    solution or its grid.
    """
    resolved = job.resolved()
    return {
        "load1": resolved.load1,
        "load2": resolved.load2,
        "process": resolved.process,
        "sizing": resolved.sizing,
        "full_swing": resolved.full_swing,
        "parasitics": resolved.parasitics,
        "options": resolved.options,
        "fork": fork_time(resolved),
    }


def prefix_key(job: SensorJob) -> str:
    """Content-address of ``job``'s prefix checkpoint."""
    return stable_key(prefix_signature(job), namespace=PREFIX_NAMESPACE)


def group_by_prefix(
    jobs: Iterable[SensorJob],
) -> "Dict[str, List[SensorJob]]":
    """Plan a campaign: warm-eligible jobs grouped by prefix key.

    First-seen order is preserved; jobs that are cold (``warm_start``
    off) or ineligible are left out.  Two jobs land in the same group
    only when *every* skew-invariant field matches - the planner test
    proves differing non-tau parameters never merge.
    """
    groups: Dict[str, List[SensorJob]] = {}
    for job in jobs:
        resolved = job.resolved()
        if not (resolved.warm_start and warm_eligible(resolved)):
            continue
        groups.setdefault(prefix_key(resolved), []).append(job)
    return groups


def _build_sensor(resolved: SensorJob) -> SkewSensor:
    return SkewSensor(
        process=resolved.process,
        sizing=resolved.sizing,
        load1=resolved.load1,
        load2=resolved.load2,
        full_swing=resolved.full_swing,
        parasitics=resolved.parasitics,
    )


def _sensor_netlist(resolved: SensorJob):
    """(sensor, netlist) of one resolved job, clocks included."""
    sensor = _build_sensor(resolved)
    phi1, phi2 = clock_pair(
        period=resolved.period, slew1=resolved.slew1, slew2=resolved.slew2,
        skew=resolved.skew, delay=resolved.settle, vdd=sensor.vdd,
    )
    return sensor, sensor.build(phi1=phi1, phi2=phi2)


def prefix_checkpoint(
    resolved: SensorJob,
) -> Tuple[TransientCheckpoint, Dict[str, float]]:
    """Fetch or integrate the shared prefix checkpoint of ``resolved``.

    Returns ``(checkpoint, stats)`` where ``stats`` carries the prefix
    accounting the telemetry folds in: ``hits``/``builds`` counts, the
    wall seconds spent building (``build_s``), the simulated seconds a
    cache hit skipped (``saved_s``), and the engine escalation/step
    counts of a fresh build (``steps``, plus ``esc:<rung>`` entries).
    """
    fork = fork_time(resolved)
    key = prefix_key(resolved)
    cache = get_checkpoint_cache()
    payload = cache.get(key)
    if payload is not None:
        return TransientCheckpoint.from_payload(payload), {
            "hits": 1.0, "saved_s": fork,
        }
    watch = Stopwatch()
    sensor, netlist = _sensor_netlist(resolved)
    result = transient(
        netlist,
        t_stop=fork,
        record=[],
        initial=sensor.dc_guess(),
        options=resolved.options,
        checkpoint_at=fork,
    )
    checkpoint = result.checkpoint
    cache.put(key, checkpoint.to_payload())
    stats: Dict[str, float] = {
        "builds": 1.0,
        "build_s": watch.elapsed(),
        "steps": float(len(result.times) - 1),
    }
    for rung, count in result.escalations.items():
        stats[f"esc:{rung}"] = stats.get(f"esc:{rung}", 0.0) + count
    return checkpoint, stats


def evaluate_job_warm(job: SensorJob) -> JobResult:
    """Warm-start evaluation: cached prefix + forked measurement suffix.

    Pure function of the job alone (the fork time and suffix horizon are
    per-job deterministic), so the result is cacheable under the job's
    ``warm_start=True`` key like any other.  Falls back to the cold
    evaluator when the job is warm-ineligible.
    """
    resolved = job.resolved()
    if not warm_eligible(resolved):
        from dataclasses import replace

        from repro.runtime.jobs import evaluate_job

        return evaluate_job(replace(resolved, warm_start=False))

    checkpoint, prefix_stats = prefix_checkpoint(resolved)
    edge_start, _, fall_start, t_sample = measurement_windows(
        resolved.skew, resolved.slew1, resolved.slew2,
        resolved.period, resolved.settle,
    )
    _, netlist = _sensor_netlist(resolved)
    result = transient(
        netlist,
        t_stop=fall_start,
        record=["phi1", "phi2", "y1", "y2"],
        options=resolved.options,
        resume_from=checkpoint,
    )
    y1 = result.wave("y1")
    y2 = result.wave("y2")
    vmin_y1 = y1.window_min(edge_start, fall_start)
    vmin_y2 = y2.window_min(edge_start, fall_start)
    code = (
        1 if y1.at(t_sample) > resolved.threshold else 0,
        1 if y2.at(t_sample) > resolved.threshold else 0,
    )
    # Simulated seconds never integrated by this job: the skipped
    # post-measurement tail, plus the whole prefix on a cache hit.
    t_stop_cold = resolved.settle + resolved.period
    saved = (t_stop_cold - fall_start) + float(prefix_stats.get("saved_s", 0.0))
    prefix = dict(prefix_stats)
    prefix["saved_s"] = saved
    escalations = dict(result.escalations)
    for name, value in list(prefix.items()):
        if name.startswith("esc:"):
            rung = name[4:]
            escalations[rung] = escalations.get(rung, 0) + int(value)
            del prefix[name]
    steps = len(result.times) - 1 + int(prefix.pop("steps", 0))
    return JobResult(
        skew=resolved.skew,
        vmin_y1=vmin_y1,
        vmin_y2=vmin_y2,
        code=code,
        steps=steps,
        escalations=tuple(sorted(escalations.items())),
        kernel=tuple(sorted(result.kernel_stats.items())),
        prefix=tuple(sorted(prefix.items())),
    )


def prepare_prefixes(
    jobs: Sequence[SensorJob], telemetry: Optional[Telemetry] = None
) -> int:
    """Ensure every prefix group's checkpoint exists before dispatch.

    Called by :func:`repro.runtime.executor.run_campaign` on the pending
    (post-cache) work items: each group's shared prefix is integrated
    once *in the parent process*, so fork-started worker pools inherit
    it through the memory tier and thread/serial backends hit it
    directly.  Workers that miss anyway (spawn contexts, disk-disabled
    runs) fall back to building their own - correctness never depends on
    this warm-up.  Returns the number of prefixes built.
    """
    from repro.errors import SimulationError

    built = 0
    cache = get_checkpoint_cache()
    for key, group in group_by_prefix(jobs).items():
        if cache.get(key) is not None:
            continue
        try:
            _, stats = prefix_checkpoint(group[0].resolved())
        except SimulationError:
            # Let the per-job evaluation surface the failure through the
            # executor's normal retry/on_error machinery.
            continue
        if telemetry is not None:
            telemetry.record_prefix(
                {k: v for k, v in stats.items()
                 if k in ("hits", "builds", "build_s", "saved_s")}
            )
        built += int(stats.get("builds", 0))
    return built


def publish_prefixes(
    jobs: Sequence[SensorJob], telemetry: Optional[Telemetry] = None
) -> int:
    """Publish every prefix group's checkpoint to the shared store.

    The sharded batch dispatcher calls this immediately before fanning
    stacks out over a process pool.  It is :func:`prepare_prefixes` plus
    one guarantee: when a disk tier is configured, the checkpoint ends
    up *on disk*, not just in the parent's memory tier - so spawn-context
    workers, and fork-pool generations rebuilt after a crash, warm-start
    from the artifact store instead of each re-integrating the prefix.
    A checkpoint that was built under a disk-disabled cache (or while the
    disk tier was degraded) is re-``put`` from memory.  Returns the
    number of groups built or re-published.
    """
    from repro.errors import SimulationError

    published = 0
    cache = get_checkpoint_cache()
    for key, group in group_by_prefix(jobs).items():
        payload = cache.get(key)
        if payload is None:
            try:
                _, stats = prefix_checkpoint(group[0].resolved())
            except SimulationError:
                # The per-sample evaluation will surface the failure
                # through the executor's normal error machinery.
                continue
            if telemetry is not None:
                telemetry.record_prefix(
                    {k: v for k, v in stats.items()
                     if k in ("hits", "builds", "build_s", "saved_s")}
                )
            published += 1
        elif cache.disk_enabled and not cache.on_disk(key):
            cache.put(key, payload)
            published += 1
    return published
