"""Campaign observability: timings, cache accounting, engine statistics.

A :class:`Telemetry` object rides along a campaign (or any hand-rolled
loop) and records, per job, the wall time, the number of attempts (retries
on :class:`~repro.analog.dcop.ConvergenceError`), the number of accepted
engine integration points, and whether the value came from cache.  It
exports a machine-readable JSON report (:meth:`Telemetry.to_json`) and a
human summary (:meth:`Telemetry.summary`), and its counters are what the
acceptance checks read to prove a warm-cache run performed *zero* new
transient integrations.

The module also hosts the small timing/printing helpers that used to be
duplicated across ``benchmarks/_util.py`` and ad-hoc scripts:
:class:`Stopwatch`, :func:`format_duration` and :func:`emit_block`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional


def format_duration(seconds: float) -> str:
    """Human-friendly duration: ``738 us``, ``12.3 ms``, ``4.56 s``."""
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


class Stopwatch:
    """Tiny ``perf_counter`` wrapper used by benches and the executor."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._t0

    def restart(self) -> float:
        """Return the elapsed seconds and restart the watch."""
        now = time.perf_counter()
        elapsed, self._t0 = now - self._t0, now
        return elapsed


def emit_block(name: str, lines: Iterable[str], out_dir: str) -> str:
    """Print a named result block and persist it as ``<out_dir>/<name>.txt``.

    The shared printing helper behind every ``benchmarks/bench_*.py``
    (previously a private copy in ``benchmarks/_util.py``).
    """
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


@dataclass
class JobRecord:
    """Per-job telemetry sample.

    ``resumed`` marks a value replayed from a checkpoint journal;
    ``error`` holds the exception class name of a job that failed under
    ``on_error="collect"`` (``None`` for successes).
    """

    label: str
    wall: float
    attempts: int = 1
    steps: int = 0
    cached: bool = False
    resumed: bool = False
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of this record."""
        data = {
            "label": self.label,
            "wall_s": self.wall,
            "attempts": self.attempts,
            "steps": self.steps,
            "cached": self.cached,
        }
        if self.resumed:
            data["resumed"] = True
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class Telemetry:
    """Accumulates campaign metrics; cheap enough to always carry."""

    records: List[JobRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Solver escalation-ladder tallies summed over jobs (rung -> count).
    ladder_rungs: Dict[str, int] = field(default_factory=dict)
    #: Campaign-level robustness counters: pool rebuild re-dispatches and
    #: worker-process deaths observed while producing the results.
    redispatches: int = 0
    worker_crashes: int = 0
    #: Batch-backend counters: samples whose result came out of the
    #: lockstep engine, and samples the lockstep engine masked out and
    #: re-dispatched to the scalar path (the fallback contract).
    batched_samples: int = 0
    batch_fallbacks: int = 0
    #: Resolved batch-dispatch shape: samples per lockstep stack, shard
    #: worker count, and whether the stack size came from the auto-tune
    #: heuristic (vs an explicit argument / ``REPRO_BATCH_SIZE``).  Zero
    #: until a batch dispatch records its configuration.
    batch_stack_size: int = 0
    batch_workers: int = 0
    batch_size_auto: bool = False
    #: Hot-loop kernel counters summed over evaluated jobs
    #: (:meth:`repro.analog.kernels.KernelStats.as_dict` fields:
    #: assembles, factorizations, jacobian_reuses, per-phase seconds...).
    kernel: Dict[str, float] = field(default_factory=dict)
    #: Prefix warm-start counters: jobs that reused a shared/cached prefix
    #: checkpoint (``prefix_hits``), prefix transients actually integrated
    #: (``prefix_builds``), wall seconds spent building them, and the
    #: total *simulated* seconds the warm path skipped re-integrating.
    prefix_hits: int = 0
    prefix_builds: int = 0
    prefix_build_s: float = 0.0
    prefix_saved_time_s: float = 0.0
    #: Extra named durations recorded via :meth:`timer` (setup, report...).
    spans: Dict[str, float] = field(default_factory=dict)
    _wall = None  # type: Optional[Stopwatch]

    def __post_init__(self) -> None:
        self._wall = Stopwatch()

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def record_job(
        self,
        label: str,
        wall: float,
        attempts: int = 1,
        steps: int = 0,
        cached: bool = False,
        resumed: bool = False,
        error: Optional[str] = None,
        escalations: Optional[Mapping[str, int]] = None,
        kernel: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record one finished job (fresh, cached, resumed or failed)."""
        self.records.append(
            JobRecord(label=label, wall=wall, attempts=attempts,
                      steps=steps, cached=cached, resumed=resumed, error=error)
        )
        if escalations:
            self.record_escalations(escalations)
        if kernel:
            self.record_kernel(kernel)

    def record_cache(self, hit: bool) -> None:
        """Count one cache lookup."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_escalations(self, rungs: Mapping[str, int]) -> None:
        """Fold a solver-ladder tally (rung -> count) into the totals."""
        for rung, count in rungs.items():
            self.ladder_rungs[rung] = self.ladder_rungs.get(rung, 0) + int(count)

    def record_redispatch(self, jobs: int = 1) -> None:
        """Count jobs re-dispatched after a worker-pool rebuild."""
        self.redispatches += jobs

    def record_worker_crash(self) -> None:
        """Count one observed worker-process death (pool breakage)."""
        self.worker_crashes += 1

    def record_kernel(self, stats: Mapping[str, float]) -> None:
        """Fold one run's hot-loop kernel counters into the totals.

        Counter fields stay integers; the ``*_s`` phase timings
        accumulate as float seconds.
        """
        for name, value in stats.items():
            total = self.kernel.get(name, 0) + value
            self.kernel[name] = float(total) if name.endswith("_s") else int(total)

    def record_prefix(self, stats: Mapping[str, float]) -> None:
        """Fold prefix warm-start counters into the totals.

        Accepts the keyed tuples/dicts the warm evaluator emits:
        ``hits`` / ``builds`` (counts), ``build_s`` (wall seconds spent
        integrating shared prefixes) and ``saved_s`` (simulated seconds
        the warm path did not re-integrate).
        """
        stats = dict(stats)
        self.prefix_hits += int(stats.get("hits", 0))
        self.prefix_builds += int(stats.get("builds", 0))
        self.prefix_build_s += float(stats.get("build_s", 0.0))
        self.prefix_saved_time_s += float(stats.get("saved_s", 0.0))

    def record_batch(self, samples: int, fallbacks: int = 0) -> None:
        """Count one batch-engine stack: ``samples`` results produced in
        lockstep and ``fallbacks`` samples re-dispatched to the scalar
        engine."""
        self.batched_samples += int(samples)
        self.batch_fallbacks += int(fallbacks)

    def record_batch_config(
        self, stack_size: int, workers: int, auto: bool = False
    ) -> None:
        """Record the resolved batch-dispatch shape: ``stack_size``
        samples per lockstep stack fanned out over ``workers`` shard
        processes; ``auto`` marks a stack size chosen by the dispatcher's
        memory/fan-out heuristic rather than an explicit setting.  Benches
        read these back so BENCH JSON reports the size actually used."""
        self.batch_stack_size = int(stack_size)
        self.batch_workers = int(workers)
        self.batch_size_auto = bool(auto)

    @contextmanager
    def timer(self, label: str) -> Iterator[None]:
        """Time a named span: ``with telemetry.timer("report"): ...``."""
        watch = Stopwatch()
        try:
            yield
        finally:
            self.spans[label] = self.spans.get(label, 0.0) + watch.elapsed()

    # ------------------------------------------------------------------ #
    # Derived statistics.
    # ------------------------------------------------------------------ #
    @property
    def jobs_total(self) -> int:
        return len(self.records)

    @property
    def jobs_evaluated(self) -> int:
        """Jobs that actually ran a transient (neither cached nor
        replayed from a checkpoint journal)."""
        return sum(1 for r in self.records if not r.cached and not r.resumed)

    @property
    def jobs_resumed(self) -> int:
        """Jobs replayed from a checkpoint journal."""
        return sum(1 for r in self.records if r.resumed)

    @property
    def jobs_failed(self) -> int:
        """Jobs that ended in a collected :class:`~repro.errors.JobError`."""
        return sum(1 for r in self.records if r.error is not None)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, summed over evaluated jobs."""
        return sum(r.attempts - 1 for r in self.records
                   if not r.cached and r.attempts > 1)

    @property
    def steps_integrated(self) -> int:
        """Engine points accepted *in this run* (cached and journal-resumed
        jobs contribute 0 - their integration happened in an earlier run)."""
        return sum(r.steps for r in self.records if not r.cached and not r.resumed)

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix lookups that reused an existing checkpoint."""
        lookups = self.prefix_hits + self.prefix_builds
        return self.prefix_hits / lookups if lookups else 0.0

    @property
    def wall_total(self) -> float:
        return sum(r.wall for r in self.records)

    def elapsed(self) -> float:
        """Wall time since this telemetry object was created."""
        return self._wall.elapsed() if self._wall else 0.0

    # ------------------------------------------------------------------ #
    # Export.
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        """The full machine-readable report (used by :meth:`to_json`)."""
        walls = sorted(r.wall for r in self.records if not r.cached)

        def pct(q: float) -> float:
            if not walls:
                return 0.0
            pos = min(len(walls) - 1, int(q * (len(walls) - 1) + 0.5))
            return walls[pos]

        return {
            "jobs": {
                "total": self.jobs_total,
                "evaluated": self.jobs_evaluated,
                "from_cache": sum(1 for r in self.records if r.cached),
                "resumed": self.jobs_resumed,
                "failed": self.jobs_failed,
                "retries": self.retries,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "engine": {
                "steps_integrated": self.steps_integrated,
                "ladder_rungs": dict(self.ladder_rungs),
                "kernel": dict(self.kernel),
                "prefix": {
                    "hits": self.prefix_hits,
                    "builds": self.prefix_builds,
                    "hit_rate": self.prefix_hit_rate,
                    "build_wall_s": self.prefix_build_s,
                    "integrated_time_saved_s": self.prefix_saved_time_s,
                },
            },
            "executor": {
                "redispatches": self.redispatches,
                "worker_crashes": self.worker_crashes,
                "batched_samples": self.batched_samples,
                "batch_fallbacks": self.batch_fallbacks,
                "batch_stack_size": self.batch_stack_size,
                "batch_workers": self.batch_workers,
                "batch_size_auto": self.batch_size_auto,
            },
            "wall_s": {
                "jobs_total": self.wall_total,
                "elapsed": self.elapsed(),
                "job_p50": pct(0.50),
                "job_p95": pct(0.95),
                "job_max": walls[-1] if walls else 0.0,
            },
            "spans_s": dict(self.spans),
            "records": [r.as_dict() for r in self.records],
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """JSON report; optionally written to ``path``."""
        text = json.dumps(self.as_dict(), indent=indent, sort_keys=True)
        if path:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        data = self.as_dict()
        jobs, wall = data["jobs"], data["wall_s"]
        lines = [
            f"jobs      : {jobs['total']} total, {jobs['evaluated']} evaluated, "
            f"{jobs['from_cache']} from cache, {jobs['resumed']} resumed, "
            f"{jobs['failed']} failed, {jobs['retries']} retries",
            f"cache     : {self.cache_hits} hits, {self.cache_misses} misses",
            f"engine    : {data['engine']['steps_integrated']} integration "
            "points accepted this run",
        ]
        if self.kernel:
            k = self.kernel
            lines.append(
                f"kernel    : {int(k.get('newton_iterations', 0))} newton "
                f"iteration(s), {int(k.get('factorizations', 0))} "
                f"factorization(s), {int(k.get('jacobian_reuses', 0))} "
                f"jacobian reuse(s), {int(k.get('refactorizations', 0))} "
                "slowdown refactor(s)"
            )
            phases = ", ".join(
                f"{name[:-2]} {format_duration(k[name])}"
                for name in ("assemble_s", "factor_s", "solve_s", "accept_s")
                if k.get(name)
            )
            if phases:
                lines.append(f"kernel t  : {phases}")
        if self.prefix_hits or self.prefix_builds:
            lines.append(
                f"prefix    : {self.prefix_hits} warm fork(s), "
                f"{self.prefix_builds} prefix build(s) "
                f"({format_duration(self.prefix_build_s)} wall), "
                f"{self.prefix_saved_time_s * 1e9:.1f} ns of simulated "
                "time not re-integrated"
            )
        if self.ladder_rungs:
            rungs = ", ".join(
                f"{rung}={count}"
                for rung, count in sorted(self.ladder_rungs.items())
            )
            lines.append(f"ladder    : {rungs}")
        if self.redispatches or self.worker_crashes:
            lines.append(
                f"executor  : {self.worker_crashes} worker crash(es), "
                f"{self.redispatches} job re-dispatch(es)"
            )
        if self.batched_samples or self.batch_fallbacks:
            shape = ""
            if self.batch_stack_size:
                source = "auto" if self.batch_size_auto else "set"
                shape = (
                    f" ({self.batch_stack_size} samples/stack [{source}], "
                    f"{self.batch_workers} worker(s))"
                )
            lines.append(
                f"batch     : {self.batched_samples} sample(s) in lockstep, "
                f"{self.batch_fallbacks} scalar fallback(s){shape}"
            )
        lines += [
            f"wall time : {format_duration(wall['elapsed'])} elapsed, "
            f"{format_duration(wall['jobs_total'])} in jobs "
            f"(p50 {format_duration(wall['job_p50'])}, "
            f"p95 {format_duration(wall['job_p95'])}, "
            f"max {format_duration(wall['job_max'])})",
        ]
        for label, seconds in sorted(self.spans.items()):
            lines.append(f"span      : {label} = {format_duration(seconds)}")
        return "\n".join(lines)

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry object into this one."""
        self.records.extend(other.records)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.redispatches += other.redispatches
        self.worker_crashes += other.worker_crashes
        self.batched_samples += other.batched_samples
        self.batch_fallbacks += other.batch_fallbacks
        if other.batch_stack_size:
            self.batch_stack_size = other.batch_stack_size
            self.batch_workers = other.batch_workers
            self.batch_size_auto = other.batch_size_auto
        self.prefix_hits += other.prefix_hits
        self.prefix_builds += other.prefix_builds
        self.prefix_build_s += other.prefix_build_s
        self.prefix_saved_time_s += other.prefix_saved_time_s
        self.record_escalations(other.ladder_rungs)
        self.record_kernel(other.kernel)
        for label, seconds in other.spans.items():
            self.spans[label] = self.spans.get(label, 0.0) + seconds
