"""Simulation-as-a-service: campaign server over the runtime stack.

PRs 1-5 made the engine fast (content-addressed cache, batched lockstep
integration, compiled kernels, prefix warm-starts) but left it a
blocking CLI: one terminal, one campaign, results gone when the process
exits.  This package is the step from "CLI tool" to "serves heavy
traffic" (ROADMAP item 1): a long-running HTTP service that accepts the
same campaign descriptions the CLI builds, schedules them by priority,
executes them on :func:`repro.runtime.run_campaign` with checkpoint
journaling, streams per-job progress, and survives restarts.

Layering (each module usable on its own):

* :mod:`repro.service.specs` - the campaign *spec*: a JSON dict (same
  parameter conventions as the ``repro campaign`` / ``repro montecarlo``
  subcommands) validated and compiled into a :class:`CampaignPlan` of
  :class:`~repro.runtime.SensorJob` descriptions plus a result folder.
  Extensible registry so future job families plug in;
* :mod:`repro.service.store` - the *job store*: campaign lifecycle
  (``queued -> running -> done/failed/cancelled``) persisted in an
  append-only JSONL journal (the :mod:`repro.runtime.checkpoint` format)
  plus one directory per campaign holding its result payload and its
  ``run_campaign`` checkpoint journal.  A restarted server replays the
  journal: interrupted campaigns come back ``queued`` with
  ``resume=True`` and continue from their checkpoint;
* :mod:`repro.service.scheduler` - the *background scheduler*: worker
  thread draining a priority queue (priority, then FIFO), per-client
  concurrency quotas, per-campaign cancellation (the executor's
  ``cancel_event``) and timeouts, live progress-event buffers fed from
  the executor's ``progress`` callback, and aggregate
  :class:`~repro.runtime.Telemetry`;
* :mod:`repro.service.api` - the *HTTP API* (stdlib
  ``ThreadingHTTPServer``, no new dependencies): submit/status/result/
  cancel endpoints, Server-Sent-Events progress streams, ``/healthz``,
  ``/metrics`` and multi-tenant cache management;
* :mod:`repro.service.client` - the stdlib HTTP client the CLI
  (``repro serve`` / ``submit`` / ``status`` / ``result`` / ``cancel``)
  and the examples speak.

Determinism is preserved end to end: a service campaign builds exactly
the jobs the CLI would, under the same cache keys, so its results are
bit-identical to a direct ``run_campaign`` - the service adds
scheduling, persistence and observability, never physics.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import CampaignScheduler, QuotaExceededError
from repro.service.specs import (
    FAST_OPTIONS,
    CampaignPlan,
    SpecError,
    build_plan,
    normalize_spec,
    register_kind,
    spec_kinds,
)
from repro.service.store import (
    CampaignRecord,
    JobStore,
    STATES,
    TERMINAL_STATES,
    default_state_dir,
)

__all__ = [
    "FAST_OPTIONS",
    "STATES",
    "TERMINAL_STATES",
    "CampaignPlan",
    "CampaignRecord",
    "CampaignScheduler",
    "JobStore",
    "QuotaExceededError",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "build_plan",
    "default_state_dir",
    "normalize_spec",
    "register_kind",
    "spec_kinds",
]
