"""Stdlib HTTP API over the campaign scheduler.

``http.server.ThreadingHTTPServer`` - one thread per connection, no new
dependencies - fronting a :class:`~repro.service.scheduler.CampaignScheduler`.
Endpoints:

=======  ================================  ===================================
Method   Path                              Meaning
=======  ================================  ===================================
POST     ``/campaigns``                    Submit a campaign spec (JSON body:
                                           ``{"spec": {...}, "client": ...,
                                           "priority": ...}``) -> 202 + record
GET      ``/campaigns``                    List campaign records
GET      ``/campaigns/{id}``               One campaign's status record
GET      ``/campaigns/{id}/result``        The result payload (409 until done)
DELETE   ``/campaigns/{id}``               Cancel (queued or running)
GET      ``/campaigns/{id}/events``        Server-Sent-Events progress stream
                                           (``?from=N`` resumes a cursor)
GET      ``/healthz``                      Liveness: ``{"status": "ok"}``
GET      ``/metrics``                      Scheduler + telemetry + cache stats
GET      ``/cache``                        Disk-cache usage (bytes, budget)
POST     ``/cache/prune``                  LRU-evict to the given/current
                                           budget (``{"max_bytes": N}``)
=======  ================================  ===================================

Error mapping: bad JSON / failed spec validation -> 400, unknown
campaign -> 404, result not ready -> 409, quota exceeded -> 429 +
``Retry-After``, queue at its depth bound or storage failing -> 503 +
``Retry-After``.  Every response body is JSON (``{"error": ...}`` on
failure).  Submissions may carry an ``idempotency_key`` the scheduler
deduplicates on, which is what makes client-side POST retries safe.

``/healthz`` reports scheduler liveness (slot threads alive, oldest
running campaign's heartbeat age, watchdog counters) so an orchestrator
can restart a wedged service; the status flips to ``"degraded"`` when
no slot thread is alive.

Chaos sites consulted per request: ``api.slow`` (sleep before
answering) and ``api.drop`` (shut the connection down unanswered -
clients must retry).

The SSE stream emits one ``data: <json>`` frame per scheduler event
(at least one per completed job) and closes after the terminal event.
Reconnecting clients pass ``?from=<next index>`` to resume where they
dropped; the buffer is in-memory, so a *server* restart resets cursors -
durable progress lives in the store's journals, not the event buffer.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import InjectedFaultError
from repro.runtime import get_cache
from repro.runtime.faults import get_injector
from repro.service.scheduler import (
    CampaignScheduler,
    QueueFullError,
    QuotaExceededError,
)
from repro.service.specs import SpecError, spec_kinds

#: Cap on accepted request bodies (a spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Retry-After (seconds) sent with 429/503 answers.
RETRY_AFTER_S = 1


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler; the server instance carries the scheduler."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Quiet by default; honours the server's ``access_log`` switch."""
        if getattr(self.server, "access_log", False):
            super().log_message(format, *args)

    @property
    def scheduler(self) -> CampaignScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    # ----------------------------------------------------------------- #
    # Plumbing.
    # ----------------------------------------------------------------- #

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        headers = None
        if retry_after is not None:
            headers = {"Retry-After": str(max(1, int(round(retry_after))))}
        self._send_json(status, {"error": message}, headers=headers)

    def _chaos_gate(self) -> bool:
        """Consult the ``api.slow`` / ``api.drop`` chaos sites before
        handling a request.  Returns False when the connection was
        dropped (nothing may be written afterwards)."""
        injector = get_injector()
        if not injector.active:
            return True
        if injector.should_fire("api.slow"):
            time.sleep(injector.slow_s)
        if injector.should_fire("api.drop"):
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return False
        return True

    def _read_body(self) -> Optional[Dict[str, Any]]:
        """Parse the JSON request body; answers 400 and returns None on
        any malformation."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._error(400, "missing or oversized request body")
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            self._error(400, f"invalid JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    def _campaign_id(self, path: str, suffix: str = "") -> Optional[str]:
        """Extract ``{id}`` from ``/campaigns/{id}[/suffix]``; answers
        404 when the campaign does not exist."""
        parts = path.strip("/").split("/")
        expected = 2 + (1 if suffix else 0)
        if len(parts) != expected or parts[0] != "campaigns":
            return None
        if suffix and parts[2] != suffix:
            return None
        campaign_id = parts[1]
        if campaign_id not in self.scheduler.store:
            self._error(404, f"unknown campaign {campaign_id!r}")
            return None
        return campaign_id

    # ----------------------------------------------------------------- #
    # Verbs.
    # ----------------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """healthz/metrics/cache, campaign list/status/result/events."""
        if not self._chaos_gate():
            return
        path, query = self._route()
        if path == "/healthz":
            liveness = self.scheduler.liveness()
            self._send_json(200, {
                "status": "ok" if liveness["alive"] else "degraded",
                "kinds": spec_kinds(),
                "scheduler": liveness,
                "journal_quarantined": self.scheduler.store.quarantined,
            })
        elif path == "/metrics":
            self._send_json(200, self._metrics())
        elif path == "/cache":
            self._send_json(200, self._cache_info())
        elif path == "/campaigns":
            self._send_json(200, {
                "campaigns": [
                    record.to_payload()
                    for record in self.scheduler.store.list()
                ],
            })
        elif path.endswith("/events"):
            campaign_id = self._campaign_id(path, "events")
            if campaign_id is not None:
                self._stream_events(campaign_id, query)
        elif path.endswith("/result"):
            campaign_id = self._campaign_id(path, "result")
            if campaign_id is not None:
                self._get_result(campaign_id)
        else:
            campaign_id = self._campaign_id(path)
            if campaign_id is not None:
                record = self.scheduler.store.get(campaign_id)
                self._send_json(200, record.to_payload())

    def do_POST(self) -> None:  # noqa: N802
        """``/campaigns`` (submit) and ``/cache/prune``."""
        if not self._chaos_gate():
            return
        path, _ = self._route()
        if path == "/campaigns":
            self._submit()
        elif path == "/cache/prune":
            self._prune_cache()
        else:
            self._error(404, f"no such endpoint: POST {path}")

    def do_DELETE(self) -> None:  # noqa: N802
        """``/campaigns/{id}``: cancel a queued or running campaign."""
        if not self._chaos_gate():
            return
        path, _ = self._route()
        campaign_id = self._campaign_id(path)
        if campaign_id is None:
            return
        cancelled = self.scheduler.cancel(campaign_id)
        record = self.scheduler.store.get(campaign_id)
        self._send_json(200, {
            "cancelled": cancelled,
            "state": record.state,
        })

    # ----------------------------------------------------------------- #
    # Endpoint bodies.
    # ----------------------------------------------------------------- #

    def _submit(self) -> None:
        payload = self._read_body()
        if payload is None:
            return
        spec = payload.get("spec")
        if spec is None:
            self._error(400, 'body must carry a "spec" object')
            return
        try:
            record = self.scheduler.submit(
                spec,
                client=str(payload.get("client", "")),
                priority=int(payload.get("priority", 0)),
                idempotency_key=str(payload.get("idempotency_key", "")),
            )
        except SpecError as error:
            self._error(400, str(error))
        except QuotaExceededError as error:
            self._error(429, str(error), retry_after=RETRY_AFTER_S)
        except QueueFullError as error:
            self._error(503, str(error), retry_after=error.retry_after)
        except (OSError, InjectedFaultError) as error:
            # The store could not make the submission durable (disk
            # trouble, real or injected): shed load instead of lying.
            self._error(
                503, f"storage failure: {error}", retry_after=RETRY_AFTER_S
            )
        except (TypeError, ValueError) as error:
            self._error(400, str(error))
        else:
            self._send_json(202, record.to_payload())

    def _get_result(self, campaign_id: str) -> None:
        record = self.scheduler.store.get(campaign_id)
        if record.state != "done":
            self._error(
                409,
                f"campaign {campaign_id} is {record.state!r}, not done",
            )
            return
        self._send_json(200, self.scheduler.store.load_result(campaign_id))

    def _stream_events(self, campaign_id: str, query: Dict[str, str]) -> None:
        try:
            cursor = max(0, int(query.get("from", "0")))
        except ValueError:
            self._error(400, "'from' must be an integer")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        terminal_events = {"done", "failed", "cancelled", "requeued"}
        try:
            while True:
                events = self.scheduler.wait_events(
                    campaign_id, cursor, timeout=5.0
                )
                finished = False
                for event in events:
                    frame = (
                        f"id: {cursor}\n"
                        f"data: {json.dumps(event)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                    cursor += 1
                    if event.get("event") in terminal_events:
                        finished = True
                self.wfile.flush()
                if finished:
                    return
                if not events:
                    record = self.scheduler.store.get(campaign_id)
                    if record.terminal:
                        # Terminal before we attached (or buffer reset by
                        # a restart): report the state and close.
                        frame = (
                            f"data: {json.dumps({'event': record.state})}\n\n"
                        )
                        self.wfile.write(frame.encode("utf-8"))
                        self.wfile.flush()
                        return
                    # keep-alive comment so proxies do not cut us off
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up

    def _metrics(self) -> Dict[str, Any]:
        cache = get_cache()
        payload = self.scheduler.metrics()
        payload["cache"] = cache.stats.as_dict()
        payload["cache_disk"] = self._cache_info()
        return payload

    def _cache_info(self) -> Dict[str, Any]:
        cache = get_cache()
        return {
            "disk_dir": str(cache.disk_dir) if cache.disk_dir else None,
            "disk_bytes": cache.disk_total_bytes(),
            "max_bytes": cache.max_disk_bytes,
        }

    def _prune_cache(self) -> None:
        payload = self._read_body()
        if payload is None:
            return
        max_bytes = payload.get("max_bytes")
        if max_bytes is not None:
            try:
                max_bytes = int(max_bytes)
            except (TypeError, ValueError):
                self._error(400, "max_bytes must be an integer")
                return
        cache = get_cache()
        removed = cache.prune(max_bytes=max_bytes)
        self._send_json(200, {
            "removed": removed,
            "disk_bytes": cache.disk_total_bytes(),
        })


class ServiceServer(ThreadingHTTPServer):
    """The service's HTTP server: scheduler-aware, daemon threads."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        scheduler: CampaignScheduler,
        access_log: bool = False,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.scheduler = scheduler
        self.access_log = access_log

    @property
    def port(self) -> int:
        return self.server_address[1]

    def shutdown_all(self) -> None:
        """Stop accepting, stop the scheduler, close the store."""
        self.shutdown()
        self.server_close()
        self.scheduler.stop()
        self.scheduler.store.close()


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    state_dir: Optional[str] = None,
    quota: Optional[int] = None,
    access_log: bool = False,
    max_concurrent: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    watchdog_s: Optional[float] = None,
) -> ServiceServer:
    """Build the store + scheduler + server stack (``port=0`` binds an
    ephemeral port; read it back from ``server.port``).  The scheduler
    is started; call :meth:`ServiceServer.shutdown_all` to tear down.

    ``max_concurrent`` widens the scheduler (default 1 campaign at a
    time), ``max_queue_depth`` bounds the queue (503 beyond it) and
    ``watchdog_s`` arms the stuck-campaign watchdog."""
    from repro.service.scheduler import (
        DEFAULT_MAX_CONCURRENT,
        DEFAULT_QUOTA,
    )
    from repro.service.store import JobStore

    store = JobStore(state_dir)
    scheduler = CampaignScheduler(
        store,
        quota=DEFAULT_QUOTA if quota is None else quota,
        max_concurrent=(
            DEFAULT_MAX_CONCURRENT if max_concurrent is None
            else max_concurrent
        ),
        max_queue_depth=max_queue_depth,
        watchdog_s=watchdog_s,
    )
    server = ServiceServer((host, port), scheduler, access_log=access_log)
    scheduler.start()
    return server


def serve_forever(server: ServiceServer) -> None:
    """Serve until KeyboardInterrupt, then tear down cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # serve_forever already returned, so only the rest of the stack
        # still needs tearing down.
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.server_close()
        server.scheduler.stop()
        server.scheduler.store.close()
