"""Stdlib HTTP client for the campaign service.

What ``repro submit`` / ``status`` / ``result`` / ``cancel`` and the
examples speak: a thin ``urllib.request`` wrapper around the API of
:mod:`repro.service.api` - JSON in, JSON out, plus a line-level parser
for the Server-Sent-Events progress stream.  No third-party HTTP
library, matching the server side.

Retries
-------
Requests that fail *transiently* - a dropped/refused connection, a 429
quota answer, a 503 shed-load answer - are retried up to ``retries``
times with exponential backoff and decorrelated jitter (each sleep is
drawn uniformly from ``[base, 3 * previous]``, capped), honouring a
server ``Retry-After`` header when one is sent.  Idempotent requests
(GET, DELETE) are always eligible.  POST is only retried when the
request carries an idempotency key the server deduplicates on:
:meth:`ServiceClient.submit` generates one per call, so a retried
submit whose first attempt actually landed returns the original
campaign instead of enqueueing a duplicate.  Non-transient answers
(400, 404, 409...) are never retried.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, Iterator, List, Optional

#: Default attempt budget beyond the first try.
DEFAULT_RETRIES = 3

#: Backoff parameters (seconds): first sleep, and the cap any sleep
#: (including a server Retry-After) is clamped to.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 5.0

#: HTTP statuses worth retrying (plus status 0 = connection trouble).
RETRYABLE_STATUSES = frozenset({0, 429, 503})


class ServiceError(RuntimeError):
    """A service request failed; carries the HTTP status and message."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Parsed ``Retry-After`` header, when the server sent one.
        self.retry_after = retry_after


class ServiceClient:
    """Client for one service endpoint (``http://host:port``).

    ``retries=0`` disables retrying entirely (every failure surfaces
    immediately - what latency-sensitive tests want); ``seed`` pins the
    jitter stream for reproducible backoff schedules.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = BACKOFF_BASE_S,
        backoff_cap: float = BACKOFF_CAP_S,
        seed: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = random.Random(seed)
        #: Transient failures retried across this client's lifetime.
        self.retried = 0

    # ----------------------------------------------------------------- #
    # Plumbing.
    # ----------------------------------------------------------------- #

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            retry_after = None
            raw = error.headers.get("Retry-After") if error.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServiceError(
                error.code, detail, retry_after=retry_after
            ) from None
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            reason = getattr(error, "reason", error)
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {reason}"
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        idempotent: Optional[bool] = None,
    ) -> Dict[str, Any]:
        """One request with transient-failure retries.

        ``idempotent`` defaults by method: GET/DELETE yes, POST no.  A
        POST caller that made itself safe to repeat (an
        ``idempotency_key`` in the body) passes ``idempotent=True``.
        """
        if idempotent is None:
            idempotent = method in ("GET", "DELETE")
        budget = self.retries if idempotent else 0
        sleep = self.backoff_base
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, timeout)
            except ServiceError as error:
                if (
                    attempt >= budget
                    or error.status not in RETRYABLE_STATUSES
                ):
                    raise
                attempt += 1
                self.retried += 1
                # Decorrelated jitter; a server Retry-After overrides
                # the lower bound but stays under the cap so a chatty
                # server cannot park the client for minutes.
                sleep = min(
                    self.backoff_cap,
                    self._rng.uniform(self.backoff_base, sleep * 3.0),
                )
                if error.retry_after is not None:
                    sleep = min(
                        self.backoff_cap, max(sleep, error.retry_after)
                    )
                time.sleep(sleep)

    # ----------------------------------------------------------------- #
    # Endpoints.
    # ----------------------------------------------------------------- #

    def health(self) -> Dict[str, Any]:
        """Server liveness + the registered campaign kinds."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Scheduler gauges, aggregate telemetry and cache counters."""
        return self._request("GET", "/metrics")

    def submit(
        self,
        spec: Dict[str, Any],
        client: str = "",
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a campaign spec; returns its record (with
        ``campaign_id``).

        Generates a fresh idempotency key per call (pass your own to
        dedupe across client instances), which is what makes the POST
        safe to retry: if the first attempt landed but its response was
        lost, the retry returns the already-queued campaign.
        """
        key = uuid.uuid4().hex if idempotency_key is None else idempotency_key
        return self._request("POST", "/campaigns", body={
            "spec": spec, "client": client, "priority": priority,
            "idempotency_key": key,
        }, idempotent=bool(key))

    def list(self) -> List[Dict[str, Any]]:
        """Every campaign record the server knows, in submission order."""
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, Any]:
        """One campaign's record (state, progress, error, ...)."""
        return self._request("GET", f"/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> Dict[str, Any]:
        """The result payload; raises ``ServiceError(409)`` until done."""
        return self._request("GET", f"/campaigns/{campaign_id}/result")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        """Cancel a queued or running campaign."""
        return self._request("DELETE", f"/campaigns/{campaign_id}")

    def cache_info(self) -> Dict[str, Any]:
        """Result-cache counters and disk footprint."""
        return self._request("GET", "/cache")

    def prune_cache(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-used disk entries down to ``max_bytes``."""
        body: Dict[str, Any] = {}
        if max_bytes is not None:
            body["max_bytes"] = int(max_bytes)
        return self._request("POST", "/cache/prune", body=body)

    # ----------------------------------------------------------------- #
    # Waiting and streaming.
    # ----------------------------------------------------------------- #

    def wait(
        self,
        campaign_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the campaign is terminal; returns the final record.

        Raises :class:`ServiceError` (status 0) on timeout - the
        campaign keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(campaign_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"campaign {campaign_id} still {record['state']!r} "
                       f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def stream_events(
        self,
        campaign_id: str,
        start: int = 0,
        timeout: float = 300.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the campaign's progress events as they arrive (SSE).

        Terminates after the terminal event (``done`` / ``failed`` /
        ``cancelled`` / ``requeued``) or when the server closes the
        stream.  ``start`` resumes an event cursor (the ``?from=``
        query parameter).
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events?from={start}",
            headers={"Accept": "text/event-stream"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as stream:
                data_lines: List[str] = []
                for raw in stream:
                    line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                    if line.startswith(":"):
                        continue  # keep-alive comment
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
                        continue
                    if line == "" and data_lines:
                        # Blank line = end of one SSE frame.
                        try:
                            yield json.loads("\n".join(data_lines))
                        except json.JSONDecodeError:
                            pass
                        data_lines = []
        except urllib.error.HTTPError as error:
            raise ServiceError(
                error.code, error.read().decode("utf-8", "replace")
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{error.reason}") from None
