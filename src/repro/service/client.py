"""Stdlib HTTP client for the campaign service.

What ``repro submit`` / ``status`` / ``result`` / ``cancel`` and the
examples speak: a thin ``urllib.request`` wrapper around the API of
:mod:`repro.service.api` - JSON in, JSON out, plus a line-level parser
for the Server-Sent-Events progress stream.  No third-party HTTP
library, matching the server side.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional


class ServiceError(RuntimeError):
    """A service request failed; carries the HTTP status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Client for one service endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ----------------------------------------------------------------- #
    # Plumbing.
    # ----------------------------------------------------------------- #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceError(error.code, detail) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{error.reason}") from None

    # ----------------------------------------------------------------- #
    # Endpoints.
    # ----------------------------------------------------------------- #

    def health(self) -> Dict[str, Any]:
        """Server liveness + the registered campaign kinds."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Scheduler gauges, aggregate telemetry and cache counters."""
        return self._request("GET", "/metrics")

    def submit(
        self,
        spec: Dict[str, Any],
        client: str = "",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit a campaign spec; returns its record (with
        ``campaign_id``)."""
        return self._request("POST", "/campaigns", body={
            "spec": spec, "client": client, "priority": priority,
        })

    def list(self) -> List[Dict[str, Any]]:
        """Every campaign record the server knows, in submission order."""
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, Any]:
        """One campaign's record (state, progress, error, ...)."""
        return self._request("GET", f"/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> Dict[str, Any]:
        """The result payload; raises ``ServiceError(409)`` until done."""
        return self._request("GET", f"/campaigns/{campaign_id}/result")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        """Cancel a queued or running campaign."""
        return self._request("DELETE", f"/campaigns/{campaign_id}")

    def cache_info(self) -> Dict[str, Any]:
        """Result-cache counters and disk footprint."""
        return self._request("GET", "/cache")

    def prune_cache(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-used disk entries down to ``max_bytes``."""
        body: Dict[str, Any] = {}
        if max_bytes is not None:
            body["max_bytes"] = int(max_bytes)
        return self._request("POST", "/cache/prune", body=body)

    # ----------------------------------------------------------------- #
    # Waiting and streaming.
    # ----------------------------------------------------------------- #

    def wait(
        self,
        campaign_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the campaign is terminal; returns the final record.

        Raises :class:`ServiceError` (status 0) on timeout - the
        campaign keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(campaign_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"campaign {campaign_id} still {record['state']!r} "
                       f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def stream_events(
        self,
        campaign_id: str,
        start: int = 0,
        timeout: float = 300.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the campaign's progress events as they arrive (SSE).

        Terminates after the terminal event (``done`` / ``failed`` /
        ``cancelled`` / ``requeued``) or when the server closes the
        stream.  ``start`` resumes an event cursor (the ``?from=``
        query parameter).
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events?from={start}",
            headers={"Accept": "text/event-stream"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as stream:
                data_lines: List[str] = []
                for raw in stream:
                    line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                    if line.startswith(":"):
                        continue  # keep-alive comment
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
                        continue
                    if line == "" and data_lines:
                        # Blank line = end of one SSE frame.
                        try:
                            yield json.loads("\n".join(data_lines))
                        except json.JSONDecodeError:
                            pass
                        data_lines = []
        except urllib.error.HTTPError as error:
            raise ServiceError(
                error.code, error.read().decode("utf-8", "replace")
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{error.reason}") from None
