"""Background campaign scheduler: priority queue over ``run_campaign``.

``max_concurrent`` slot threads (default 1) drain one priority queue
into the executor.  Ordering is ``(-priority, seq)``: higher priority
first, FIFO within a level (``seq`` is the store's submission counter,
so ordering survives restarts).  At the default width campaigns execute
strictly one at a time - parallelism belongs *inside* a campaign (its
backend/workers spec keys) - and every historical ordering guarantee
holds unchanged.  Wider schedulers split the worker budget: a campaign
that did not pin ``workers`` gets ``resolve_workers() //
max_concurrent`` so two concurrent campaigns cannot oversubscribe the
box.

Wiring per campaign (one :class:`_Execution` per running slot):

* ``checkpoint=<store>/campaigns/<id>/checkpoint.jsonl`` +
  ``resume=record.resume`` - every finished job is durable, and a
  campaign interrupted by a crash or shutdown continues where it died;
* ``progress=`` - each finished job appends one event to the campaign's
  in-memory event buffer (the SSE endpoint's source), bumps the store's
  progress counter and refreshes the execution's *heartbeat*;
* ``cancel_event=`` - one :class:`threading.Event` per execution.
  :meth:`cancel` sets it (reason ``"cancel"``), the per-campaign
  ``timeout_s`` timer sets it (reason ``"timeout"``), :meth:`stop` sets
  it (reason ``"shutdown"`` - the campaign is *requeued* so a restarted
  server resumes it), and the watchdog sets it (reason ``"stuck: ..."``
  - the campaign is *failed* with that structured reason).  The timer
  closure checks that its execution is still the current one before
  acting, so a timer firing during a shutdown-requeue (or any later
  re-execution of the same campaign) cannot double-terminate - and the
  store's sticky terminal states make even a lost race harmless;
* ``cache=tenant_cache(spec["tenant"])`` - named tenants get their own
  disk namespace; the default tenant shares the process-global cache,
  keeping service results bit-identical to direct CLI runs.

Robustness machinery:

* **Watchdog** (``watchdog_s``): a monitor thread cancels any execution
  whose heartbeat is older than the limit, and - if the slot thread
  still has not unwound after a grace period (it may be wedged in
  foreign code) - force-fails the campaign in the store, abandons the
  wedged slot and spawns a replacement so the queue keeps draining.
* **Crash requeue**: a campaign that dies with
  :class:`~repro.errors.WorkerCrashError` is requeued for resume up to
  ``max_crash_requeues`` times (its journaled jobs are not recomputed),
  then failed.
* **Bounded queue** (``max_queue_depth``): submissions beyond the bound
  raise :class:`QueueFullError` (the API's 503 + ``Retry-After``).
* Per-client quotas are enforced at submission time
  (:class:`QuotaExceededError` -> HTTP 429), counting the client's
  non-terminal campaigns.

Chaos sites consulted here: ``scheduler.worker`` (a slot raises before
executing - the loop survives and the campaign fails with a structured
reason) and ``scheduler.stuck`` (the execution blocks heartbeat-less
until its cancel event fires - what the watchdog exists to detect).
"""

from __future__ import annotations

import heapq
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CampaignCancelledError,
    InjectedFaultError,
    JobError,
    WorkerCrashError,
)
from repro.runtime import (
    Telemetry,
    resolve_workers,
    run_campaign,
    tenant_cache,
)
from repro.runtime.faults import get_injector
from repro.runtime.jobs import JobResult
from repro.service.specs import build_plan
from repro.service.store import CampaignRecord, JobStore

#: Default per-client cap on campaigns in flight (queued + running).
DEFAULT_QUOTA = 8

#: Events kept per campaign; older ones are dropped from the front
#: (the journal, not the event buffer, is the durable record).
EVENT_BUFFER_LIMIT = 10000

#: Default scheduler width: one campaign at a time.
DEFAULT_MAX_CONCURRENT = 1

#: Times a WorkerCrashError campaign is requeued (resuming from its
#: checkpoint) before the crash is declared terminal.
DEFAULT_CRASH_REQUEUES = 2

#: How long past the heartbeat limit the watchdog waits for a cancelled
#: execution to unwind before force-failing it, as a multiple of
#: ``watchdog_s``.
WATCHDOG_GRACE_FACTOR = 2.0


class QuotaExceededError(RuntimeError):
    """A client exceeded its concurrent-campaign quota."""


class QueueFullError(RuntimeError):
    """The scheduler queue is at its depth bound (HTTP 503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass
class _Execution:
    """One running campaign's slot-local state.

    Identity matters: the timeout timer and the watchdog only act when
    ``self._running[campaign_id] is execution`` still holds, so a stale
    closure from a previous execution of the same campaign (requeued
    after shutdown or a crash) can never terminate the new one.
    """

    campaign_id: str
    cancel_event: threading.Event
    #: The slot token owning this execution (see ``_slots``).
    slot: object
    started: float = 0.0
    #: ``time.monotonic()`` of the last sign of life (job completion).
    heartbeat: float = 0.0
    #: Why the cancel event was set ("cancel"/"timeout"/"shutdown"/
    #: "stuck: ...); None while running normally.
    reason: Optional[str] = None
    #: When the watchdog cancelled it as stuck (grace timer origin).
    stuck_since: Optional[float] = None
    #: True once the watchdog force-failed it and gave up on the slot.
    abandoned: bool = False


class CampaignScheduler:
    """Priority scheduler over a :class:`JobStore` with N worker slots."""

    def __init__(
        self,
        store: JobStore,
        quota: int = DEFAULT_QUOTA,
        poll_interval: float = 0.05,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        max_queue_depth: Optional[int] = None,
        watchdog_s: Optional[float] = None,
        max_crash_requeues: int = DEFAULT_CRASH_REQUEUES,
    ) -> None:
        self.store = store
        self.quota = int(quota)
        self.poll_interval = float(poll_interval)
        self.max_concurrent = max(1, int(max_concurrent))
        self.max_queue_depth = (
            None if max_queue_depth is None else max(1, int(max_queue_depth))
        )
        self.watchdog_s = (
            None if not watchdog_s else float(watchdog_s)
        )
        self.max_crash_requeues = max(0, int(max_crash_requeues))
        self.telemetry = Telemetry()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []
        self._queued_ids: set = set()
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._event_cv = threading.Condition(self._lock)
        self._running: Dict[str, _Execution] = {}
        #: Active slot tokens -> their threads; a token removed from
        #: here tells its thread to retire at the next safe point.
        self._slots: Dict[object, threading.Thread] = {}
        self._threads: List[threading.Thread] = []
        self._watchdog_thread: Optional[threading.Thread] = None
        self._watchdog_wake = threading.Event()
        self._crash_retries: Dict[str, int] = {}
        self._stuck_detected = 0
        self._stopping = False
        self._executed = 0
        # Campaigns that survived a restart re-enter the queue first.
        for record in self.store.pending():
            self._push(record)

    # ----------------------------------------------------------------- #
    # Lifecycle.
    # ----------------------------------------------------------------- #

    def start(self) -> None:
        """Start the slot threads and the watchdog (idempotent)."""
        with self._lock:
            self._stopping = False
            missing = self.max_concurrent - len(self._slots)
        for _ in range(max(0, missing)):
            self._spawn_slot()
        if self.watchdog_s and (
            self._watchdog_thread is None
            or not self._watchdog_thread.is_alive()
        ):
            self._watchdog_wake.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="repro-scheduler-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: interrupt every running campaign (each is
        requeued for the next incarnation to resume) and join the slot
        threads."""
        with self._lock:
            self._stopping = True
            for execution in self._running.values():
                execution.reason = "shutdown"
                execution.cancel_event.set()
            self._wakeup.notify_all()
        self._watchdog_wake.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(max(0.0, deadline - time.monotonic()))
            self._watchdog_thread = None
        with self._lock:
            self._slots.clear()
        self._threads = []

    def _spawn_slot(self) -> None:
        token = object()
        thread = threading.Thread(
            target=self._slot_loop,
            args=(token,),
            name="repro-scheduler",
            daemon=True,
        )
        with self._lock:
            self._slots[token] = thread
        self._threads.append(thread)
        thread.start()

    # ----------------------------------------------------------------- #
    # Submission / cancellation.
    # ----------------------------------------------------------------- #

    def submit(
        self,
        spec: Dict[str, Any],
        client: str = "",
        priority: int = 0,
        idempotency_key: str = "",
    ) -> CampaignRecord:
        """Validate, persist and enqueue one campaign.

        Raises :class:`~repro.service.specs.SpecError` on a bad spec,
        :class:`QuotaExceededError` when ``client`` already has
        ``quota`` campaigns in flight, and :class:`QueueFullError` when
        the queue is at its depth bound.  A repeated ``idempotency_key``
        returns the original submission's record without enqueueing
        anything - the server half of safe client-side POST retries.
        """
        if idempotency_key:
            existing = self.store.lookup_idempotent(idempotency_key)
            if existing is not None:
                return existing
        if self.store.active_count(client) >= self.quota:
            raise QuotaExceededError(
                f"client {client!r} already has {self.quota} campaigns "
                "in flight"
            )
        with self._lock:
            depth = len(self._queued_ids)
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            raise QueueFullError(
                f"queue depth {depth} is at its {self.max_queue_depth} "
                "bound; retry later"
            )
        record = self.store.submit(
            spec, client=client, priority=priority,
            idempotency_key=idempotency_key,
        )
        with self._lock:
            # A concurrent duplicate submit (same idempotency key) may
            # hand back a record that is already queued, running or
            # terminal; only a genuinely new submission is pushed.
            if (
                record.state == "queued"
                and record.campaign_id not in self._queued_ids
                and record.campaign_id not in self._running
            ):
                self._push(record)
                self._wakeup.notify_all()
        return record

    def cancel(self, campaign_id: str, reason: str = "cancel") -> bool:
        """Cancel a queued or running campaign.

        Returns True if the campaign was cancellable (False when it is
        already terminal).  A queued campaign is marked cancelled
        immediately; a running one gets its ``cancel_event`` set and the
        slot records the terminal state once the executor unwinds.
        """
        record = self.store.get(campaign_id)
        with self._lock:
            if record.terminal:
                return False
            execution = self._running.get(campaign_id)
            if execution is not None:
                execution.reason = reason
                execution.cancel_event.set()
                return True
            if campaign_id in self._queued_ids:
                self._queued_ids.discard(campaign_id)
        if not self.store.mark_cancelled(campaign_id, reason=reason):
            return False
        self._emit(campaign_id, {"event": "cancelled", "reason": reason})
        return True

    # ----------------------------------------------------------------- #
    # Events.
    # ----------------------------------------------------------------- #

    def events(self, campaign_id: str, start: int = 0) -> List[Dict[str, Any]]:
        """The buffered events of one campaign, from index ``start``."""
        with self._lock:
            return list(self._events.get(campaign_id, [])[start:])

    def wait_events(
        self, campaign_id: str, start: int, timeout: float = 10.0
    ) -> List[Dict[str, Any]]:
        """Block until the campaign has events past ``start`` (or it is
        terminal, or ``timeout`` elapses); the SSE endpoint's long poll."""
        with self._lock:
            remaining = timeout
            while True:
                buffered = self._events.get(campaign_id, [])
                if len(buffered) > start:
                    return list(buffered[start:])
                if self.store.get(campaign_id).terminal or remaining <= 0:
                    return []
                waited = min(remaining, 0.5)
                self._event_cv.wait(waited)
                remaining -= waited

    def _emit(self, campaign_id: str, event: Dict[str, Any]) -> None:
        with self._lock:
            buffer = self._events.setdefault(campaign_id, [])
            buffer.append(event)
            if len(buffer) > EVENT_BUFFER_LIMIT:
                del buffer[: len(buffer) - EVENT_BUFFER_LIMIT]
            self._event_cv.notify_all()

    # ----------------------------------------------------------------- #
    # Introspection.
    # ----------------------------------------------------------------- #

    def liveness(self) -> Dict[str, Any]:
        """Scheduler health for ``/healthz``: are the slots alive, and
        how stale is the oldest running campaign's heartbeat (an
        orchestrator restarts the service when this grows without
        bound)."""
        now = time.monotonic()
        with self._lock:
            slots_alive = sum(
                1 for thread in self._slots.values() if thread.is_alive()
            )
            ages = [
                now - execution.heartbeat
                for execution in self._running.values()
            ]
            running = sorted(self._running)
        return {
            "alive": slots_alive > 0,
            "slots_alive": slots_alive,
            "max_concurrent": self.max_concurrent,
            "running": running,
            "last_heartbeat_age_s": max(ages) if ages else None,
            "watchdog_s": self.watchdog_s,
            "stuck_detected": self._stuck_detected,
        }

    def metrics(self) -> Dict[str, Any]:
        """The scheduler half of the ``/metrics`` payload."""
        with self._lock:
            queued = len(self._queued_ids)
            running = sorted(self._running)
            executed = self._executed
        payload: Dict[str, Any] = {
            "campaigns": self.store.counts(),
            "queue_depth": queued,
            "max_queue_depth": self.max_queue_depth,
            "running": running,
            "campaigns_executed": executed,
            "scheduler": self.liveness(),
            "journal_quarantined": self.store.quarantined,
            "telemetry": self.telemetry.as_dict(),
        }
        injector = get_injector()
        if injector.active:
            payload["faults"] = injector.stats()
        return payload

    # ----------------------------------------------------------------- #
    # Worker internals.
    # ----------------------------------------------------------------- #

    def _push(self, record: CampaignRecord) -> None:
        heapq.heappush(
            self._queue, (-record.priority, record.seq, record.campaign_id)
        )
        self._queued_ids.add(record.campaign_id)

    def _pop(self) -> Optional[str]:
        while self._queue:
            _, _, campaign_id = heapq.heappop(self._queue)
            # Lazily skip entries cancelled while queued.
            if campaign_id in self._queued_ids:
                self._queued_ids.discard(campaign_id)
                return campaign_id
        return None

    def _slot_loop(self, token: object) -> None:
        while True:
            with self._lock:
                if token not in self._slots:
                    return  # retired by the watchdog
                while not self._stopping and not self._queued_ids:
                    self._wakeup.wait(self.poll_interval)
                    if token not in self._slots:
                        return
                if self._stopping:
                    return
                campaign_id = self._pop()
                if campaign_id is None:
                    continue
                now = time.monotonic()
                execution = _Execution(
                    campaign_id=campaign_id,
                    cancel_event=threading.Event(),
                    slot=token,
                    started=now,
                    heartbeat=now,
                )
                self._running[campaign_id] = execution
            try:
                self._execute(execution)
            finally:
                with self._lock:
                    if self._running.get(campaign_id) is execution:
                        del self._running[campaign_id]
                    self._executed += 1
                    retired = token not in self._slots
                if retired:
                    return

    def _worker_budget(self, executor: Dict[str, Any]) -> Dict[str, Any]:
        """Split the box's worker budget across concurrent slots.

        Only campaigns that did not pin ``workers`` are throttled - an
        explicit width is an operator's choice - and serial campaigns
        are untouched.
        """
        if (
            self.max_concurrent > 1
            and executor.get("max_workers") is None
            and executor.get("backend") not in (None, "serial")
        ):
            executor = dict(executor)
            executor["max_workers"] = max(
                1, resolve_workers(None) // self.max_concurrent
            )
        return executor

    def _execute(self, execution: _Execution) -> None:
        campaign_id = execution.campaign_id
        record = self.store.get(campaign_id)
        timer: Optional[threading.Timer] = None
        telemetry = Telemetry()
        injector = get_injector()
        try:
            if injector.active and injector.should_fire("scheduler.worker"):
                raise InjectedFaultError(
                    "injected scheduler worker failure (scheduler.worker)"
                )
            plan = build_plan(record.spec)
            executor = self._worker_budget(plan.executor)
            self.store.mark_running(campaign_id, total=len(plan.jobs))
            self._emit(campaign_id, {
                "event": "started",
                "total": len(plan.jobs),
                "resume": record.resume,
            })

            timeout_s = record.spec.get("timeout_s")
            if timeout_s is not None:
                def _expire() -> None:
                    with self._lock:
                        # Identity check: only the execution this timer
                        # was armed for may be expired.  A timer that
                        # outlives its execution (shutdown-requeue, a
                        # crash-requeue already re-running the campaign)
                        # finds a different object - or none - and does
                        # nothing.
                        if self._running.get(campaign_id) is not execution:
                            return
                        if execution.cancel_event.is_set():
                            return
                        execution.reason = "timeout"
                    execution.cancel_event.set()
                timer = threading.Timer(float(timeout_s), _expire)
                timer.daemon = True
                timer.start()

            if injector.active and injector.should_fire("scheduler.stuck"):
                # Heartbeat-less limbo until someone (the watchdog, a
                # user cancel, shutdown) sets the cancel event.
                execution.cancel_event.wait()
                raise CampaignCancelledError(
                    "injected stuck campaign interrupted", completed=0
                )

            done = {"count": 0}

            def progress(index: int, result: Any) -> None:
                execution.heartbeat = time.monotonic()
                done["count"] += 1
                self.store.mark_progress(campaign_id, done["count"])
                event: Dict[str, Any] = {
                    "event": "job",
                    "index": index,
                    "done": done["count"],
                    "total": len(plan.jobs),
                }
                if isinstance(result, JobResult):
                    event.update(
                        skew=result.skew,
                        vmin=result.vmin_late,
                        cached=result.cached,
                        resumed=result.resumed,
                    )
                elif isinstance(result, JobError):
                    event.update(error=result.error, message=result.message)
                self._emit(campaign_id, event)

            cache: Any = "default"
            if plan.evaluate is not None:
                cache = None
            elif record.spec.get("no_cache"):
                cache = None
            elif record.spec.get("tenant"):
                cache = tenant_cache(record.spec["tenant"])

            campaign = run_campaign(
                plan.jobs,
                cache=cache,
                telemetry=telemetry,
                evaluate=plan.evaluate,
                checkpoint=str(self.store.checkpoint_path(campaign_id)),
                resume=record.resume,
                progress=progress,
                cancel_event=execution.cancel_event,
                **executor,
            )
            payload = plan.fold(campaign)
            if self.store.mark_done(campaign_id, payload):
                self._emit(campaign_id, {
                    "event": "done",
                    "total": len(plan.jobs),
                    "errors": len(campaign.errors),
                })
        except CampaignCancelledError as error:
            with self._lock:
                reason = execution.reason or "cancel"
            if reason == "shutdown":
                if self.store.requeue(campaign_id, completed=error.completed):
                    self._emit(campaign_id, {
                        "event": "requeued",
                        "completed": error.completed,
                    })
            elif reason.startswith("stuck"):
                # The watchdog cancelled it; the structured reason makes
                # this a failure, not a user cancellation.  (If the
                # grace period already force-failed it, the sticky store
                # makes this a no-op.)
                if self.store.mark_failed(campaign_id, reason):
                    self._emit(campaign_id, {
                        "event": "failed",
                        "error": "StuckCampaign",
                        "message": reason,
                    })
            else:
                if self.store.mark_cancelled(
                    campaign_id, reason=reason, completed=error.completed
                ):
                    self._emit(campaign_id, {
                        "event": "cancelled",
                        "reason": reason,
                        "completed": error.completed,
                    })
        except WorkerCrashError as error:
            self._handle_crash(campaign_id, error)
        except Exception as error:  # noqa: BLE001 - worker must survive
            if self.store.mark_failed(
                campaign_id, f"{type(error).__name__}: {error}"
            ):
                self._emit(campaign_id, {
                    "event": "failed",
                    "error": type(error).__name__,
                    "message": str(error),
                    "trace": traceback.format_exc(limit=5),
                })
        finally:
            if timer is not None:
                timer.cancel()
            with self._lock:
                self.telemetry.merge(telemetry)

    def _handle_crash(
        self, campaign_id: str, error: WorkerCrashError
    ) -> None:
        """Requeue a crash-killed campaign for resume (bounded), then
        declare it failed."""
        with self._lock:
            attempts = self._crash_retries.get(campaign_id, 0) + 1
            self._crash_retries[campaign_id] = attempts
            stopping = self._stopping
        if attempts <= self.max_crash_requeues and not stopping:
            record = self.store.get(campaign_id)
            if self.store.requeue(campaign_id, completed=record.completed):
                self._emit(campaign_id, {
                    "event": "requeued",
                    "crash": True,
                    "attempt": attempts,
                    "message": error.message,
                })
                with self._lock:
                    self._push(self.store.get(campaign_id))
                    self._wakeup.notify_all()
                return
        if self.store.mark_failed(
            campaign_id, f"WorkerCrashError: {error.message}"
        ):
            self._emit(campaign_id, {
                "event": "failed",
                "error": "WorkerCrashError",
                "message": error.message,
            })

    # ----------------------------------------------------------------- #
    # Watchdog.
    # ----------------------------------------------------------------- #

    def _watchdog_loop(self) -> None:
        interval = max(0.02, min(0.5, self.watchdog_s / 4.0))
        grace = self.watchdog_s * WATCHDOG_GRACE_FACTOR
        while not self._watchdog_wake.wait(interval):
            with self._lock:
                if self._stopping:
                    return
                executions = list(self._running.values())
            now = time.monotonic()
            for execution in executions:
                if execution.abandoned:
                    continue
                if execution.stuck_since is None:
                    age = now - execution.heartbeat
                    if (
                        age > self.watchdog_s
                        and not execution.cancel_event.is_set()
                    ):
                        with self._lock:
                            current = self._running.get(execution.campaign_id)
                            if current is not execution:
                                continue
                            execution.reason = (
                                f"stuck: no heartbeat for {age:.1f}s "
                                f"(limit {self.watchdog_s:g}s)"
                            )
                            execution.stuck_since = now
                            self._stuck_detected += 1
                        execution.cancel_event.set()
                elif now - execution.stuck_since > grace:
                    # Cancelled but never unwound: the slot is wedged.
                    self._force_fail(execution)

    def _force_fail(self, execution: _Execution) -> None:
        """Fail a wedged execution in the store, abandon its slot and
        spawn a replacement so the queue keeps draining."""
        with self._lock:
            if self._running.get(execution.campaign_id) is not execution:
                return
            execution.abandoned = True
            del self._running[execution.campaign_id]
            self._slots.pop(execution.slot, None)
            stopping = self._stopping
        reason = execution.reason or "stuck: watchdog force-fail"
        if self.store.mark_failed(execution.campaign_id, reason):
            self._emit(execution.campaign_id, {
                "event": "failed",
                "error": "StuckCampaign",
                "message": reason,
                "forced": True,
            })
        if not stopping:
            self._spawn_slot()
