"""Background campaign scheduler: priority queue over ``run_campaign``.

One worker thread drains a priority queue into the executor.  Ordering
is ``(-priority, seq)``: higher priority first, FIFO within a level
(``seq`` is the store's submission counter, so ordering survives
restarts).  Campaigns execute strictly one at a time - parallelism
belongs *inside* a campaign (its backend/workers spec keys), where the
cache, prefix planner and batch engine can exploit structure; running
campaigns concurrently would only thrash the process pool.

Wiring per campaign:

* ``checkpoint=<store>/campaigns/<id>/checkpoint.jsonl`` +
  ``resume=record.resume`` - every finished job is durable, and a
  campaign interrupted by a crash or shutdown continues where it died;
* ``progress=`` - each finished job appends one event to the campaign's
  in-memory event buffer (the SSE endpoint's source) and bumps the
  store's progress counter;
* ``cancel_event=`` - one :class:`threading.Event` per running
  campaign.  :meth:`cancel` sets it (reason ``"cancel"``), the
  per-campaign ``timeout_s`` timer sets it (reason ``"timeout"``), and
  :meth:`stop` sets it (reason ``"shutdown"``).  Shutdown *requeues*
  the campaign instead of cancelling it - a restarted server picks it
  up and resumes from the checkpoint;
* ``cache=tenant_cache(spec["tenant"])`` - named tenants get their own
  disk namespace; the default tenant shares the process-global cache,
  keeping service results bit-identical to direct CLI runs.

Per-client quotas are enforced at submission time
(:class:`QuotaExceededError` -> HTTP 429), counting the client's
non-terminal campaigns.
"""

from __future__ import annotations

import heapq
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CampaignCancelledError, JobError
from repro.runtime import Telemetry, run_campaign, tenant_cache
from repro.runtime.jobs import JobResult
from repro.service.specs import build_plan
from repro.service.store import CampaignRecord, JobStore

#: Default per-client cap on campaigns in flight (queued + running).
DEFAULT_QUOTA = 8

#: Events kept per campaign; older ones are dropped from the front
#: (the journal, not the event buffer, is the durable record).
EVENT_BUFFER_LIMIT = 10000


class QuotaExceededError(RuntimeError):
    """A client exceeded its concurrent-campaign quota."""


class CampaignScheduler:
    """Single-worker priority scheduler over a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        quota: int = DEFAULT_QUOTA,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store
        self.quota = int(quota)
        self.poll_interval = float(poll_interval)
        self.telemetry = Telemetry()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []
        self._queued_ids: set = set()
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._event_cv = threading.Condition(self._lock)
        self._cancel: Dict[str, threading.Event] = {}
        self._cancel_reason: Dict[str, str] = {}
        self._running_id: Optional[str] = None
        self._stopping = False
        self._executed = 0
        self._thread: Optional[threading.Thread] = None
        # Campaigns that survived a restart re-enter the queue first.
        for record in self.store.pending():
            self._push(record)

    # ----------------------------------------------------------------- #
    # Lifecycle.
    # ----------------------------------------------------------------- #

    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: interrupt the running campaign (it is
        requeued for the next incarnation to resume) and join the
        worker."""
        with self._lock:
            self._stopping = True
            if self._running_id is not None:
                self._cancel_reason[self._running_id] = "shutdown"
                self._cancel[self._running_id].set()
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ----------------------------------------------------------------- #
    # Submission / cancellation.
    # ----------------------------------------------------------------- #

    def submit(
        self, spec: Dict[str, Any], client: str = "", priority: int = 0
    ) -> CampaignRecord:
        """Validate, persist and enqueue one campaign.

        Raises :class:`~repro.service.specs.SpecError` on a bad spec and
        :class:`QuotaExceededError` when ``client`` already has
        ``quota`` campaigns in flight.
        """
        if self.store.active_count(client) >= self.quota:
            raise QuotaExceededError(
                f"client {client!r} already has {self.quota} campaigns "
                "in flight"
            )
        record = self.store.submit(spec, client=client, priority=priority)
        with self._lock:
            self._push(record)
            self._wakeup.notify_all()
        return record

    def cancel(self, campaign_id: str, reason: str = "cancel") -> bool:
        """Cancel a queued or running campaign.

        Returns True if the campaign was cancellable (False when it is
        already terminal).  A queued campaign is marked cancelled
        immediately; a running one gets its ``cancel_event`` set and the
        worker records the terminal state once the executor unwinds.
        """
        record = self.store.get(campaign_id)
        with self._lock:
            if record.terminal:
                return False
            if campaign_id == self._running_id:
                self._cancel_reason[campaign_id] = reason
                self._cancel[campaign_id].set()
                return True
            if campaign_id in self._queued_ids:
                self._queued_ids.discard(campaign_id)
        self.store.mark_cancelled(campaign_id, reason=reason)
        self._emit(campaign_id, {"event": "cancelled", "reason": reason})
        return True

    # ----------------------------------------------------------------- #
    # Events.
    # ----------------------------------------------------------------- #

    def events(self, campaign_id: str, start: int = 0) -> List[Dict[str, Any]]:
        """The buffered events of one campaign, from index ``start``."""
        with self._lock:
            return list(self._events.get(campaign_id, [])[start:])

    def wait_events(
        self, campaign_id: str, start: int, timeout: float = 10.0
    ) -> List[Dict[str, Any]]:
        """Block until the campaign has events past ``start`` (or it is
        terminal, or ``timeout`` elapses); the SSE endpoint's long poll."""
        with self._lock:
            remaining = timeout
            while True:
                buffered = self._events.get(campaign_id, [])
                if len(buffered) > start:
                    return list(buffered[start:])
                if self.store.get(campaign_id).terminal or remaining <= 0:
                    return []
                waited = min(remaining, 0.5)
                self._event_cv.wait(waited)
                remaining -= waited

    def _emit(self, campaign_id: str, event: Dict[str, Any]) -> None:
        with self._lock:
            buffer = self._events.setdefault(campaign_id, [])
            buffer.append(event)
            if len(buffer) > EVENT_BUFFER_LIMIT:
                del buffer[: len(buffer) - EVENT_BUFFER_LIMIT]
            self._event_cv.notify_all()

    # ----------------------------------------------------------------- #
    # Introspection.
    # ----------------------------------------------------------------- #

    def metrics(self) -> Dict[str, Any]:
        """The scheduler half of the ``/metrics`` payload."""
        with self._lock:
            queued = len(self._queued_ids)
            running = self._running_id
            executed = self._executed
        return {
            "campaigns": self.store.counts(),
            "queue_depth": queued,
            "running": running,
            "campaigns_executed": executed,
            "telemetry": self.telemetry.as_dict(),
        }

    # ----------------------------------------------------------------- #
    # Worker internals.
    # ----------------------------------------------------------------- #

    def _push(self, record: CampaignRecord) -> None:
        heapq.heappush(
            self._queue, (-record.priority, record.seq, record.campaign_id)
        )
        self._queued_ids.add(record.campaign_id)

    def _pop(self) -> Optional[str]:
        while self._queue:
            _, _, campaign_id = heapq.heappop(self._queue)
            # Lazily skip entries cancelled while queued.
            if campaign_id in self._queued_ids:
                self._queued_ids.discard(campaign_id)
                return campaign_id
        return None

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and not self._queued_ids:
                    self._wakeup.wait(self.poll_interval)
                if self._stopping:
                    return
                campaign_id = self._pop()
                if campaign_id is None:
                    continue
                self._running_id = campaign_id
                cancel_event = threading.Event()
                self._cancel[campaign_id] = cancel_event
                self._cancel_reason.pop(campaign_id, None)
            try:
                self._execute(campaign_id, cancel_event)
            finally:
                with self._lock:
                    self._running_id = None
                    self._cancel.pop(campaign_id, None)

    def _execute(self, campaign_id: str, cancel_event: threading.Event) -> None:
        record = self.store.get(campaign_id)
        timer: Optional[threading.Timer] = None
        try:
            plan = build_plan(record.spec)
            self.store.mark_running(campaign_id, total=len(plan.jobs))
            self._emit(campaign_id, {
                "event": "started",
                "total": len(plan.jobs),
                "resume": record.resume,
            })

            timeout_s = record.spec.get("timeout_s")
            if timeout_s is not None:
                def _expire() -> None:
                    with self._lock:
                        self._cancel_reason[campaign_id] = "timeout"
                    cancel_event.set()
                timer = threading.Timer(float(timeout_s), _expire)
                timer.daemon = True
                timer.start()

            done = {"count": 0}

            def progress(index: int, result: Any) -> None:
                done["count"] += 1
                self.store.mark_progress(campaign_id, done["count"])
                event: Dict[str, Any] = {
                    "event": "job",
                    "index": index,
                    "done": done["count"],
                    "total": len(plan.jobs),
                }
                if isinstance(result, JobResult):
                    event.update(
                        skew=result.skew,
                        vmin=result.vmin_late,
                        cached=result.cached,
                        resumed=result.resumed,
                    )
                elif isinstance(result, JobError):
                    event.update(error=result.error, message=result.message)
                self._emit(campaign_id, event)

            cache: Any = "default"
            if plan.evaluate is not None:
                cache = None
            elif record.spec.get("no_cache"):
                cache = None
            elif record.spec.get("tenant"):
                cache = tenant_cache(record.spec["tenant"])

            campaign = run_campaign(
                plan.jobs,
                cache=cache,
                telemetry=self.telemetry,
                evaluate=plan.evaluate,
                checkpoint=str(self.store.checkpoint_path(campaign_id)),
                resume=record.resume,
                progress=progress,
                cancel_event=cancel_event,
                **plan.executor,
            )
            payload = plan.fold(campaign)
            self.store.mark_done(campaign_id, payload)
            self._emit(campaign_id, {
                "event": "done",
                "total": len(plan.jobs),
                "errors": len(campaign.errors),
            })
        except CampaignCancelledError as error:
            with self._lock:
                reason = self._cancel_reason.get(campaign_id, "cancel")
            if reason == "shutdown":
                self.store.requeue(campaign_id, completed=error.completed)
                self._emit(campaign_id, {
                    "event": "requeued",
                    "completed": error.completed,
                })
            else:
                self.store.mark_cancelled(
                    campaign_id, reason=reason, completed=error.completed
                )
                self._emit(campaign_id, {
                    "event": "cancelled",
                    "reason": reason,
                    "completed": error.completed,
                })
        except Exception as error:  # noqa: BLE001 - worker must survive
            self.store.mark_failed(
                campaign_id, f"{type(error).__name__}: {error}"
            )
            self._emit(campaign_id, {
                "event": "failed",
                "error": type(error).__name__,
                "message": str(error),
                "trace": traceback.format_exc(limit=5),
            })
        finally:
            if timer is not None:
                timer.cancel()
            with self._lock:
                self._executed += 1
