"""Campaign specs: the JSON job descriptions the service accepts.

A *spec* is a plain JSON dict describing one campaign in the same
parameter conventions the CLI subcommands use (loads in fF, times in
ns), so ``repro submit`` forwards its flags verbatim and a curl user can
read the README quickstart and write one by hand.  Two kinds ship:

``sensitivity``
    The Fig.-4 family: a (loads x slews x skews) grid, folded into
    ``Vmin(tau)`` curves with interpolated ``tau_min`` - exactly what
    the ``repro campaign`` subcommand computes.
``montecarlo``
    The Fig.-5 scatter: a seeded random population evaluated over a
    skew grid - exactly what ``repro montecarlo`` computes.
``whole_tree``
    Full-chip clock networks (buffered H-tree or TRIX-style grid) with
    N sensing circuits attached, one seed/fault scenario per job -
    exactly what ``repro whole-tree`` computes, on the sparse MNA path.

:func:`normalize_spec` validates a raw dict (unknown kinds and keys are
errors - a typo must not silently fall back to a default) and fills in
the defaults; :func:`build_plan` compiles a normalized spec into a
:class:`CampaignPlan`: the exact :class:`~repro.runtime.SensorJob` list
a direct CLI run would build (same content addresses, same warm-start
resolution - that is what makes service results bit-identical to local
ones), the executor keyword arguments, and a ``fold`` function reducing
the ordered campaign results to the JSON result payload.

The registry is open: :func:`register_kind` lets tests and future job
families (jitter sweeps, aging campaigns, ...) plug in new kinds without
touching the store, scheduler or API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analog.engine import TransientOptions
from repro.units import VTH_INTERPRET, fF, ns

#: The CLI's fast-but-accurate-enough transient options (the ``_FAST``
#: the ``repro`` subcommands have always used); specs default to these
#: so a service campaign reproduces the CLI run bit-identically.
FAST_OPTIONS = TransientOptions(dt_max=200e-12, reltol=5e-3)


class SpecError(ValueError):
    """A campaign spec failed validation (unknown kind/key, bad value)."""


@dataclass
class CampaignPlan:
    """A compiled spec: jobs, executor kwargs, and the result folder."""

    #: Ordered job list, exactly what a direct CLI run would submit.
    jobs: List[Any]
    #: Reduce the ordered campaign results to the JSON result payload.
    fold: Callable[[Any], Dict[str, Any]]
    #: Keyword arguments for :func:`repro.runtime.run_campaign`
    #: (``backend``, ``max_workers``, ``batch_workers``, ``chunksize``,
    #: ``retries``, ``on_error``).
    executor: Dict[str, Any] = field(default_factory=dict)
    #: Evaluation override (test kinds only; forces ``cache=None``).
    evaluate: Optional[Callable[[Any], Any]] = None


#: Executor-facing keys shared by every spec kind, with defaults.
_COMMON_DEFAULTS: Dict[str, Any] = {
    "backend": "serial",
    "workers": None,
    "batch_workers": None,  # None = resolve from REPRO_BATCH_WORKERS
    "chunksize": None,
    "retries": 1,
    "on_error": "raise",
    "warm_start": None,   # None = resolve from REPRO_WARM_START
    "no_cache": False,
    "fast": True,         # FAST_OPTIONS vs engine defaults
    "tenant": "",         # cache namespace salt ("" = shared default)
    "timeout_s": None,    # per-campaign wall budget (scheduler-enforced)
}

_KIND_DEFAULTS: Dict[str, Dict[str, Any]] = {}
_KIND_BUILDERS: Dict[str, Callable[[Dict[str, Any]], CampaignPlan]] = {}


def register_kind(
    name: str,
    defaults: Dict[str, Any],
    build: Callable[[Dict[str, Any]], CampaignPlan],
) -> None:
    """Register a campaign kind: its spec defaults and plan builder."""
    _KIND_DEFAULTS[name] = dict(defaults)
    _KIND_BUILDERS[name] = build


def spec_kinds() -> List[str]:
    """The registered campaign kinds."""
    return sorted(_KIND_BUILDERS)


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Validate ``spec`` and return a copy with every default explicit.

    Unknown kinds and unknown keys raise :class:`SpecError`; the service
    must reject a typo rather than quietly simulate something else.
    """
    if not isinstance(spec, dict):
        raise SpecError(f"spec must be a JSON object, got {type(spec).__name__}")
    kind = spec.get("kind", "sensitivity")
    if kind not in _KIND_BUILDERS:
        raise SpecError(
            f"unknown campaign kind {kind!r} (registered: {spec_kinds()})"
        )
    allowed = {"kind"} | set(_COMMON_DEFAULTS) | set(_KIND_DEFAULTS[kind])
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise SpecError(f"unknown spec key(s) for kind {kind!r}: {unknown}")
    normalized: Dict[str, Any] = {"kind": kind}
    for key, default in {**_COMMON_DEFAULTS, **_KIND_DEFAULTS[kind]}.items():
        normalized[key] = spec.get(key, default)
    _validate_common(normalized)
    return normalized


def _validate_common(spec: Dict[str, Any]) -> None:
    from repro.runtime import BACKENDS, ON_ERROR_MODES

    if spec["backend"] not in BACKENDS:
        raise SpecError(
            f"unknown backend {spec['backend']!r} (use one of {BACKENDS})"
        )
    if spec["on_error"] not in ON_ERROR_MODES:
        raise SpecError(
            f"unknown on_error {spec['on_error']!r} "
            f"(use one of {ON_ERROR_MODES})"
        )
    if spec["timeout_s"] is not None and float(spec["timeout_s"]) <= 0:
        raise SpecError("timeout_s must be positive")
    if spec["batch_workers"] is not None and (
            not isinstance(spec["batch_workers"], int)
            or spec["batch_workers"] < 1):
        raise SpecError("batch_workers must be a positive integer")
    if not isinstance(spec["tenant"], str):
        raise SpecError("tenant must be a string")


def build_plan(spec: Dict[str, Any]) -> CampaignPlan:
    """Compile a (normalized or raw) spec into its :class:`CampaignPlan`."""
    spec = normalize_spec(spec)
    return _KIND_BUILDERS[spec["kind"]](spec)


def _options(spec: Dict[str, Any]) -> Optional[TransientOptions]:
    return FAST_OPTIONS if spec.get("fast", True) else None


def _executor_kwargs(spec: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "backend": spec["backend"],
        "max_workers": spec["workers"],
        "batch_workers": spec["batch_workers"],
        "chunksize": spec["chunksize"],
        "retries": int(spec["retries"]),
        "on_error": spec["on_error"],
    }


def _float_list(spec: Dict[str, Any], key: str) -> List[float]:
    values = spec[key]
    if (not isinstance(values, (list, tuple)) or not values
            or not all(isinstance(v, (int, float)) for v in values)):
        raise SpecError(f"{key} must be a non-empty list of numbers")
    return [float(v) for v in values]


def _job_payload(index: int, key: str, result: Any) -> Dict[str, Any]:
    """Per-job entry of a result payload (JobResult or JobError)."""
    from repro.errors import JobError

    if isinstance(result, JobError):
        return {"index": index, "key": key, "error": result.error,
                "message": result.message}
    data = result.to_payload()
    data.update(index=index, key=key, cached=result.cached,
                resumed=result.resumed)
    return data


# --------------------------------------------------------------------- #
# Kind: sensitivity (the Fig.-4 family, = `repro campaign`).
# --------------------------------------------------------------------- #

def _skew_grid(tau_max_ns: float, points: int) -> List[float]:
    if points < 2:
        raise SpecError("points must be >= 2")
    return [ns(tau_max_ns) * k / (points - 1) for k in range(points)]


def _build_sensitivity(spec: Dict[str, Any]) -> CampaignPlan:
    from repro.runtime import sensitivity_job

    loads = [fF(v) for v in _float_list(spec, "loads_ff")]
    slews = [ns(v) for v in _float_list(spec, "slews_ns")]
    skews = _skew_grid(float(spec["tau_max_ns"]), int(spec["points"]))
    options = _options(spec)
    pairs = [(load, slew) for load in loads for slew in slews]
    jobs = [
        sensitivity_job(load, slew, tau, options=options,
                        warm_start=spec["warm_start"])
        for load, slew in pairs
        for tau in skews
    ]

    def fold(campaign: Any) -> Dict[str, Any]:
        import numpy as np

        from repro.core.sensitivity import SensitivityCurve

        curves = []
        for block, (load, slew) in enumerate(pairs):
            chunk = campaign.results[block * len(skews):(block + 1) * len(skews)]
            vmins = np.array([
                getattr(result, "vmin_late", float("nan")) for result in chunk
            ])
            curve = SensitivityCurve(
                load=load, slew=slew, skews=np.array(skews), vmins=vmins,
                threshold=VTH_INTERPRET,
            )
            curves.append({
                "load_f": load,
                "slew_s": slew,
                "skews_s": list(skews),
                "vmins_v": [float(v) for v in vmins],
                "tau_min_s": curve.tau_min,
            })
        return {
            "kind": "sensitivity",
            "curves": curves,
            "jobs": [
                _job_payload(i, jobs[i].key(), r)
                for i, r in enumerate(campaign.results)
            ],
        }

    return CampaignPlan(jobs=jobs, fold=fold, executor=_executor_kwargs(spec))


register_kind(
    "sensitivity",
    defaults={
        "loads_ff": [80.0, 160.0, 240.0],
        "slews_ns": [0.2],
        "tau_max_ns": 0.5,
        "points": 8,
    },
    build=_build_sensitivity,
)


# --------------------------------------------------------------------- #
# Kind: montecarlo (the Fig.-5 scatter, = `repro montecarlo`).
# --------------------------------------------------------------------- #

def _build_montecarlo(spec: Dict[str, Any]) -> CampaignPlan:
    from repro.montecarlo.parallel import sample_job
    from repro.montecarlo.sampling import sample_population

    n_samples = int(spec["samples"])
    if n_samples < 1:
        raise SpecError("samples must be >= 1")
    if spec["seed"] is None:
        # Fresh draws would make the campaign non-reproducible *and*
        # non-resumable (a restart would re-draw a different population).
        raise SpecError("montecarlo specs must carry an explicit seed")
    skews = [ns(v) for v in _float_list(spec, "skews_ns")]
    samples = sample_population(
        n_samples, fF(float(spec["load_ff"])), seed=int(spec["seed"])
    )
    options = _options(spec)
    jobs = [
        sample_job(sample, tau, options=options, warm_start=spec["warm_start"])
        for sample in samples
        for tau in skews
    ]

    def fold(campaign: Any) -> Dict[str, Any]:
        points = [
            {
                "skew_s": jobs[i].skew,
                "vmin_v": getattr(result, "vmin_late", float("nan")),
                "sample_index": i // len(skews),
            }
            for i, result in enumerate(campaign.results)
        ]
        flagged = {}
        for tau in skews:
            vmins = [p["vmin_v"] for p in points if p["skew_s"] == tau]
            flagged[repr(tau)] = sum(1 for v in vmins if v > VTH_INTERPRET)
        return {
            "kind": "montecarlo",
            "points": points,
            "flagged": flagged,
            "jobs": [
                _job_payload(i, jobs[i].key(), r)
                for i, r in enumerate(campaign.results)
            ],
        }

    return CampaignPlan(jobs=jobs, fold=fold, executor=_executor_kwargs(spec))


register_kind(
    "montecarlo",
    defaults={
        "samples": 30,
        "seed": None,
        "load_ff": 160.0,
        "skews_ns": [0.0, 0.05, 0.1, 0.15, 0.25, 0.4],
    },
    build=_build_montecarlo,
)


# --------------------------------------------------------------------- #
# Kind: whole_tree (full-chip clock network + N sensors, = `repro
# whole-tree`; runs on the sparse MNA path).
# --------------------------------------------------------------------- #

def _build_whole_tree(spec: Dict[str, Any]) -> CampaignPlan:
    from dataclasses import replace

    from repro.clocktree.whole_tree import (
        WholeTreeJob,
        evaluate_whole_tree_job,
    )

    topology = spec["topology"]
    if topology not in ("htree", "grid"):
        raise SpecError(f"topology must be 'htree' or 'grid', got {topology!r}")
    seeds = spec["seeds"]
    if (not isinstance(seeds, (list, tuple)) or not seeds
            or not all(isinstance(s, int) for s in seeds)):
        raise SpecError("seeds must be a non-empty list of integers")
    if int(spec["sensors"]) < 1:
        raise SpecError("sensors must be >= 1")
    grid = spec["grid"]
    if (not isinstance(grid, (list, tuple)) or len(grid) != 2
            or not all(isinstance(g, int) and g >= 2 for g in grid)):
        raise SpecError("grid must be [rows, cols] with both >= 2")
    fault = None
    if spec["fault_node"] is not None:
        fault = ("resistive_open", str(spec["fault_node"]),
                 float(spec["fault_extra_kohm"]) * 1e3)
    dead = tuple(
        (int(r), int(c)) for r, c in (spec["dead_injections"] or [])
    )
    options = _options(spec)
    if options is not None:
        # Whole-chip instances are exactly the node counts the sparse
        # path exists for; "auto" keeps small test trees on dense reuse.
        options = replace(options, jacobian_policy="auto")
    jobs = [
        WholeTreeJob(
            topology=topology,
            levels=int(spec["levels"]),
            rows=int(grid[0]),
            cols=int(grid[1]),
            n_sensors=int(spec["sensors"]),
            variation=float(spec["variation"]),
            seed=int(seed),
            fault=fault,
            dead_injections=dead,
            segments_per_wire=int(spec["segments_per_wire"]),
            options=options,
        )
        for seed in seeds
    ]

    def fold(campaign: Any) -> Dict[str, Any]:
        runs = []
        for i, result in enumerate(campaign.results):
            entry: Dict[str, Any] = {"seed": jobs[i].seed}
            if getattr(result, "ok", False):
                entry.update(
                    worst_skew_s=result.skew,
                    code=list(result.code),
                    flagged=result.error_detected,
                )
            runs.append(entry)
        return {
            "kind": "whole_tree",
            "topology": topology,
            "runs": runs,
            "flagged": sum(1 for r in runs if r.get("flagged")),
            "jobs": [
                _job_payload(i, jobs[i].key(), r)
                for i, r in enumerate(campaign.results)
            ],
        }

    return CampaignPlan(
        jobs=jobs, fold=fold, executor=_executor_kwargs(spec),
        evaluate=evaluate_whole_tree_job,
    )


register_kind(
    "whole_tree",
    defaults={
        "topology": "htree",
        "levels": 2,
        "grid": [6, 6],
        "sensors": 2,
        "variation": 0.0,
        "seeds": [0],
        "fault_node": None,
        "fault_extra_kohm": 0.0,
        "dead_injections": [],
        "segments_per_wire": 3,
    },
    build=_build_whole_tree,
)
