"""Persistent campaign store: lifecycle journal plus per-campaign state.

The store is the service's durability layer.  Every mutation is one
appended line in ``<state_dir>/journal.jsonl`` - the same torn-tail-safe
JSONL format :mod:`repro.runtime.checkpoint` uses for job results, via
the same :class:`~repro.runtime.checkpoint.CheckpointJournal` writer -
so a ``kill -9`` at any instant loses at most the line being written.
Two entry kinds:

``{"kind": "campaign", "id": ..., "spec": ..., "client": ..., ...}``
    A submission: the normalized spec and its queue metadata.
``{"kind": "state", "id": ..., "state": ..., ...}``
    A lifecycle transition (``queued -> running -> done / failed /
    cancelled``), optionally carrying an error message, a cancel
    reason, or progress counters.

On construction the store replays the journal.  Campaigns that were
``running`` or ``queued`` when the process died come back ``queued``
with ``resume=True``: the scheduler re-executes them through
``run_campaign(checkpoint=..., resume=True)``, replaying every job the
previous incarnation had journaled under
``<state_dir>/campaigns/<id>/checkpoint.jsonl`` and computing only the
remainder.  Result payloads are plain JSON files
(``campaigns/<id>/result.json``), written *before* the terminal journal
entry so a ``done`` state always has its result on disk.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runtime.checkpoint import CheckpointJournal, iter_entries
from repro.service.specs import normalize_spec

#: Environment variable overriding the service state directory.
ENV_SERVICE_DIR = "REPRO_SERVICE_DIR"

#: Campaign lifecycle states, in nominal order.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a campaign never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def default_state_dir() -> Path:
    """``REPRO_SERVICE_DIR`` if set, else ``~/.cache/repro/service``."""
    env = os.environ.get(ENV_SERVICE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "service"


@dataclass
class CampaignRecord:
    """One campaign's queue metadata and lifecycle state."""

    campaign_id: str
    spec: Dict[str, Any]
    client: str = ""
    priority: int = 0
    state: str = "queued"
    #: Submission order; the FIFO tiebreak within one priority level.
    seq: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: Error message (``failed``) or cancel reason (``cancelled``).
    error: str = ""
    #: Jobs finished so far / total jobs (filled in as the run proceeds).
    completed: int = 0
    total: int = 0
    #: True when a previous incarnation already journaled some results;
    #: the scheduler passes this through to ``run_campaign(resume=)``.
    resume: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_payload(self) -> Dict[str, Any]:
        """JSON form for the API's status responses."""
        return asdict(self)


class JobStore:
    """Journal-backed campaign store (thread-safe).

    All public methods may be called from the HTTP handler threads and
    the scheduler worker concurrently; a single lock serialises journal
    appends with the in-memory record map, so readers always observe a
    state that has already been made durable.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_state_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "campaigns").mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._records: Dict[str, CampaignRecord] = {}
        self._seq = 0
        self._replay()
        self._journal = CheckpointJournal(self.journal_path)

    # ----------------------------------------------------------------- #
    # Paths.
    # ----------------------------------------------------------------- #

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    def campaign_dir(self, campaign_id: str) -> Path:
        """Per-campaign state directory (checkpoint journal, result)."""
        return self.root / "campaigns" / campaign_id

    def checkpoint_path(self, campaign_id: str) -> Path:
        """The ``run_campaign`` checkpoint journal of one campaign."""
        return self.campaign_dir(campaign_id) / "checkpoint.jsonl"

    def result_path(self, campaign_id: str) -> Path:
        """Where a done campaign's folded result payload lives."""
        return self.campaign_dir(campaign_id) / "result.json"

    # ----------------------------------------------------------------- #
    # Recovery.
    # ----------------------------------------------------------------- #

    def _replay(self) -> None:
        """Rebuild the record map from the journal (crash recovery)."""
        if not self.journal_path.exists():
            return
        for entry in iter_entries(self.journal_path):
            kind = entry.get("kind")
            if kind == "campaign":
                record = CampaignRecord(
                    campaign_id=entry["id"],
                    spec=entry["spec"],
                    client=entry.get("client", ""),
                    priority=int(entry.get("priority", 0)),
                    seq=int(entry.get("seq", 0)),
                    submitted_at=float(entry.get("at", 0.0)),
                    updated_at=float(entry.get("at", 0.0)),
                    total=int(entry.get("total", 0)),
                )
                self._records[record.campaign_id] = record
                self._seq = max(self._seq, record.seq + 1)
            elif kind == "state":
                record = self._records.get(entry.get("id", ""))
                if record is None:
                    continue
                record.state = entry.get("state", record.state)
                record.updated_at = float(entry.get("at", record.updated_at))
                record.error = entry.get("error", record.error)
                if "completed" in entry:
                    record.completed = int(entry["completed"])
                if "total" in entry:
                    record.total = int(entry["total"])
        # Campaigns interrupted mid-flight come back queued; anything
        # that was running has journaled results to resume from.
        for record in self._records.values():
            if record.state == "running":
                record.state = "queued"
                record.resume = True
            elif record.state == "queued" and record.completed:
                record.resume = True

    # ----------------------------------------------------------------- #
    # Mutations (each one durable before it is visible).
    # ----------------------------------------------------------------- #

    def submit(
        self,
        spec: Dict[str, Any],
        client: str = "",
        priority: int = 0,
        total: int = 0,
    ) -> CampaignRecord:
        """Validate ``spec``, persist the submission, return its record."""
        normalized = normalize_spec(spec)
        with self._lock:
            record = CampaignRecord(
                campaign_id=uuid.uuid4().hex[:12],
                spec=normalized,
                client=client,
                priority=int(priority),
                seq=self._seq,
                submitted_at=time.time(),
                updated_at=time.time(),
                total=int(total),
            )
            self._seq += 1
            self._journal.append({
                "kind": "campaign",
                "id": record.campaign_id,
                "spec": normalized,
                "client": client,
                "priority": record.priority,
                "seq": record.seq,
                "total": record.total,
                "at": record.submitted_at,
            })
            self.campaign_dir(record.campaign_id).mkdir(
                parents=True, exist_ok=True
            )
            self._records[record.campaign_id] = record
            return record

    def _transition(self, campaign_id: str, state: str, **extra: Any) -> None:
        if state not in STATES:
            raise ValueError(f"unknown state {state!r}")
        with self._lock:
            record = self._records[campaign_id]
            now = time.time()
            entry: Dict[str, Any] = {
                "kind": "state", "id": campaign_id, "state": state, "at": now,
            }
            entry.update(extra)
            self._journal.append(entry)
            record.state = state
            record.updated_at = now
            record.error = str(extra.get("error", record.error))
            if "completed" in extra:
                record.completed = int(extra["completed"])
            if "total" in extra:
                record.total = int(extra["total"])

    def mark_running(self, campaign_id: str, total: Optional[int] = None) -> None:
        """Record that execution started (``total`` = planned job count)."""
        extra = {} if total is None else {"total": total}
        self._transition(campaign_id, "running", **extra)

    def mark_progress(self, campaign_id: str, completed: int) -> None:
        """Update the in-memory progress counter (not journaled per job:
        the per-job durability already lives in the campaign's
        ``checkpoint.jsonl``, so journaling it twice would only double
        the write traffic)."""
        with self._lock:
            self._records[campaign_id].completed = int(completed)

    def mark_done(self, campaign_id: str, result: Dict[str, Any]) -> None:
        """Persist ``result`` then record the terminal transition."""
        path = self.result_path(campaign_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result, indent=2, sort_keys=True))
        os.replace(tmp, path)
        with self._lock:
            record = self._records[campaign_id]
            self._transition(
                campaign_id, "done",
                completed=record.total or record.completed,
            )

    def mark_failed(self, campaign_id: str, error: str) -> None:
        """Terminal failure; ``error`` is the formatted exception."""
        self._transition(campaign_id, "failed", error=str(error))

    def mark_cancelled(
        self, campaign_id: str, reason: str = "cancel", completed: int = 0
    ) -> None:
        """Terminal cancellation; ``reason`` is ``cancel`` or ``timeout``."""
        self._transition(
            campaign_id, "cancelled", error=reason, completed=completed
        )

    def requeue(self, campaign_id: str, completed: int = 0) -> None:
        """Put an interrupted campaign back in the queue (graceful
        shutdown); its journaled results make the rerun a resume."""
        with self._lock:
            self._transition(campaign_id, "queued", completed=completed)
            self._records[campaign_id].resume = True

    # ----------------------------------------------------------------- #
    # Queries.
    # ----------------------------------------------------------------- #

    def get(self, campaign_id: str) -> CampaignRecord:
        """The record for ``campaign_id`` (KeyError if unknown)."""
        with self._lock:
            return self._records[campaign_id]

    def __contains__(self, campaign_id: str) -> bool:
        with self._lock:
            return campaign_id in self._records

    def list(self) -> List[CampaignRecord]:
        """All records, submission order."""
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.seq)

    def pending(self) -> List[CampaignRecord]:
        """Queued records, submission order (scheduler bootstrap)."""
        return [r for r in self.list() if r.state == "queued"]

    def active_count(self, client: str) -> int:
        """Queued+running campaigns of one client (the quota gauge)."""
        with self._lock:
            return sum(
                1 for r in self._records.values()
                if r.client == client and not r.terminal
            )

    def load_result(self, campaign_id: str) -> Dict[str, Any]:
        """The persisted result payload of a ``done`` campaign."""
        return json.loads(self.result_path(campaign_id).read_text())

    def counts(self) -> Dict[str, int]:
        """Campaigns per state (the ``/metrics`` gauge)."""
        with self._lock:
            tally = {state: 0 for state in STATES}
            for record in self._records.values():
                tally[record.state] += 1
            return tally

    def close(self) -> None:
        """Close the journal writer (idempotent)."""
        self._journal.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
