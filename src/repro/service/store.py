"""Persistent campaign store: lifecycle journal plus per-campaign state.

The store is the service's durability layer.  Every mutation is one
appended line in ``<state_dir>/journal.jsonl`` - the same CRC-framed
JSONL format :mod:`repro.runtime.checkpoint` uses for job results, via
the same :class:`~repro.runtime.checkpoint.CheckpointJournal` writer -
so a ``kill -9`` at any instant loses at most the line being written.
Two entry kinds:

``{"kind": "campaign", "id": ..., "spec": ..., "client": ..., ...}``
    A submission: the normalized spec and its queue metadata.
``{"kind": "state", "id": ..., "state": ..., ...}``
    A lifecycle transition (``queued -> running -> done / failed /
    cancelled``), optionally carrying an error message, a cancel
    reason, or progress counters.

On construction the store replays the journal.  Campaigns that were
``running`` or ``queued`` when the process died come back ``queued``
with ``resume=True``: the scheduler re-executes them through
``run_campaign(checkpoint=..., resume=True)``, replaying every job the
previous incarnation had journaled under
``<state_dir>/campaigns/<id>/checkpoint.jsonl`` and computing only the
remainder.  Result payloads are plain JSON files
(``campaigns/<id>/result.json``), written *before* the terminal journal
entry so a ``done`` state always has its result on disk.

Self-healing
------------
Replay verifies every line's CRC frame: torn writes and mid-line
corruption are *quarantined* (preserved in ``journal.jsonl.quarantine``
with line number and reason) and skipped, never silently applied; the
count is surfaced through :attr:`JobStore.quarantined` and ``/metrics``.
Terminal transitions are *sticky* - once a campaign is ``done`` /
``failed`` / ``cancelled``, later transition attempts are no-ops
returning ``False`` - which closes every double-terminate race (a
timeout timer firing during shutdown-requeue, a cancel racing
completion) at the durability layer.  :meth:`JobStore.compact`
atomically rewrites the ever-growing journal into the minimal snapshot
that replays to the same state.  Journal appends and the ``result.json``
publish retry transient write failures (the ``store.write`` /
``store.replace`` chaos sites inject exactly those).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import InjectedFaultError
from repro.runtime.checkpoint import (
    CheckpointJournal,
    CorruptEntry,
    iter_entries,
    quarantine_path,
    write_quarantine,
)
from repro.runtime.faults import get_injector
from repro.service.specs import normalize_spec

logger = logging.getLogger(__name__)

#: Environment variable overriding the service state directory.
ENV_SERVICE_DIR = "REPRO_SERVICE_DIR"

#: Campaign lifecycle states, in nominal order.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a campaign never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Attempts for journal appends / result publishes before giving up
#: (transient disk errors and the injected ``store.write`` /
#: ``store.replace`` faults are retried this many extra times).
WRITE_RETRIES = 3


def default_state_dir() -> Path:
    """``REPRO_SERVICE_DIR`` if set, else ``~/.cache/repro/service``."""
    env = os.environ.get(ENV_SERVICE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "service"


@dataclass
class CampaignRecord:
    """One campaign's queue metadata and lifecycle state."""

    campaign_id: str
    spec: Dict[str, Any]
    client: str = ""
    priority: int = 0
    state: str = "queued"
    #: Submission order; the FIFO tiebreak within one priority level.
    seq: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: Error message (``failed``) or cancel reason (``cancelled``).
    error: str = ""
    #: Jobs finished so far / total jobs (filled in as the run proceeds).
    completed: int = 0
    total: int = 0
    #: True when a previous incarnation already journaled some results;
    #: the scheduler passes this through to ``run_campaign(resume=)``.
    resume: bool = False
    #: Client-chosen submission dedupe key ("" = none); a resubmission
    #: carrying the same key returns this record instead of a new one.
    idempotency_key: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_payload(self) -> Dict[str, Any]:
        """JSON form for the API's status responses."""
        return asdict(self)


class JobStore:
    """Journal-backed campaign store (thread-safe).

    All public methods may be called from the HTTP handler threads and
    the scheduler workers concurrently; a single lock serialises journal
    appends with the in-memory record map, so readers always observe a
    state that has already been made durable.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_state_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "campaigns").mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._records: Dict[str, CampaignRecord] = {}
        self._idempotency: Dict[str, str] = {}
        self._seq = 0
        #: Corrupt journal lines found (and quarantined) during replay.
        self.quarantined = 0
        self._replay()
        self._journal = CheckpointJournal(self.journal_path)

    # ----------------------------------------------------------------- #
    # Paths.
    # ----------------------------------------------------------------- #

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def quarantine_file(self) -> Path:
        """Where corrupt journal lines are preserved for post-mortems."""
        return quarantine_path(self.journal_path)

    def campaign_dir(self, campaign_id: str) -> Path:
        """Per-campaign state directory (checkpoint journal, result)."""
        return self.root / "campaigns" / campaign_id

    def checkpoint_path(self, campaign_id: str) -> Path:
        """The ``run_campaign`` checkpoint journal of one campaign."""
        return self.campaign_dir(campaign_id) / "checkpoint.jsonl"

    def result_path(self, campaign_id: str) -> Path:
        """Where a done campaign's folded result payload lives."""
        return self.campaign_dir(campaign_id) / "result.json"

    # ----------------------------------------------------------------- #
    # Recovery.
    # ----------------------------------------------------------------- #

    def _apply(self, entry: Dict[str, Any]) -> None:
        """Fold one journal entry into the record map."""
        kind = entry.get("kind")
        if kind == "campaign":
            record = CampaignRecord(
                campaign_id=entry["id"],
                spec=entry["spec"],
                client=entry.get("client", ""),
                priority=int(entry.get("priority", 0)),
                seq=int(entry.get("seq", 0)),
                submitted_at=float(entry.get("at", 0.0)),
                updated_at=float(entry.get("at", 0.0)),
                total=int(entry.get("total", 0)),
                idempotency_key=entry.get("idempotency_key", ""),
            )
            self._records[record.campaign_id] = record
            if record.idempotency_key:
                self._idempotency[record.idempotency_key] = record.campaign_id
            self._seq = max(self._seq, record.seq + 1)
        elif kind == "state":
            record = self._records.get(entry.get("id", ""))
            if record is None:
                return
            record.state = entry.get("state", record.state)
            record.updated_at = float(entry.get("at", record.updated_at))
            record.error = entry.get("error", record.error)
            if "completed" in entry:
                record.completed = int(entry["completed"])
            if "total" in entry:
                record.total = int(entry["total"])

    def _replay(self) -> None:
        """Rebuild the record map from the journal (crash recovery).

        Lines that fail parsing or their CRC check are quarantined to
        ``journal.jsonl.quarantine`` and skipped - one corrupt line
        costs at most one lifecycle transition (whose effects the
        per-campaign checkpoint journal can still recover), never the
        whole store.
        """
        if not self.journal_path.exists():
            return
        corrupt: List[CorruptEntry] = []
        for entry in iter_entries(self.journal_path, on_corrupt=corrupt.append):
            self._apply(entry)
        if corrupt:
            self.quarantined = len(corrupt)
            write_quarantine(self.journal_path, corrupt)
            logger.warning(
                "store journal %s: quarantined %d corrupt line(s) to %s",
                self.journal_path, len(corrupt), self.quarantine_file,
            )
        # Campaigns interrupted mid-flight come back queued; anything
        # that was running has journaled results to resume from.
        for record in self._records.values():
            if record.state == "running":
                record.state = "queued"
                record.resume = True
            elif record.state == "queued" and record.completed:
                record.resume = True

    # ----------------------------------------------------------------- #
    # Durability plumbing.
    # ----------------------------------------------------------------- #

    def _append(self, entry: Dict[str, Any]) -> None:
        """Append one journal entry, retrying transient write failures.

        Chaos sites: ``store.torn`` plants a truncated (CRC-failing)
        copy of the line before the real append - the mid-line
        corruption replay must quarantine; ``store.write`` makes the
        append itself fail like a dying disk.  Both go through the same
        retry loop a real ``OSError`` would.
        """
        injector = get_injector()
        if injector.active and injector.should_fire("store.torn"):
            self._journal.append_corrupt(entry)
        last_error: Optional[Exception] = None
        for _ in range(1 + WRITE_RETRIES):
            try:
                if injector.active and injector.should_fire("store.write"):
                    raise InjectedFaultError(
                        "injected journal write failure (store.write)"
                    )
                self._journal.append(entry)
                return
            except (OSError, InjectedFaultError) as error:
                last_error = error
        raise last_error

    def _publish_result(self, campaign_id: str, result: Dict[str, Any]) -> None:
        """Atomically write ``result.json`` (tmp + rename), retrying
        transient replace failures (chaos site ``store.replace``)."""
        path = self.result_path(campaign_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result, indent=2, sort_keys=True))
        injector = get_injector()
        last_error: Optional[Exception] = None
        for _ in range(1 + WRITE_RETRIES):
            try:
                if injector.active and injector.should_fire("store.replace"):
                    raise InjectedFaultError(
                        "injected result publish failure (store.replace)"
                    )
                os.replace(tmp, path)
                return
            except (OSError, InjectedFaultError) as error:
                last_error = error
        raise last_error

    # ----------------------------------------------------------------- #
    # Mutations (each one durable before it is visible).
    # ----------------------------------------------------------------- #

    def submit(
        self,
        spec: Dict[str, Any],
        client: str = "",
        priority: int = 0,
        total: int = 0,
        idempotency_key: str = "",
    ) -> CampaignRecord:
        """Validate ``spec``, persist the submission, return its record.

        A non-empty ``idempotency_key`` that matches a previous
        submission returns that submission's record unchanged - the
        dedupe that makes client-side POST retries safe (a retried
        submit whose first attempt actually landed must not enqueue the
        campaign twice).
        """
        normalized = normalize_spec(spec)
        with self._lock:
            if idempotency_key:
                existing = self._idempotency.get(idempotency_key)
                if existing is not None:
                    return self._records[existing]
            record = CampaignRecord(
                campaign_id=uuid.uuid4().hex[:12],
                spec=normalized,
                client=client,
                priority=int(priority),
                seq=self._seq,
                submitted_at=time.time(),
                updated_at=time.time(),
                total=int(total),
                idempotency_key=idempotency_key,
            )
            self._seq += 1
            entry = {
                "kind": "campaign",
                "id": record.campaign_id,
                "spec": normalized,
                "client": client,
                "priority": record.priority,
                "seq": record.seq,
                "total": record.total,
                "at": record.submitted_at,
            }
            if idempotency_key:
                entry["idempotency_key"] = idempotency_key
            self._append(entry)
            self.campaign_dir(record.campaign_id).mkdir(
                parents=True, exist_ok=True
            )
            self._records[record.campaign_id] = record
            if idempotency_key:
                self._idempotency[idempotency_key] = record.campaign_id
            return record

    def _transition(self, campaign_id: str, state: str, **extra: Any) -> bool:
        """Journal and apply one lifecycle transition.

        Terminal states are *sticky*: once a campaign is done / failed /
        cancelled every further transition attempt returns ``False``
        without journaling anything.  Racing terminators (a timeout
        timer vs. a shutdown requeue, a cancel vs. completion) all call
        in here, so first-writer-wins is decided under the store lock -
        whichever outcome was journaled first is the outcome.
        """
        if state not in STATES:
            raise ValueError(f"unknown state {state!r}")
        with self._lock:
            record = self._records[campaign_id]
            if record.terminal:
                logger.debug(
                    "ignoring %s -> %s for terminal campaign %s",
                    record.state, state, campaign_id,
                )
                return False
            now = time.time()
            entry: Dict[str, Any] = {
                "kind": "state", "id": campaign_id, "state": state, "at": now,
            }
            entry.update(extra)
            self._append(entry)
            record.state = state
            record.updated_at = now
            record.error = str(extra.get("error", record.error))
            if "completed" in extra:
                record.completed = int(extra["completed"])
            if "total" in extra:
                record.total = int(extra["total"])
            return True

    def mark_running(self, campaign_id: str, total: Optional[int] = None) -> bool:
        """Record that execution started (``total`` = planned job count)."""
        extra = {} if total is None else {"total": total}
        return self._transition(campaign_id, "running", **extra)

    def mark_progress(self, campaign_id: str, completed: int) -> None:
        """Update the in-memory progress counter (not journaled per job:
        the per-job durability already lives in the campaign's
        ``checkpoint.jsonl``, so journaling it twice would only double
        the write traffic)."""
        with self._lock:
            self._records[campaign_id].completed = int(completed)

    def mark_done(self, campaign_id: str, result: Dict[str, Any]) -> bool:
        """Persist ``result`` then record the terminal transition."""
        with self._lock:
            if self._records[campaign_id].terminal:
                return False
            self._publish_result(campaign_id, result)
            record = self._records[campaign_id]
            return self._transition(
                campaign_id, "done",
                completed=record.total or record.completed,
            )

    def mark_failed(self, campaign_id: str, error: str) -> bool:
        """Terminal failure; ``error`` is the formatted exception."""
        return self._transition(campaign_id, "failed", error=str(error))

    def mark_cancelled(
        self, campaign_id: str, reason: str = "cancel", completed: int = 0
    ) -> bool:
        """Terminal cancellation; ``reason`` is ``cancel``/``timeout``/
        a structured watchdog reason."""
        return self._transition(
            campaign_id, "cancelled", error=reason, completed=completed
        )

    def requeue(self, campaign_id: str, completed: int = 0) -> bool:
        """Put an interrupted campaign back in the queue (graceful
        shutdown, injected worker crash); its journaled results make the
        rerun a resume."""
        with self._lock:
            if not self._transition(
                campaign_id, "queued", completed=completed
            ):
                return False
            self._records[campaign_id].resume = True
            return True

    # ----------------------------------------------------------------- #
    # Compaction.
    # ----------------------------------------------------------------- #

    def compact(self) -> Dict[str, Any]:
        """Atomically rewrite the journal as its minimal snapshot.

        The live journal grows by one line per lifecycle transition,
        forever.  Compaction rewrites it as one ``campaign`` entry per
        campaign plus (at most) one ``state`` entry capturing its
        current state - a snapshot whose replay reconstructs exactly the
        record map the full history replays to.  The rewrite goes to a
        temp file that is ``os.replace``-d over the journal, so a crash
        at any instant leaves either the old or the new journal, never a
        half-written one.  Returns ``{"campaigns", "bytes_before",
        "bytes_after"}``.
        """
        with self._lock:
            bytes_before = (
                self.journal_path.stat().st_size
                if self.journal_path.exists() else 0
            )
            tmp = self.journal_path.with_name(self.journal_path.name + ".compact")
            snapshot = CheckpointJournal(tmp, fresh=True)
            try:
                for record in self.list():
                    entry: Dict[str, Any] = {
                        "kind": "campaign",
                        "id": record.campaign_id,
                        "spec": record.spec,
                        "client": record.client,
                        "priority": record.priority,
                        "seq": record.seq,
                        "total": record.total,
                        "at": record.submitted_at,
                    }
                    if record.idempotency_key:
                        entry["idempotency_key"] = record.idempotency_key
                    snapshot.append(entry)
                    # A freshly queued, never-run campaign is fully
                    # described by its submission; everything else needs
                    # its current state journaled.  A queued resume
                    # record is written as "running" so replay re-derives
                    # queued + resume=True, exactly as after a crash.
                    state = record.state
                    if state == "queued" and record.resume:
                        state = "running"
                    if (
                        state != "queued" or record.completed
                        or record.total or record.error
                    ):
                        snapshot.append({
                            "kind": "state",
                            "id": record.campaign_id,
                            "state": state,
                            "at": record.updated_at,
                            "error": record.error,
                            "completed": record.completed,
                            "total": record.total,
                        })
            finally:
                snapshot.close()
            self._journal.close()
            os.replace(tmp, self.journal_path)
            self._journal = CheckpointJournal(self.journal_path)
            return {
                "campaigns": len(self._records),
                "bytes_before": bytes_before,
                "bytes_after": self.journal_path.stat().st_size,
            }

    # ----------------------------------------------------------------- #
    # Queries.
    # ----------------------------------------------------------------- #

    def get(self, campaign_id: str) -> CampaignRecord:
        """The record for ``campaign_id`` (KeyError if unknown)."""
        with self._lock:
            return self._records[campaign_id]

    def lookup_idempotent(self, key: str) -> Optional[CampaignRecord]:
        """The record previously submitted under idempotency ``key``
        (``None`` when the key is unknown or empty)."""
        if not key:
            return None
        with self._lock:
            campaign_id = self._idempotency.get(key)
            return (
                self._records[campaign_id]
                if campaign_id is not None else None
            )

    def __contains__(self, campaign_id: str) -> bool:
        with self._lock:
            return campaign_id in self._records

    def list(self) -> List[CampaignRecord]:
        """All records, submission order."""
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.seq)

    def pending(self) -> List[CampaignRecord]:
        """Queued records, submission order (scheduler bootstrap)."""
        return [r for r in self.list() if r.state == "queued"]

    def active_count(self, client: str) -> int:
        """Queued+running campaigns of one client (the quota gauge)."""
        with self._lock:
            return sum(
                1 for r in self._records.values()
                if r.client == client and not r.terminal
            )

    def load_result(self, campaign_id: str) -> Dict[str, Any]:
        """The persisted result payload of a ``done`` campaign."""
        return json.loads(self.result_path(campaign_id).read_text())

    def counts(self) -> Dict[str, int]:
        """Campaigns per state (the ``/metrics`` gauge)."""
        with self._lock:
            tally = {state: 0 for state in STATES}
            for record in self._records.values():
                tally[record.state] += 1
            return tally

    def close(self) -> None:
        """Close the journal writer (idempotent)."""
        self._journal.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
