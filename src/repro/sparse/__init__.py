"""Sparse MNA subsystem: whole-chip transients at 10^3-10^4 nodes.

The dense engine factors an ``(n_free, n_free)`` Jacobian per Newton
refresh - O(n^3) - which caps it at sensor-sized circuits.  This package
adds the sparse path of ROADMAP item 2:

* :mod:`repro.sparse.csr` - a compressed-sparse-row plan built *once*
  per topology from the compile-time scatter plans of
  :mod:`repro.analog.kernels` (the fixed-target property means the
  Jacobian's nonzero pattern never changes, so only the CSR ``data``
  vector is rewritten per Newton iteration), plus a
  :class:`~repro.sparse.csr.SparseKernel` that evaluates the level-1
  devices without ever touching an ``(n, n)`` array;
* :mod:`repro.sparse.linalg` - the :class:`~repro.sparse.linalg.SparseLU`
  factor layer: ``scipy.sparse.linalg.splu`` when the ``repro[sparse]``
  extra is installed, a pure-numpy dense-fallback otherwise (tier-1
  stays dependency-free - the fallback is bit-compatible with the
  engine's non-finite-step failure contract);
* :mod:`repro.sparse.newton` - the sparse Newton work object the
  transient engine dispatches to under ``jacobian_policy="sparse"``,
  carrying over the ``(h, alpha)``-keyed factor-reuse / modified-Newton
  policy of the dense path.

Select it with ``TransientOptions(jacobian_policy="sparse")`` or let
``"auto"`` pick it by node count.
"""

from repro.sparse.csr import CsrPlan, SparseKernel, csr_plan
from repro.sparse.linalg import SparseLU, scipy_available
from repro.sparse.newton import SparseKernelStats, SparseNewtonWork, SparseStaticSolver

__all__ = [
    "CsrPlan",
    "SparseKernel",
    "csr_plan",
    "SparseLU",
    "scipy_available",
    "SparseKernelStats",
    "SparseNewtonWork",
    "SparseStaticSolver",
]
