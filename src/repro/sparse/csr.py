"""CSR assembly plan and allocation-light sparse device kernel.

The dense kernel's enabling observation (see
:mod:`repro.analog.kernels`) is that the MOSFET Jacobian scatter targets
are fixed at compile time - the drain/source swap changes *weights*, not
*targets*.  This module pushes that one step further: because the
targets never move, the union of

* the linear conductance pattern ``G`` (resistors, GMIN shunts),
* the capacitance pattern ``C`` (the ``C/h`` term of the Newton matrix),
* the six per-device MOSFET stamp targets of
  :func:`repro.analog.kernels.mosfet_stamp_targets`, and
* the diagonal (gmin-restart shunt homotopy),

restricted to the free-free block, is a CSR pattern that can be built
**once per topology**.  Every Newton iteration afterwards only rewrites
the ``data`` vector: scatter the gathered ``G`` values, add one
``np.bincount`` of the 6M stamp weights, scale by ``alpha`` and add the
``C/h`` data.  Element for element this performs the *same* float
operations in the same order as the dense assembly
(``j = G + bincount(stamps)``, then ``alpha * j + C/h``), so the CSR
data equals the dense Newton matrix bit-for-bit on the shared pattern -
which is exactly what ``tests/test_sparse_engine.py`` pins.

:class:`SparseKernel` is the matching device evaluator: residuals are
COO mat-vecs plus one bincount scatter (never an ``(n, n)`` or
``(n, M)`` array), and Jacobian calls return the raw ``(6M,)`` stamp
weights for :meth:`CsrPlan.device_data` instead of a dense matrix.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional, Tuple

import numpy as np

from repro.analog.kernels import KernelStats, mosfet_stamp_targets


def csr_plan(circuit: Any) -> "CsrPlan":
    """The (cached) :class:`CsrPlan` of a compiled circuit.

    Campaigns re-integrate one compiled topology many times; the plan
    depends only on the compiled structure, so it is built once and
    stashed on the circuit - the sparse analogue of
    :meth:`repro.analog.compile.CompiledCircuit.kernel`.
    """
    plan = getattr(circuit, "_csr_plan", None)
    if plan is None:
        plan = CsrPlan(circuit)
        circuit._csr_plan = plan
    return plan


class CsrPlan:
    """Fixed CSR pattern of the free-free Newton matrix, plus the
    compile-time index maps that rewrite its ``data`` per iteration.

    Attributes
    ----------
    indptr, indices, nnz:
        CSR structure of the ``(n_free, n_free)`` system.
    diag_pos:
        Position of every diagonal slot in ``data`` (the GMIN stamps
        guarantee the diagonal is always in the pattern).
    m_pos:
        Per-stamp position of the ``(6M,)`` MOSFET weights; stamps whose
        row or column is a driven node map to the discard bucket ``nnz``.
    """

    def __init__(self, circuit: Any) -> None:
        self.circuit = circuit
        nf = int(circuit.n_free)
        n = int(circuit.n_total)
        self.nf = nf
        self.n = n
        G, C = circuit.G, circuit.C

        # --- free-free pattern sources (flat row-major in nf*nf space) --
        g_rows, g_cols = np.nonzero(G[:nf, :nf])
        c_rows, c_cols = np.nonzero(C[:nf, :nf])
        g_flat = g_rows * nf + g_cols
        c_flat = c_rows * nf + c_cols
        diag_flat = np.arange(nf, dtype=np.intp) * (nf + 1)

        # The same fixed Jacobian targets the dense scatter plan uses,
        # just without its (n, M) incidence matrix (which would defeat
        # the sparse memory budget at 10^4 nodes).
        f_idx, j_idx = mosfet_stamp_targets(
            circuit.m_d, circuit.m_g, circuit.m_s, n
        )
        self.f_idx = f_idx
        j_rows = j_idx // n
        j_cols = j_idx % n
        valid = (j_rows < nf) & (j_cols < nf)
        m_flat = j_rows[valid] * nf + j_cols[valid]

        union = np.unique(np.concatenate([g_flat, c_flat, diag_flat, m_flat]))
        self.nnz = int(union.size)
        self.indices = (union % nf).astype(np.intp)
        counts = np.bincount((union // nf).astype(np.intp), minlength=nf)
        self.indptr = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.intp)

        # data positions of each contributor
        self.g_pos = np.searchsorted(union, g_flat).astype(np.intp)
        self.c_pos = np.searchsorted(union, c_flat).astype(np.intp)
        self.diag_pos = np.searchsorted(union, diag_flat).astype(np.intp)
        m_pos = np.full(j_idx.size, self.nnz, dtype=np.intp)
        m_pos[valid] = np.searchsorted(union, m_flat)
        self.m_pos = m_pos

        # flat gather indices into the (contiguous) dense G for the
        # free-free values; re-gathered per assembly so post-compile
        # parameter mutation of G is honoured like the dense kernel.
        self._g_src = (g_rows * n + g_cols).astype(np.intp)
        # C values on the pattern (C is not mutated post-compile).
        self.c_val = C[:nf, :nf][c_rows, c_cols].copy()

        # --- COO forms for residual / charge mat-vecs -------------------
        gr, gc = np.nonzero(G)
        self.g_coo_rows = gr.astype(np.intp)
        self.g_coo_cols = gc.astype(np.intp)
        self._g_coo_src = (gr * n + gc).astype(np.intp)
        cr, cc = np.nonzero(C)
        self.c_coo_rows = cr.astype(np.intp)
        self.c_coo_cols = cc.astype(np.intp)
        self.c_coo_val = C[cr, cc].copy()
        free = cr < nf
        self.cf_rows = cr[free].astype(np.intp)
        self.cf_cols = cc[free].astype(np.intp)
        self.cf_val = C[cr[free], cc[free]].copy()

    def scatter_dense(self, data: np.ndarray) -> np.ndarray:
        """Densify a data vector into ``(nf, nf)`` (tests, diagnostics)."""
        out = np.zeros((self.nf, self.nf))
        rows = np.repeat(
            np.arange(self.nf, dtype=np.intp), np.diff(self.indptr)
        )
        out[rows, self.indices] = data
        return out

    def device_data(
        self, jw_flat: Optional[np.ndarray], out: np.ndarray
    ) -> np.ndarray:
        """Assemble ``G_ff + MOSFET stamps`` into the CSR ``data`` slot.

        Performs the float operations of the dense assembly (``G`` value
        plus one bincount total per element, accumulated in the same
        weight order), so the result matches ``(G + stamps)[:nf, :nf]``
        bit-for-bit on the pattern.
        """
        out[:] = 0.0
        out[self.g_pos] = self.circuit.G.reshape(-1)[self._g_src]
        if jw_flat is not None and jw_flat.size:
            out += np.bincount(
                self.m_pos, weights=jw_flat, minlength=self.nnz + 1
            )[: self.nnz]
        return out


class SparseKernel:
    """Device evaluation without dense matrices.

    Same model math as :class:`repro.analog.kernels.ScalarKernel` (the
    inlined level-1 evaluation with scratch rows), but the residual is
    scattered with ``np.bincount`` over the compile-time targets and a
    Jacobian call returns the raw ``(6M,)`` stamp weight vector - the
    caller maps it through :meth:`CsrPlan.device_data`.

    ``eval`` is signature-compatible with the dense kernel for
    residual-only calls (``with_jacobian=False``), which is how the
    transient outer loop uses it; the second return value is the weight
    vector, not a matrix, so Jacobian consumers must be sparse-aware.
    """

    def __init__(self, circuit: Any, plan: Optional[CsrPlan] = None) -> None:
        self.circuit = circuit
        self.plan = plan if plan is not None else csr_plan(circuit)
        n = circuit.n_total
        m = circuit.m_d.size
        self.n = n
        self.m = m
        self.f = np.empty(n)
        self._w2 = np.empty(2 * m)     # [w, -w] residual weights
        self._jw = np.empty((6, m))    # Jacobian stamp weights, row-major
        self._jw_flat = self._jw.reshape(-1)
        self._b = np.empty((10, m))    # elementwise scratch rows
        self._swap = np.empty(m, dtype=bool)
        self._idx_all = np.concatenate(
            [np.asarray(circuit.m_d, dtype=np.intp),
             np.asarray(circuit.m_g, dtype=np.intp),
             np.asarray(circuit.m_s, dtype=np.intp)]
        )
        self._sign3 = np.tile(np.asarray(circuit.m_sign, dtype=float), 3)

    def eval(
        self,
        v: np.ndarray,
        with_jacobian: bool = True,
        stats: Optional[KernelStats] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Assemble ``(f, stamp_weights)`` at ``v``.

        ``f`` is the full static current vector (length ``n_total``);
        the second element is the flat ``(6M,)`` Jacobian stamp weight
        vector when requested, else ``None``.  Buffers are reused across
        calls - copy to keep.
        """
        t0 = perf_counter() if stats is not None else 0.0
        circuit = self.circuit
        plan = self.plan
        # f = G @ v as a COO mat-vec (values gathered live, so fault /
        # poison mutation of G is honoured like the dense kernel).
        gv = circuit.G.reshape(-1)[plan._g_coo_src]
        gv *= v[plan.g_coo_cols]
        f = self.f
        f[:] = np.bincount(plan.g_coo_rows, weights=gv, minlength=self.n)
        jw_flat = self._jw_flat if with_jacobian else None
        if self.m == 0:
            if stats is not None:
                stats.assembles += 1
                stats.assemble_s += perf_counter() - t0
            return f, jw_flat

        m = self.m
        sv = v[self._idx_all]  # sign-premultiplied (vd, vg, vs) gather
        sv *= self._sign3
        svd = sv[:m]
        svg = sv[m:2 * m]
        svs = sv[2 * m:]
        b = self._b
        dv = np.subtract(svd, svs, out=b[0])
        swap = np.less(dv, 0.0, out=self._swap)
        vds = np.abs(dv, out=b[1])
        vmin = np.minimum(svd, svs, out=b[2])
        vgs = np.subtract(svg, vmin, out=b[2])
        vov = np.subtract(vgs, circuit.m_vt, out=b[3])
        np.maximum(vov, 0.0, out=vov)
        x = np.minimum(vds, vov, out=b[4])
        clm = np.multiply(circuit.m_lam, vds, out=b[5])
        clm += 1.0
        xx = np.multiply(x, x, out=b[6])
        xx *= 0.5
        core = np.multiply(vov, x, out=b[7])
        core -= xx
        ids = np.multiply(circuit.m_beta, core, out=b[8])
        ids *= clm
        w = np.multiply(ids, circuit.m_sign, out=b[9])
        np.negative(w, out=w, where=swap)
        w2 = self._w2
        w2[:m] = w
        np.negative(w, out=w2[m:])
        f += np.bincount(plan.f_idx, weights=w2, minlength=self.n)

        if with_jacobian:
            gm = np.multiply(circuit.m_beta, x, out=b[8])  # ids row spent
            gm *= clm
            gds = np.subtract(vov, x, out=b[9])            # w row spent
            gds *= clm
            lamcore = core
            lamcore *= circuit.m_lam
            gds += lamcore
            gds *= circuit.m_beta
            jw = self._jw
            sg = np.multiply(swap, gm, out=b[1])
            sg2 = np.subtract(gm, sg, out=b[2])
            np.add(gds, sg, out=jw[0])          # swap exchanges gds <-> gsum
            np.add(gds, sg2, out=jw[5])
            jw1 = jw[1]
            jw1[...] = gm
            np.negative(jw1, out=jw1, where=swap)
            np.negative(jw[5], out=jw[2])
            np.negative(jw[0], out=jw[3])
            np.negative(jw1, out=jw[4])
        if stats is not None:
            stats.assembles += 1
            stats.assemble_s += perf_counter() - t0
        return f, jw_flat
