"""Sparse LU factor layer with a pure-numpy fallback.

:class:`SparseLU` owns the linear-solve side of the sparse Newton path:
it is constructed once per topology from a fixed CSR pattern
(``indptr``/``indices``) and refactored from a fresh ``data`` vector
whenever the engine's modified-Newton policy decides the cached factor
went stale.

Two backends:

``"scipy"``
    ``scipy.sparse.linalg.splu`` (SuperLU with COLAMD ordering) - the
    production path, installed via the ``repro[sparse]`` extra.  Fill-in
    is observable through :attr:`SparseLU.fill_nnz` (``L.nnz + U.nnz``
    of the last factorization), which the kernel stats surface.

``"dense-fallback"``
    The CSR data is scattered into a preallocated dense matrix and
    inverted with the same ``raw_inv`` gufunc the dense engine uses.
    Pure numpy, so tier-1 (which installs only ``numpy``) exercises the
    whole sparse code path - assembly, factor-reuse policy, telemetry -
    minus the sparse factorization itself.  Asymptotics are dense, but
    correctness and the failure contract (singular system -> NaN
    solution -> the Newton loop's non-finite step guard rejects) are
    identical.

The scipy import is resolved lazily through :func:`scipy_splu` so tests
can monkeypatch the import machinery and call :func:`reset_backend` to
prove the fallback contract without uninstalling anything.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.analog.kernels import c_einsum, raw_inv

#: Resolved ``(csc_matrix, splu)`` pair, or ``None`` when scipy is
#: absent; ``_SPLU_RESOLVED`` gates the one-time import attempt.
_SPLU: Optional[Tuple[Any, Any]] = None
_SPLU_RESOLVED = False


def scipy_splu() -> Optional[Tuple[Any, Any]]:
    """``(csc_matrix, splu)`` from scipy, or ``None`` when unavailable.

    The import is attempted once per process (or per
    :func:`reset_backend`); an ``ImportError`` selects the pure-numpy
    fallback for every :class:`SparseLU` built afterwards.
    """
    global _SPLU, _SPLU_RESOLVED
    if not _SPLU_RESOLVED:
        try:
            from scipy.sparse import csc_matrix
            from scipy.sparse.linalg import splu
        except ImportError:
            _SPLU = None
        else:
            _SPLU = (csc_matrix, splu)
        _SPLU_RESOLVED = True
    return _SPLU


def scipy_available() -> bool:
    """Whether the scipy backend would be used for new factor objects."""
    return scipy_splu() is not None


def reset_backend() -> None:
    """Forget the resolved backend so the next use re-imports scipy.

    Test hook: monkeypatch the import machinery, call this, and every
    :class:`SparseLU` constructed afterwards takes the fallback path.
    """
    global _SPLU, _SPLU_RESOLVED
    _SPLU = None
    _SPLU_RESOLVED = False


class SparseLU:
    """LU factor/solve over a fixed CSR pattern.

    Parameters
    ----------
    indptr, indices:
        The CSR structure of the ``(n, n)`` Newton matrix; frozen for
        the object's lifetime (the fixed-target scatter guarantees the
        pattern never changes between iterations).
    n:
        System size (``n_free`` of the compiled circuit).

    :meth:`factor` consumes a ``data`` vector laid out on that pattern;
    :meth:`solve` applies the last factorization.  A singular system
    never raises from ``solve``: the solution comes back non-finite and
    the caller's step guard handles it, mirroring ``raw_inv``.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, n: int
    ) -> None:
        self.n = int(n)
        self.indptr = np.asarray(indptr, dtype=np.intp)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.nnz = int(self.indices.size)
        #: ``L.nnz + U.nnz`` of the last successful factorization
        #: (``n * n`` on the dense fallback) - the fill-in telemetry.
        self.fill_nnz = 0
        self._factor: Any = None
        resolved = scipy_splu()
        if resolved is not None:
            self._csc_matrix, self._splu = resolved
            self.backend = "scipy"
            # Structure template reused every factorization; only its
            # ``data`` is rewritten before the CSR -> CSC conversion.
            from scipy.sparse import csr_matrix

            self._template = csr_matrix(
                (np.zeros(self.nnz), self.indices, self.indptr),
                shape=(self.n, self.n),
            )
        else:
            self.backend = "dense-fallback"
            self._dense = np.zeros((self.n, self.n))
            self._inv = np.empty((self.n, self.n))
            # Row index of every CSR slot, for the dense scatter.
            rows = np.repeat(
                np.arange(self.n, dtype=np.intp), np.diff(self.indptr)
            )
            self._flat = rows * self.n + self.indices

    def factor(self, data: np.ndarray) -> None:
        """Factor the matrix whose CSR data is ``data``.

        Never raises on a singular system; the failure surfaces as a
        non-finite :meth:`solve` result instead (same contract as the
        dense engine's ``raw_inv``).
        """
        if self.n == 0:
            self._factor = True
            self.fill_nnz = 0
            return
        if self.backend == "scipy":
            template = self._template
            template.data[:] = data
            try:
                self._factor = self._splu(template.tocsc())
                self.fill_nnz = int(self._factor.L.nnz + self._factor.U.nnz)
            except RuntimeError:  # singular matrix
                self._factor = None
        else:
            dense = self._dense
            dense.reshape(-1)[self._flat] = data
            # Singular -> NaN inverse; the solve result trips the
            # caller's non-finite step guard.
            raw_inv(dense, out=self._inv)
            self._factor = True
            self.fill_nnz = self.n * self.n

    def solve(self, rhs: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` with the last factorization into ``out``."""
        if self.n == 0:
            return out
        if self.backend == "scipy":
            if self._factor is None:
                out[:] = np.nan
                return out
            out[:] = self._factor.solve(rhs)
            return out
        c_einsum("ij,j->i", self._inv, rhs, out=out)
        return out
