"""Sparse Newton work object: the engine's sparse dispatch target.

:class:`SparseNewtonWork` is the CSR twin of the engine's dense
``_NewtonWork`` + ``_newton_step`` pair.  It carries over the
``(h, alpha)``-keyed modified-Newton policy verbatim - stale
factorizations are reapplied while the update norm contracts by at least
``REUSE_SLOWDOWN``, refactoring on slowdown, with the same predicted
acceptance shortcut - so the dense and sparse paths take the *same*
iteration decisions on the same trajectory and the factor/reuse counters
stay comparable (``tests/test_sparse_engine.py`` pins the parity).

What changes is purely the linear algebra: the Jacobian lives as a CSR
``data`` vector on the fixed :class:`~repro.sparse.csr.CsrPlan` pattern,
factored by :class:`~repro.sparse.linalg.SparseLU` instead of inverted
densely, and the charge/residual terms are COO mat-vecs.  Nothing
``(n, n)``-shaped is allocated (except inside the scipy-absent dense
fallback of ``SparseLU`` itself).

:class:`SparseStaticSolver` is the matching DC-operating-point hook:
``dcop._newton_static`` accepts it as its ``solver`` to evaluate and
factor sparsely while keeping the ladder logic untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.analog.kernels import REUSE_SLOWDOWN, KernelStats
from repro.sparse.csr import SparseKernel, csr_plan
from repro.sparse.linalg import SparseLU


@dataclass
class SparseKernelStats(KernelStats):
    """Kernel counters plus the sparse-path observables.

    ``sparse_nnz`` is the pattern size of the Newton matrix,
    ``sparse_fill_nnz`` the ``L + U`` fill of the last factorization
    (``n*n`` on the dense fallback), ``sparse_fallback`` is 1 when the
    run used the pure-numpy backend.  All three ride the generic
    key-folding of :func:`repro.runtime.telemetry.record_kernel`.
    """

    sparse_nnz: int = 0
    sparse_fill_nnz: int = 0
    sparse_fallback: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable counter snapshot, sparse fields included."""
        out = super().as_dict()
        out["sparse_nnz"] = self.sparse_nnz
        out["sparse_fill_nnz"] = self.sparse_fill_nnz
        out["sparse_fallback"] = self.sparse_fallback
        return out

    def merge(self, other: KernelStats) -> None:
        """Fold another stats object in (sparse gauges take the max)."""
        super().merge(other)
        if isinstance(other, SparseKernelStats):
            self.sparse_nnz = max(self.sparse_nnz, other.sparse_nnz)
            self.sparse_fill_nnz = max(
                self.sparse_fill_nnz, other.sparse_fill_nnz
            )
            self.sparse_fallback |= other.sparse_fallback


class SparseNewtonWork:
    """Per-run scratch of the sparse Newton loop.

    Exposes the same surface the engine uses on the dense work object
    (``v``/``stats``/``kernel``/``info``/``note_worst`` plus the
    ``modified``/``valid``/``key`` reuse state) and adds
    :meth:`newton_step` - the sparse implementation the engine's
    ``_newton_step`` delegates to when ``work.sparse`` is set - and
    :meth:`charge_into` for the outer loop's ``q = C @ v`` updates.
    """

    sparse = True

    def __init__(self, circuit: Any, options: Any) -> None:
        n, nf = circuit.n_total, circuit.n_free
        self.circuit = circuit
        self.plan = csr_plan(circuit)
        self.kernel = SparseKernel(circuit, self.plan)
        self.lu = SparseLU(self.plan.indptr, self.plan.indices, nf)
        self.stats = SparseKernelStats(
            sparse_nnz=self.plan.nnz,
            sparse_fallback=0 if self.lu.backend == "scipy" else 1,
        )
        # "sparse"/"auto" keep the dense default (reuse) policy; only an
        # explicit "dense" disables the modified-Newton cache, and that
        # policy never reaches this work object.
        self.modified = options.jacobian_policy != "dense"
        self.v = np.empty(n)
        self.qh = np.empty(nf)        # (C_rows / h) @ v scratch
        self.rhs0 = np.empty(nf)      # iteration-invariant residual part
        self.residual = np.empty(nf)  # holds the *negated* residual
        self.delta = np.empty(nf)
        self.tmp = np.empty(nf)
        self.abs_buf = np.empty(nf)
        nnz = self.plan.nnz
        self._dev = np.empty(nnz)      # G_ff + device stamps
        self._data = np.empty(nnz)     # alpha * dev + C/h (+ shunt diag)
        self._ch = np.zeros(nnz)       # C/h data on the pattern
        self._cf_scaled = np.empty(self.plan.cf_val.size)
        self.h_scaled: Optional[float] = None
        self.valid = False
        self.key: Optional[Tuple[float, float]] = None
        self.info: Dict[str, object] = {
            "iterations": 0, "worst_index": None,
            "worst_residual": None, "nonfinite": False,
        }

    # -- outer-loop helpers ---------------------------------------------

    def charge_into(self, v: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``C @ v`` (full length ``n_total``) as a COO mat-vec."""
        plan = self.plan
        prod = plan.c_coo_val * v[plan.c_coo_cols]
        out[:] = np.bincount(
            plan.c_coo_rows, weights=prod, minlength=self.circuit.n_total
        )
        return out

    def _scale(self, h: float) -> None:
        """Refresh the ``C / h`` data vectors when ``h`` changes."""
        if self.h_scaled != h:
            plan = self.plan
            inv_h = 1.0 / h
            np.multiply(plan.cf_val, inv_h, out=self._cf_scaled)
            # Same elementwise op as the dense ``C_ff * (1/h)``, so the
            # assembled Newton data matches the dense matrix bit-for-bit.
            self._ch[plan.c_pos] = plan.c_val * inv_h
            self.h_scaled = h

    def note_worst(self, n_free: int, iterations: int) -> Dict[str, object]:
        """Worst-residual observation of the last iterate (failure
        diagnostics, recorded at return time like the dense work)."""
        self.info["iterations"] = iterations
        if n_free and iterations:
            worst = int(np.argmax(np.abs(self.residual)))
            self.info["worst_index"] = worst
            self.info["worst_residual"] = float(abs(self.residual[worst]))
        return self.info

    def static_solver(self) -> "SparseStaticSolver":
        """The DC-operating-point hook sharing this run's plan/kernel."""
        return SparseStaticSolver(self.circuit, self)

    # -- the Newton solve -----------------------------------------------

    def newton_step(
        self,
        circuit: Any,
        v_guess: np.ndarray,
        v_sources: np.ndarray,
        q_prev: np.ndarray,
        f_prev: Optional[np.ndarray],
        h: float,
        alpha: float,
        options: Any,
        damping: float = 1.0,
        max_iter: Optional[int] = None,
        shunt: float = 0.0,
        shunt_target: Optional[np.ndarray] = None,
    ) -> Tuple[Optional[np.ndarray], Dict[str, object]]:
        """Sparse twin of the engine's ``_newton_step``.

        Same residual, same damping/shunt semantics, same modified-Newton
        reuse policy and predicted-acceptance shortcut; the Jacobian is
        assembled as CSR data and factored by :class:`SparseLU`.  A
        singular or non-finite system surfaces as a non-finite update and
        is rejected by the same step guard as the dense path.
        """
        n_free = circuit.n_free
        plan = self.plan
        kernel, stats = self.kernel, self.stats
        v = self.v
        np.copyto(v, v_guess)
        v[n_free:] = v_sources[n_free:]
        iters = max_iter if max_iter is not None else options.max_newton
        info = self.info
        info["iterations"] = 0
        info["worst_index"] = None
        info["worst_residual"] = None
        info["nonfinite"] = False

        modified = self.modified and damping == 1.0 and shunt == 0.0
        if not (modified and self.valid and self.key == (h, alpha)):
            self.valid = False  # never reuse across a scaling change
        anchor = None
        if shunt:
            anchor = shunt_target if shunt_target is not None else v_guess
        neg_res, delta, tmp = self.residual, self.delta, self.tmp
        abs_buf, qh, lu = self.abs_buf, self.qh, self.lu
        max_reduce = np.maximum.reduce
        is_be = alpha == 1.0
        self._scale(h)
        cf_scaled = self._cf_scaled
        rhs0 = self.rhs0
        np.multiply(q_prev[:n_free], 1.0 / h, out=rhs0)
        if f_prev is not None:
            np.multiply(f_prev[:n_free], 1.0 - alpha, out=tmp)
            rhs0 -= tmp
        step_prev = np.inf
        step = 0.0
        vntol = options.vntol
        slowdown = REUSE_SLOWDOWN
        can_predict = damping == 1.0
        n_iters = n_assembles = n_factor = n_refactor = n_reuse = 0
        assemble_acc = factor_acc = solve_acc = 0.0
        fill = 0

        try:
            for iteration in range(iters):
                try_stale = modified and self.valid
                t0 = perf_counter()
                f, jw = kernel.eval(v, with_jacobian=not try_stale)
                n_iters += 1
                n_assembles += 1
                # Negated residual: rhs0 - (C/h) @ v - alpha * f(v).
                prod = cf_scaled * v[plan.cf_cols]
                qh[:] = np.bincount(
                    plan.cf_rows, weights=prod, minlength=n_free
                )
                np.subtract(rhs0, qh, out=neg_res)
                if is_be:
                    neg_res -= f[:n_free]
                else:
                    np.multiply(f[:n_free], alpha, out=tmp)
                    neg_res -= tmp
                if shunt:
                    np.subtract(v[:n_free], anchor[:n_free], out=tmp)
                    tmp *= shunt
                    neg_res -= tmp
                assemble_acc += perf_counter() - t0

                fresh = not try_stale
                if try_stale:
                    t0 = perf_counter()
                    lu.solve(neg_res, out=delta)
                    np.abs(delta, out=abs_buf)
                    step = max_reduce(abs_buf) if n_free else 0.0
                    solve_acc += perf_counter() - t0
                    # NaN fails the comparison too -> refactor.
                    if step <= slowdown * step_prev:
                        n_reuse += 1
                    else:
                        t0 = perf_counter()
                        f, jw = kernel.eval(v, with_jacobian=True)
                        n_assembles += 1
                        assemble_acc += perf_counter() - t0
                        n_refactor += 1
                        fresh = True

                if fresh:
                    t0 = perf_counter()
                    dev = plan.device_data(jw, self._dev)
                    data = self._data
                    np.multiply(dev, alpha, out=data)
                    data += self._ch
                    if shunt:
                        data[plan.diag_pos] += shunt
                    # Singular system -> non-finite solve; the step guard
                    # below turns it into a rejection (raw_inv contract).
                    lu.factor(data)
                    fill = lu.fill_nnz
                    n_factor += 1
                    self.valid = modified
                    self.key = (h, alpha)
                    factor_acc += perf_counter() - t0
                    t0 = perf_counter()
                    lu.solve(neg_res, out=delta)
                    np.abs(delta, out=abs_buf)
                    step = max_reduce(abs_buf) if n_free else 0.0
                    solve_acc += perf_counter() - t0

                if not step < np.inf:  # catches NaN and +inf together
                    info["nonfinite"] = True
                    self.valid = False
                    return None, self.note_worst(n_free, n_iters)
                if step > damping:
                    delta *= damping / step
                v[:n_free] += delta
                if step < vntol:
                    return v.copy(), info
                if can_predict and iteration and step * step < vntol * step_prev:
                    return v.copy(), info
                step_prev = step
            return None, self.note_worst(n_free, n_iters)
        finally:
            info["iterations"] = n_iters
            stats.newton_iterations += n_iters
            stats.assembles += n_assembles
            stats.factorizations += n_factor
            stats.refactorizations += n_refactor
            stats.jacobian_reuses += n_reuse
            stats.assemble_s += assemble_acc
            stats.factor_s += factor_acc
            stats.solve_s += solve_acc
            if fill:
                stats.sparse_fill_nnz = fill


class SparseStaticSolver:
    """Sparse evaluate/factor hook for ``dcop._newton_static``.

    The DC ladder's control flow (damping, shunt homotopy, source
    stepping) stays in :mod:`repro.analog.dcop`; this object replaces
    only its two dense operations - ``circuit.device_currents`` and
    ``np.linalg.solve`` - keeping the counters untouched, as the dense
    ladder never fed :class:`KernelStats` either.
    """

    def __init__(
        self, circuit: Any, work: Optional[SparseNewtonWork] = None
    ) -> None:
        self.circuit = circuit
        if work is not None:
            self.plan = work.plan
            self.kernel = work.kernel
            self.lu = work.lu
        else:
            self.plan = csr_plan(circuit)
            self.kernel = SparseKernel(circuit, self.plan)
            self.lu = SparseLU(self.plan.indptr, self.plan.indices,
                               circuit.n_free)
        self._jw: Optional[np.ndarray] = None
        self._dev = np.empty(self.plan.nnz)
        self._delta = np.empty(circuit.n_free)

    def currents(self, v: np.ndarray) -> np.ndarray:
        """Static device currents at ``v`` (full length), keeping the
        Jacobian stamp weights for the following :meth:`solve`."""
        f, self._jw = self.kernel.eval(v, with_jacobian=True)
        return f

    def solve(self, shunt: float, residual: np.ndarray) -> np.ndarray:
        """``delta = -(J_ff + shunt * I)^-1 residual`` at the last
        :meth:`currents` iterate.  Singularity surfaces as a non-finite
        delta, which the caller's finite guard rejects - the same
        contract as the dense ``LinAlgError`` branch."""
        plan = self.plan
        data = plan.device_data(self._jw, self._dev)
        if shunt:
            data[plan.diag_pos] += shunt
        self.lu.factor(data)
        self.lu.solve(residual, out=self._delta)
        np.negative(self._delta, out=self._delta)
        return self._delta
