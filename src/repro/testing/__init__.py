"""The testing scheme built around the sensing circuit.

Off-line use: sensor responses are latched by compact error indicators and
shifted out through a scan path.  On-line (self-checking) use: indicator
outputs feed a two-rail checker.  This package also contains the Sec.-3
testability analysis of the sensor itself.
"""

from repro.testing.indicator import ErrorIndicator
from repro.testing.checker import TwoRailChecker
from repro.testing.scanpath import ScanPath
from repro.testing.scheme import ClockTestingScheme, SensorPlacement
from repro.testing.coverage import CoverageSummary, coverage
from repro.testing.testability import (
    FaultVerdict,
    TestabilityReport,
    analyze_sensor_testability,
)

__all__ = [
    "ErrorIndicator",
    "TwoRailChecker",
    "ScanPath",
    "ClockTestingScheme",
    "SensorPlacement",
    "coverage",
    "CoverageSummary",
    "FaultVerdict",
    "TestabilityReport",
    "analyze_sensor_testability",
]
