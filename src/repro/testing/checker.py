"""Two-rail checker for the on-line (self-checking) application.

In on-line mode the indicator outputs feed a checker (Sec. 2).  The
standard self-checking building block is the two-rail checker (Carter &
Schneider, ref. [6]): it compresses pairs of complementary rails into one
output pair that stays complementary exactly while every input pair is
complementary.  Our sensor naturally produces a two-rail-compatible pair:
in fault-free operation ``(y1, y2)`` is ``(0, 0)`` or ``(1, 1)`` - so the
pair ``(y1, NOT y2)`` is complementary, and a skew error breaks the
complementarity, propagating through the checker tree to the final alarm.

The checker is *self-checking* in the standard sense: any single stuck-at
on its internal rails makes the output non-complementary for some
fault-free input, so checker faults cannot silently mask clock errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


def two_rail_cell(
    a: Tuple[int, int], b: Tuple[int, int]
) -> Tuple[int, int]:
    """One two-rail checker cell (the classic 4-gate realisation).

    Inputs and output are rail pairs ``(x, xbar)``; the output is
    complementary iff both inputs are.
    """
    (a0, a1), (b0, b1) = a, b
    z0 = (a0 & b0) | (a1 & b1)
    z1 = (a0 & b1) | (a1 & b0)
    return (z0, z1)


@dataclass
class TwoRailChecker:
    """A balanced tree of two-rail cells with optional injected faults.

    Attributes
    ----------
    n_inputs:
        Number of input rail pairs.
    stuck_cells:
        Map from cell index (level-order) to a forced output pair,
        modelling an internal checker fault for self-testing analysis.
    """

    n_inputs: int
    stuck_cells: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("checker needs at least one input pair")

    def evaluate(self, pairs: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
        """Compress rail pairs down the tree; returns the final pair."""
        if len(pairs) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} rail pairs, got {len(pairs)}"
            )
        level: List[Tuple[int, int]] = list(pairs)
        cell_index = 0
        while len(level) > 1:
            nxt: List[Tuple[int, int]] = []
            for i in range(0, len(level) - 1, 2):
                out = two_rail_cell(level[i], level[i + 1])
                if cell_index in self.stuck_cells:
                    out = self.stuck_cells[cell_index]
                cell_index += 1
                nxt.append(out)
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def alarm(self, pairs: Sequence[Tuple[int, int]]) -> bool:
        """True when the compressed output is non-complementary."""
        z0, z1 = self.evaluate(pairs)
        return z0 == z1

    @staticmethod
    def encode_sensor_code(code: Tuple[int, int]) -> Tuple[int, int]:
        """Map a sensor ``(y1, y2)`` code onto a two-rail pair.

        Fault-free codes ``(0, 0)`` / ``(1, 1)`` map to complementary
        pairs; the error codes map to ``00`` / ``11``.
        """
        y1, y2 = code
        return (y1, 1 - y2)
