"""Fault-coverage accounting helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class CoverageSummary:
    """Coverage numbers for one fault population."""

    total: int
    detected: int

    @property
    def fraction(self) -> float:
        """Detected fraction in [0, 1]; NaN for an empty population."""
        if self.total == 0:
            return float("nan")
        return self.detected / self.total

    @property
    def percent(self) -> float:
        """Detected fraction as a percentage."""
        return 100.0 * self.fraction

    def __str__(self) -> str:
        return f"{self.detected}/{self.total} ({self.percent:.1f} %)"


def coverage(outcomes: Iterable[bool]) -> CoverageSummary:
    """Summarise an iterable of detected flags."""
    outcomes = list(outcomes)
    return CoverageSummary(total=len(outcomes), detected=sum(outcomes))


def coverage_table(
    groups: Dict[str, List[Tuple[bool, bool]]]
) -> List[Tuple[str, CoverageSummary, CoverageSummary]]:
    """Per-kind coverage with and without IDDQ.

    ``groups`` maps fault kind to ``(detected_logic, detected_any)`` pairs.
    """
    rows = []
    for kind, outcomes in groups.items():
        logic = coverage(flag for flag, _ in outcomes)
        with_iddq = coverage(flag for _, flag in outcomes)
        rows.append((kind, logic, with_iddq))
    return rows
