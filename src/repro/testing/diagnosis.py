"""Diagnosis: localising the faulty clock branch from latched indicators.

After a test session (or an on-line event) the scan-out delivers, per
monitored pair, whether it latched and *which clock was late* (the 01/10
code distinguishes directions).  Because pairs share sinks, intersecting
these observations localises the fault:

* a sink reported *late* in every latched pair it belongs to - and never
  reported early - is a candidate victim (something slowed its branch);
* a sink reported early everywhere is a candidate for a fast path (e.g.
  a bridging short of its wire);
* pairs that stayed quiet exonerate both of their sinks relative to each
  other (their mutual skew stayed inside tolerance).

The result is a ranked candidate list plus the set of tree nodes shared by
all candidate victims' root paths - the deepest structure the evidence can
implicate (a buffer fault slows a whole subtree, so all its sinks latch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.clocktree.tree import ClockTree
from repro.testing.scheme import ClockTestingScheme


@dataclass
class SinkEvidence:
    """Observation tallies for one monitored sink."""

    late_votes: int = 0
    early_votes: int = 0
    quiet_votes: int = 0

    @property
    def consistent_late(self) -> bool:
        """Reported late at least once and never early."""
        return self.late_votes > 0 and self.early_votes == 0


@dataclass
class Diagnosis:
    """Outcome of localisation."""

    evidence: Dict[str, SinkEvidence] = field(default_factory=dict)
    late_candidates: List[str] = field(default_factory=list)
    early_candidates: List[str] = field(default_factory=list)
    implicated_nodes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No indicator latched - nothing to diagnose."""
        return not self.late_candidates and not self.early_candidates


def diagnose(
    scheme: ClockTestingScheme, tree: Optional[ClockTree] = None
) -> Diagnosis:
    """Localise the fault from the scheme's latched indicators.

    Uses each indicator's ``first_error`` direction: code ``(0, 1)`` means
    the pair's ``phi2`` side (``sink_b``) was late; ``(1, 0)`` means
    ``sink_a`` was.  ``tree`` defaults to the scheme's design tree and is
    used to compute the implicated common path.
    """
    tree = tree or scheme.tree
    diagnosis = Diagnosis()
    for placement in scheme.placements:
        a, b = placement.pair.sink_a, placement.pair.sink_b
        for sink in (a, b):
            diagnosis.evidence.setdefault(sink, SinkEvidence())
        indicator = placement.indicator
        if not indicator.latched:
            diagnosis.evidence[a].quiet_votes += 1
            diagnosis.evidence[b].quiet_votes += 1
            continue
        if indicator.first_error == (0, 1):
            late, early = b, a
        elif indicator.first_error == (1, 0):
            late, early = a, b
        else:
            continue
        diagnosis.evidence[late].late_votes += 1
        diagnosis.evidence[early].early_votes += 1

    for sink, tally in sorted(diagnosis.evidence.items()):
        if tally.consistent_late:
            diagnosis.late_candidates.append(sink)
        elif tally.early_votes > 0 and tally.late_votes == 0:
            diagnosis.early_candidates.append(sink)
    diagnosis.late_candidates.sort(
        key=lambda s: -diagnosis.evidence[s].late_votes
    )

    if diagnosis.late_candidates:
        diagnosis.implicated_nodes = _common_path(
            tree, diagnosis.late_candidates
        )
    return diagnosis


def _common_path(tree: ClockTree, sinks: List[str]) -> List[str]:
    """Tree node names shared by every candidate's root path, deepest
    last (the deepest entry is the most specific implicated structure)."""
    shared: Optional[List[str]] = None
    for sink in sinks:
        path = [n.name for n in tree.path_to(tree.node(sink))]
        if shared is None:
            shared = path
        else:
            keep: List[str] = []
            for ours, theirs in zip(shared, path):
                if ours == theirs:
                    keep.append(ours)
                else:
                    break
            shared = keep
    if shared is None:
        return []
    if len(sinks) == 1:
        # A single victim implicates its own full path.
        return [n.name for n in tree.path_to(tree.node(sinks[0]))]
    return shared


def diagnosis_report(diagnosis: Diagnosis) -> str:
    """Human-readable summary."""
    if diagnosis.clean:
        return "no indicators latched: clock distribution within tolerance"
    lines: List[str] = []
    if diagnosis.late_candidates:
        lines.append(
            "late (slowed) sinks: " + ", ".join(diagnosis.late_candidates)
        )
    if diagnosis.early_candidates:
        lines.append(
            "early (sped-up) sinks: " + ", ".join(diagnosis.early_candidates)
        )
    if diagnosis.implicated_nodes:
        lines.append(
            "implicated path (deepest last): "
            + " -> ".join(diagnosis.implicated_nodes)
        )
    return "\n".join(lines)
