"""Compact latching error indicator (ref. [9], Metra/Favalli/Ricco).

Once the sensing circuit has been placed, "simple error indicators capable
of latching on error indications can be used" (Sec. 2).  The indicator
watches the threshold-interpreted ``(y1, y2)`` pair each clock phase and
latches as soon as the pair leaves the fault-free code space; the latched
flag persists until explicitly reset (scan-out in off-line testing, checker
acknowledgement on-line).

The fault-free code space of the sensor is ``{(0, 0), (1, 1)}``: both
outputs low (after simultaneous rising edges - the sub-threshold clamp) or
both high (idle / recovered).  ``(0, 1)`` and ``(1, 0)`` are the skew error
indications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.units import VTH_INTERPRET

#: Codes the sensor emits in fault-free operation.
VALID_CODES = ((0, 0), (1, 1))


@dataclass
class ErrorIndicator:
    """Latching indicator attached to one sensing circuit.

    Attributes
    ----------
    name:
        Identifier (usually names the monitored wire pair).
    threshold:
        Voltage threshold for interpreting the analog outputs.
    latched:
        Current latch state.
    history:
        Every observed code, for diagnosis.
    """

    name: str = "indicator"
    threshold: float = VTH_INTERPRET
    latched: bool = False
    first_error: Optional[Tuple[int, int]] = None
    history: List[Tuple[int, int]] = field(default_factory=list)

    def observe_voltages(self, v_y1: float, v_y2: float) -> bool:
        """Interpret analog outputs and update the latch.

        Returns the new latch state.
        """
        code = (
            1 if v_y1 > self.threshold else 0,
            1 if v_y2 > self.threshold else 0,
        )
        return self.observe_code(code)

    def observe_code(self, code: Tuple[int, int]) -> bool:
        """Update the latch from an already-interpreted code."""
        self.history.append(code)
        if code not in VALID_CODES and not self.latched:
            self.latched = True
            self.first_error = code
        return self.latched

    def reset(self) -> None:
        """Clear the latch (after scan-out or checker acknowledgement)."""
        self.latched = False
        self.first_error = None
        self.history.clear()

    @property
    def direction(self) -> Optional[str]:
        """Which clock was late, when known: ``"phi2"`` for ``(0, 1)``,
        ``"phi1"`` for ``(1, 0)``."""
        if self.first_error == (0, 1):
            return "phi2"
        if self.first_error == (1, 0):
            return "phi1"
        return None
